"""Markdown report generation from experiment artifacts.

Renders a set of :class:`ExperimentResult` tables into a single Markdown
document — the machine-generated counterpart of EXPERIMENTS.md.  Used by
``python -m repro report`` to produce an auditable record of a full
reproduction run.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.experiments.harness import Cell, ExperimentResult


def _md_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell).replace("|", "\\|")


def result_to_markdown(result: ExperimentResult, max_rows: Optional[int] = None) -> str:
    """One experiment as a Markdown section with a table."""
    lines: List[str] = [f"## {result.experiment_id} — {result.title}", ""]
    header = [str(c) for c in result.columns]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join("---" for _ in header) + "|")
    rows = result.rows if max_rows is None else result.rows[:max_rows]
    for row in rows:
        lines.append("| " + " | ".join(_md_cell(cell) for cell in row) + " |")
    if max_rows is not None and len(result.rows) > max_rows:
        lines.append("")
        lines.append(f"*…{len(result.rows) - max_rows} more rows elided.*")
    for note in result.notes:
        lines.append("")
        lines.append(f"> {note}")
    lines.append("")
    return "\n".join(lines)


def build_report(
    results: Sequence[ExperimentResult],
    title: str = "PAINTER reproduction report",
    preamble: str = "",
    max_rows_per_table: Optional[int] = 40,
    timestamp: Optional[str] = None,
) -> str:
    """A full Markdown report over many experiments."""
    if not results:
        raise ValueError("no results to report")
    stamp = timestamp if timestamp is not None else time.strftime("%Y-%m-%d %H:%M:%S")
    lines = [f"# {title}", "", f"Generated {stamp}.", ""]
    if preamble:
        lines.extend([preamble, ""])
    lines.append("## Contents")
    lines.append("")
    for result in results:
        lines.append(f"- [{result.experiment_id}](#user-content-{result.experiment_id}) — {result.title}")
    lines.append("")
    for result in results:
        lines.append(result_to_markdown(result, max_rows=max_rows_per_table))
    return "\n".join(lines)


def run_and_report(
    experiment_ids: Optional[Iterable[str]] = None,
    max_rows_per_table: Optional[int] = 40,
    jobs: int = 1,
    include_perf: bool = True,
    **experiment_kwargs,
) -> str:
    """Run (a subset of) the registered experiments and render the report.

    ``experiment_kwargs`` are forwarded to every experiment that accepts
    them (commonly ``scenario=`` for sized-down runs).  ``jobs > 1`` fans
    the experiments out over worker processes via
    :func:`repro.experiments.harness.run_experiments_parallel`; custom
    ``experiment_kwargs`` force a serial run (workers invoke experiments
    with their defaults).  With ``include_perf`` the report ends with the
    run's performance counters (cache hit rates, marginal evaluations),
    merged across workers.
    """
    import inspect

    from repro.experiments import ALL_EXPERIMENTS
    from repro.perf import PERF

    requested = list(experiment_ids) if experiment_ids is not None else list(ALL_EXPERIMENTS)
    unknown = [name for name in requested if name not in ALL_EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")
    results: List[ExperimentResult] = []
    if jobs > 1 and not experiment_kwargs:
        from repro.experiments.harness import run_experiments_parallel

        by_name = run_experiments_parallel(requested, jobs=jobs)
        results = [by_name[name] for name in requested]
    else:
        for name in requested:
            func = ALL_EXPERIMENTS[name]
            accepted = inspect.signature(func).parameters
            kwargs = {k: v for k, v in experiment_kwargs.items() if k in accepted}
            results.append(func(**kwargs))
    report = build_report(results, max_rows_per_table=max_rows_per_table)
    for result in results:
        if result.experiment_id == "optimality":
            report = report + "\n" + optimality_summary(result)
        elif result.experiment_id == "soak":
            report = report + "\n" + soak_summary(result)
        elif result.experiment_id == "communities":
            report = report + "\n" + communities_summary(result)
        elif result.experiment_id == "hotpotato":
            report = report + "\n" + hotpotato_summary(result)
    if include_perf:
        report = report + "\n" + PERF.to_markdown()
    return report


def soak_summary(result: ExperimentResult) -> str:
    """Digest of a soak run's SLO table: availability and accounting.

    Rendered after the per-window table so the operational story — did
    the composed system keep serving through the storm, and did every
    flow get accounted for — is readable without scanning rows.
    """
    offered = [int(v) for v in result.column("offered")]
    served = [int(v) for v in result.column("served")]
    unroutable = [int(v) for v in result.column("unroutable")]
    shed = [int(v) for v in result.column("shed")]
    errors = [int(v) for v in result.column("accounting_errors")]
    down = [int(v) for v in result.column("down_ugs")]
    lines = ["## Soak SLO digest", ""]
    if offered:
        lines.append(
            f"Over {len(offered)} simulated windows the data plane was "
            f"offered {sum(offered):,} flows and served {sum(served):,} "
            f"({sum(unroutable):,} unroutable during outages, "
            f"{sum(shed):,} shed by the admit cap)."
        )
        lines.append("")
        stormy = sum(1 for d in down if d > 0)
        lines.append(
            f"{stormy} window(s) had user groups down (peak "
            f"{max(down)} UGs at once); flow accounting closed with "
            f"{sum(errors)} errors (the gate requires zero)."
        )
    for note in result.notes:
        lines.append("")
        lines.append(f"> {note}")
    lines.append("")
    return "\n".join(lines)


def communities_summary(result: ExperimentResult) -> str:
    """Digest of the communities-vs-PAINTER comparator table.

    Surfaces the benefit/coverage gap at the largest shared budget so the
    headline — how community steering stacks up against selective prefix
    advertisements for the same announcement spend — is readable without
    scanning the curves.
    """
    by_strategy: Dict[str, List[tuple]] = {}
    for row in result.rows:
        by_strategy.setdefault(str(row[0]), []).append(tuple(row))
    lines = ["## Communities-vs-PAINTER digest", ""]
    painter = by_strategy.get("painter", [])
    communities = by_strategy.get("communities", [])
    if painter and communities:
        p = max(painter, key=lambda row: int(row[1]))
        c = max(communities, key=lambda row: int(row[1]))
        lines.append(
            f"At the largest shared budget (painter {p[1]} prefixes, "
            f"communities {c[1]} announcement groups) PAINTER realizes "
            f"{100 * float(p[2]):.1f}% of the possible benefit vs "
            f"{100 * float(c[2]):.1f}% for community steering; "
            f"best-ingress coverage is {100 * float(p[3]):.1f}% vs "
            f"{100 * float(c[3]):.1f}% of volume."
        )
        lines.append("")
    for note in result.notes:
        lines.append("")
        lines.append(f"> {note}")
    lines.append("")
    return "\n".join(lines)


def hotpotato_summary(result: ExperimentResult) -> str:
    """Digest of the hot-potato coexistence table: stability contrast.

    The story is the asymmetry — plain-prefix ingress TE is invariant to
    intra-cloud link-weight epochs while MED-pinned community steering
    oscillates — so the digest leads with total flips per mode and the
    worst benefit erosion observed.
    """
    flips: Dict[str, int] = {}
    worst_erosion: Dict[str, float] = {}
    for row in result.rows:
        mode = str(row[0])
        flips[mode] = flips.get(mode, 0) + int(row[2])
        worst_erosion[mode] = max(worst_erosion.get(mode, 0.0), float(row[4]))
    lines = ["## Hot-potato coexistence digest", ""]
    if flips:
        parts = [
            f"{mode}: {flips[mode]} ingress flip(s), worst erosion "
            f"{100 * worst_erosion[mode]:.1f}%"
            for mode in sorted(flips)
        ]
        lines.append(
            "Across the link-weight epoch schedule — " + "; ".join(parts) + "."
        )
        lines.append("")
        if flips.get("painter", 0) == 0 and flips.get("communities", 0) > 0:
            lines.append(
                "PAINTER's prefix-only advertisements carry no IGP signal, so "
                "its catchments hold while MED-steered ingresses chase the "
                "shifting egress costs."
            )
            lines.append("")
    for note in result.notes:
        lines.append("")
        lines.append(f"> {note}")
    lines.append("")
    return "\n".join(lines)


def optimality_summary(result: ExperimentResult) -> str:
    """Digest of the GreedyGap table: worst/mean gap and bound soundness.

    Rendered as its own report section after the per-experiment tables so
    the optimality story — how close Algorithm 1 gets to provably optimal,
    and that the LP envelope held — is readable without scanning rows.
    """
    gaps = [float(g) for g in result.column("gap_pct")]
    budgets = result.column("budget")
    scenarios = result.column("scenario")
    lines = ["## Optimality envelope (GreedyGap digest)", ""]
    if gaps:
        worst = max(range(len(gaps)), key=gaps.__getitem__)
        lines.append(
            f"Across {len(gaps)} instance/budget points the greedy's "
            f"benefit gap to the exact ILP optimum was at worst "
            f"{gaps[worst]:.3f}% ({scenarios[worst]}, budget "
            f"{budgets[worst]}) and {sum(gaps) / len(gaps):.3f}% on "
            f"average."
        )
        lines.append("")
    lines.append(
        "Soundness: on every row `greedy_benefit <= lp_bound` and "
        "`ilp_benefit <= lp_bound` held (the run would have failed "
        "otherwise), so the LP relaxation is a valid optimality envelope "
        "for these instances."
    )
    for note in result.notes:
        lines.append("")
        lines.append(f"> {note}")
    lines.append("")
    return "\n".join(lines)
