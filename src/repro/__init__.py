"""PAINTER reproduction: ingress traffic engineering for enterprise clouds.

A from-scratch implementation of the system described in "PAINTER: Ingress
Traffic Engineering and Routing for Enterprise Cloud Networks" (SIGCOMM
2023), together with every substrate its evaluation depends on — a synthetic
Internet topology, a BGP simulator, a measurement platform, user-group
workloads, DNS/TTL dynamics, and an SD-WAN comparator.

Quickstart::

    from repro import OrchestratorConfig, PainterOrchestrator, prototype_scenario

    scenario = prototype_scenario(seed=1)
    orchestrator = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=10))
    result = orchestrator.learn(iterations=3)
    print(result.realized_benefits)

The steering half of the paper — the Traffic Manager — is also exposed here:
:class:`TMEdge`/:class:`TMPoP` for the proxy nodes, :class:`FlowTable` (the
scalar reference) and :class:`VectorFlowTable` (batched numpy columns for
millions of flows) behind the common :class:`DataPlane` protocol.
"""

from repro.core import (
    AdvertisementConfig,
    BenefitEvaluator,
    LearningResult,
    OrchestratorConfig,
    PainterOrchestrator,
    RoutingModel,
    realized_benefit,
)
from repro.audit import audit_scenario
from repro.faults import FaultInjector, FaultSchedule, ObservationFaults
from repro.scenario import (
    Scenario,
    azure_scenario,
    build_scenario,
    prototype_scenario,
    tiny_scenario,
)
from repro.telemetry import (
    METRICS,
    MetricsRegistry,
    RunJournal,
    TRACER,
    Tracer,
    load_journal,
    telemetry_session,
)
from repro.traffic_manager import (
    DataPlane,
    FiveTuple,
    FlowBatch,
    FlowTable,
    ScalarDataPlane,
    TMEdge,
    TMPoP,
    VectorFlowTable,
)

__version__ = "1.0.0"

__all__ = [
    "AdvertisementConfig",
    "audit_scenario",
    "BenefitEvaluator",
    "DataPlane",
    "FaultInjector",
    "FaultSchedule",
    "FiveTuple",
    "FlowBatch",
    "FlowTable",
    "LearningResult",
    "METRICS",
    "MetricsRegistry",
    "ObservationFaults",
    "OrchestratorConfig",
    "PainterOrchestrator",
    "RoutingModel",
    "RunJournal",
    "ScalarDataPlane",
    "Scenario",
    "TMEdge",
    "TMPoP",
    "TRACER",
    "Tracer",
    "VectorFlowTable",
    "azure_scenario",
    "build_scenario",
    "load_journal",
    "prototype_scenario",
    "realized_benefit",
    "telemetry_session",
    "tiny_scenario",
    "__version__",
]
