"""PAINTER reproduction: ingress traffic engineering for enterprise clouds.

A from-scratch implementation of the system described in "PAINTER: Ingress
Traffic Engineering and Routing for Enterprise Cloud Networks" (SIGCOMM
2023), together with every substrate its evaluation depends on — a synthetic
Internet topology, a BGP simulator, a measurement platform, user-group
workloads, DNS/TTL dynamics, and an SD-WAN comparator.

Quickstart::

    from repro import prototype_scenario, PainterOrchestrator

    scenario = prototype_scenario(seed=1)
    orchestrator = PainterOrchestrator(scenario, prefix_budget=10)
    result = orchestrator.learn(iterations=3)
    print(result.realized_benefits)
"""

from repro.core import (
    AdvertisementConfig,
    BenefitEvaluator,
    LearningResult,
    PainterOrchestrator,
    RoutingModel,
    realized_benefit,
)
from repro.audit import audit_scenario
from repro.faults import FaultInjector, FaultSchedule, ObservationFaults
from repro.scenario import (
    Scenario,
    azure_scenario,
    build_scenario,
    prototype_scenario,
    tiny_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "AdvertisementConfig",
    "audit_scenario",
    "BenefitEvaluator",
    "FaultInjector",
    "FaultSchedule",
    "LearningResult",
    "ObservationFaults",
    "PainterOrchestrator",
    "RoutingModel",
    "Scenario",
    "azure_scenario",
    "build_scenario",
    "prototype_scenario",
    "realized_benefit",
    "tiny_scenario",
    "__version__",
]
