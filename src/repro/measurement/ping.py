"""Ping measurement on top of the ground-truth latency oracle.

"We measure all targets using ping 7 times and compute minimum latencies to
approximate propagation delay" (§5.1.1).  Individual pings add queueing
jitter on top of the true min-RTT; taking the minimum of several samples
approaches it, which is exactly why the paper (and PAINTER's objective) uses
minimum latency.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.measurement.latency_model import LatencyModel
from repro.topology.cloud import Peering
from repro.usergroups.usergroup import UserGroup

#: Paper's sample count.
DEFAULT_PING_COUNT = 7


@dataclass(frozen=True)
class PingResult:
    """Samples from pinging one target, mirroring a ping summary line."""

    samples_ms: Sequence[float]

    def __post_init__(self) -> None:
        if not self.samples_ms:
            raise ValueError("a ping result needs at least one sample")
        if any(s < 0 or math.isnan(s) for s in self.samples_ms):
            raise ValueError("samples must be non-negative numbers")

    @property
    def min_ms(self) -> float:
        return min(self.samples_ms)

    @property
    def max_ms(self) -> float:
        return max(self.samples_ms)

    @property
    def mean_ms(self) -> float:
        return sum(self.samples_ms) / len(self.samples_ms)

    @property
    def count(self) -> int:
        return len(self.samples_ms)


class Pinger:
    """Produces jittered ping samples for (UG, peering) pairs.

    Jitter is exponential (bufferbloat-style, strictly additive) so the
    sample minimum converges to the oracle value from above.
    """

    def __init__(
        self,
        model: LatencyModel,
        jitter_mean_ms: float = 2.0,
        loss_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        if jitter_mean_ms < 0:
            raise ValueError("jitter must be non-negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0,1)")
        self._model = model
        self._jitter_mean_ms = jitter_mean_ms
        self._loss_rate = loss_rate
        self._rng = random.Random(seed)

    def ping(
        self,
        ug: UserGroup,
        peering: Peering,
        count: int = DEFAULT_PING_COUNT,
        day: int = 0,
    ) -> Optional[PingResult]:
        """Ping ``count`` times; ``None`` if every probe was lost."""
        if count < 1:
            raise ValueError("count must be >= 1")
        true_rtt = self._model.latency_ms(ug, peering, day=day)
        samples: List[float] = []
        for _ in range(count):
            if self._loss_rate and self._rng.random() < self._loss_rate:
                continue
            jitter = self._rng.expovariate(1.0 / self._jitter_mean_ms) if self._jitter_mean_ms else 0.0
            samples.append(true_rtt + jitter)
        if not samples:
            return None
        return PingResult(samples_ms=tuple(samples))

    def min_latency_ms(
        self,
        ug: UserGroup,
        peering: Peering,
        count: int = DEFAULT_PING_COUNT,
        day: int = 0,
    ) -> Optional[float]:
        """Convenience: the min-of-``count`` estimate the paper uses."""
        result = self.ping(ug, peering, count=count, day=day)
        return None if result is None else result.min_ms
