"""AS-level traceroute synthesis and policy-compliance validation.

The paper validates its policy-compliance inference against observation:
"we inspect millions of traceroutes from Azure clients and find that only 4%
violate our assumptions" (§3.1).  This module synthesizes traceroutes toward
the cloud from the ground-truth routing oracle — including the measurement
artifacts real traceroutes carry (missing hops, IP-to-AS misattribution at
IXP/sibling boundaries) — and re-runs the paper's validation: what fraction
of observed entry ASes fall outside the inferred policy-compliant set?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from repro.usergroups.usergroup import UserGroup
from repro.util import stable_rng

if TYPE_CHECKING:  # annotation-only; avoids scenario <-> measurement cycle
    from repro.scenario import Scenario


@dataclass(frozen=True)
class TracerouteHop:
    """One responding hop: the AS it maps to, and cumulative RTT."""

    asn: Optional[int]  # None = unresponsive hop ('* * *')
    rtt_ms: float


@dataclass(frozen=True)
class Traceroute:
    """An AS-level traceroute from a UG to the cloud's anycast address."""

    ug_id: int
    hops: Tuple[TracerouteHop, ...]

    @property
    def responded_asns(self) -> Tuple[int, ...]:
        seen: List[int] = []
        for hop in self.hops:
            if hop.asn is not None and (not seen or seen[-1] != hop.asn):
                seen.append(hop.asn)
        return tuple(seen)

    @property
    def entry_asn(self) -> Optional[int]:
        """The last non-cloud AS observed — where traffic entered the cloud."""
        asns = self.responded_asns
        if len(asns) < 2:
            return None
        return asns[-2] if asns[-1] == 1 else asns[-1]


@dataclass(frozen=True)
class TracerouteConfig:
    seed: int = 0
    #: Probability a hop doesn't respond.
    unresponsive_prob: float = 0.12
    #: Probability a hop's address maps to the *wrong* AS (IXP space,
    #: sibling ASes, off-path addresses) — the real-world artifact that
    #: produces apparent policy violations.
    misattribution_prob: float = 0.015
    #: Per-hop RTT increment range (ms).
    hop_rtt_min_ms: float = 0.5
    hop_rtt_max_ms: float = 15.0


def synthesize_traceroute(
    scenario: Scenario, ug: UserGroup, config: Optional[TracerouteConfig] = None
) -> Traceroute:
    """One traceroute from ``ug`` along its ground-truth anycast path."""
    config = config or TracerouteConfig()
    rng = stable_rng(config.seed, "traceroute", ug.ug_id)
    as_path = scenario.routing.default_as_path(ug)
    if as_path is None:
        return Traceroute(ug_id=ug.ug_id, hops=())
    all_asns = [a.asn for a in scenario.graph.all_ases()]
    hops: List[TracerouteHop] = []
    rtt = scenario.latency_model.last_mile_ms(ug)
    # Each AS contributes 1-3 router hops.
    for asn in (ug.asn,) + tuple(as_path):
        for _ in range(rng.randint(1, 3)):
            rtt += rng.uniform(config.hop_rtt_min_ms, config.hop_rtt_max_ms)
            if rng.random() < config.unresponsive_prob:
                hops.append(TracerouteHop(asn=None, rtt_ms=rtt))
                continue
            observed = asn
            if rng.random() < config.misattribution_prob:
                observed = rng.choice(all_asns)
            hops.append(TracerouteHop(asn=observed, rtt_ms=rtt))
    return Traceroute(ug_id=ug.ug_id, hops=tuple(hops))


@dataclass(frozen=True)
class ValidationReport:
    """The §3.1 validation: observed entries vs inferred compliance."""

    total: int
    violations: int
    unresolvable: int

    @property
    def violation_rate(self) -> float:
        checked = self.total - self.unresolvable
        if checked <= 0:
            return 0.0
        return self.violations / checked


def validate_policy_compliance(
    scenario: Scenario,
    config: Optional[TracerouteConfig] = None,
    ugs: Optional[Sequence[UserGroup]] = None,
) -> ValidationReport:
    """Check each traceroute's apparent entry AS against the inferred set.

    An entry AS that owns no policy-compliant peering for the UG counts as a
    violation.  With a clean oracle the only violations come from traceroute
    artifacts, so the rate approximates the misattribution level — the paper
    measured 4% on real data.
    """
    config = config or TracerouteConfig()
    ugs = list(ugs) if ugs is not None else scenario.user_groups
    total = violations = unresolvable = 0
    for ug in ugs:
        trace = synthesize_traceroute(scenario, ug, config)
        total += 1
        entry = trace.entry_asn
        if entry is None or entry == ug.asn:
            unresolvable += 1
            continue
        compliant_asns = {
            peering.peer_asn for peering in scenario.catalog.ingresses(ug)
        }
        if entry not in compliant_asns:
            violations += 1
    return ValidationReport(total=total, violations=violations, unresolvable=unresolvable)
