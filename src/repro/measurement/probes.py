"""A RIPE-Atlas-like probe fleet over the UG population.

The paper measured real latencies only from UGs hosting RIPE Atlas probes
(47% of traffic volume) and *simulated* measurements for the rest by
extrapolating from nearby probes (Appendix C).  The fleet model captures the
two properties that matter: partial coverage, and a bias toward high-volume
UGs ("RIPE Atlas probes tend to be in UGs that generate lots of Azure
traffic volume").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.topology.geo import haversine_km
from repro.usergroups.usergroup import UserGroup


@dataclass(frozen=True)
class ProbeFleetConfig:
    seed: int = 0
    #: Fraction of UGs hosting a probe.
    coverage_fraction: float = 0.35
    #: Strength of the bias toward high-volume UGs (0 = uniform).
    volume_bias: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.coverage_fraction <= 1.0:
            raise ValueError("coverage_fraction must be in (0,1]")
        if self.volume_bias < 0:
            raise ValueError("volume_bias must be non-negative")


class ProbeFleet:
    """Which UGs host probes, and probe-neighborhood queries."""

    def __init__(
        self, ugs: Sequence[UserGroup], config: Optional[ProbeFleetConfig] = None
    ) -> None:
        self._config = config or ProbeFleetConfig()
        self._ugs = list(ugs)
        rng = random.Random(self._config.seed)
        n_probes = max(1, round(len(self._ugs) * self._config.coverage_fraction))
        weights = [max(ug.volume, 1e-12) ** self._config.volume_bias for ug in self._ugs]
        self._probe_ids = frozenset(
            ug.ug_id for ug in _weighted_sample(rng, self._ugs, weights, n_probes)
        )

    @property
    def probe_ug_ids(self) -> frozenset:
        return self._probe_ids

    def has_probe(self, ug: UserGroup) -> bool:
        return ug.ug_id in self._probe_ids

    def probe_ugs(self) -> List[UserGroup]:
        return [ug for ug in self._ugs if ug.ug_id in self._probe_ids]

    def covered_volume_fraction(self) -> float:
        total = sum(ug.volume for ug in self._ugs)
        if total <= 0:
            return 0.0
        covered = sum(ug.volume for ug in self._ugs if ug.ug_id in self._probe_ids)
        return covered / total

    def probes_near(
        self,
        ug: UserGroup,
        radius_km: float,
        anycast_latency_ms: Optional[Dict[int, float]] = None,
        latency_tolerance_ms: float = 10.0,
    ) -> List[UserGroup]:
        """Probe UGs within ``radius_km`` of ``ug``.

        If anycast latencies are supplied, also require the probe's anycast
        latency to be within ``latency_tolerance_ms`` of the UG's — the
        Appendix C similarity criterion (500 km and 10 ms in the paper).
        """
        result = []
        for probe in self.probe_ugs():
            if probe.ug_id == ug.ug_id:
                continue
            if haversine_km(probe.location, ug.location) > radius_km:
                continue
            if anycast_latency_ms is not None:
                mine = anycast_latency_ms.get(ug.ug_id)
                theirs = anycast_latency_ms.get(probe.ug_id)
                if mine is None or theirs is None:
                    continue
                if abs(mine - theirs) > latency_tolerance_ms:
                    continue
            result.append(probe)
        return result


def _weighted_sample(
    rng: random.Random,
    items: Sequence[UserGroup],
    weights: Sequence[float],
    k: int,
) -> List[UserGroup]:
    """Sample ``k`` distinct items with probability proportional to weight."""
    chosen: List[UserGroup] = []
    pool = list(zip(items, weights))
    for _ in range(min(k, len(pool))):
        total = sum(w for _, w in pool)
        pick = rng.uniform(0.0, total)
        acc = 0.0
        for idx, (item, weight) in enumerate(pool):
            acc += weight
            if pick <= acc:
                chosen.append(item)
                pool.pop(idx)
                break
        else:  # floating point edge: take the last
            item, _ = pool.pop()
            chosen.append(item)
    return chosen
