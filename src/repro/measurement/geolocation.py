"""Ingress-target geolocation and latency estimation (Appendix B).

The paper could not advertise test prefixes from Azure, so it estimated the
latency through an ingress as the latency to a *target*: an IP address in
the peer's space geolocated to within ``GP`` km of the ingress's PoP.  Not
every ingress has a findable target, and looser geolocation admits more
targets at the cost of estimate accuracy — the coverage/accuracy tradeoff of
Fig. 12 (knee near 400 km; 80.6% volume coverage and ~2 ms median error at
GP = 450 km).

We reproduce the mechanism: each peering deterministically draws a best
available target uncertainty (interface IPs give precise targets for a
minority; crawled hints give dispersed ones; some peerings have none), and
latency estimates carry error that grows with the target's displacement.
"""

from __future__ import annotations

import math
import random

from repro.util import stable_rng
from dataclasses import dataclass
from typing import Dict, Optional

from repro.measurement.latency_model import LatencyModel
from repro.topology.cloud import Peering
from repro.usergroups.usergroup import UserGroup


@dataclass(frozen=True)
class GeolocationConfig:
    """Distribution of target availability and estimate error."""

    seed: int = 0
    #: Fraction of peerings whose interface IP answers (precise target).
    interface_target_prob: float = 0.35
    #: Interface targets sit essentially at the PoP.
    interface_uncertainty_max_km: float = 80.0
    #: Fraction of remaining peerings with *no* findable target at all.
    missing_target_prob: float = 0.10
    #: Crawled/hint targets: exponential displacement with this mean (km).
    crawled_uncertainty_mean_km: float = 240.0
    #: Estimate error: ms of median error per km of target uncertainty.
    error_ms_per_km: float = 0.009
    #: Irreducible error floor (ms) — reverse-path asymmetry etc.
    error_floor_ms: float = 1.0

    def __post_init__(self) -> None:
        for p in (self.interface_target_prob, self.missing_target_prob):
            if not 0.0 <= p <= 1.0:
                raise ValueError("probabilities must be in [0,1]")
        if self.crawled_uncertainty_mean_km <= 0:
            raise ValueError("crawled_uncertainty_mean_km must be positive")


@dataclass(frozen=True)
class GeoTarget:
    """A measurement target for one ingress."""

    peering_id: int
    uncertainty_km: float
    source: str  # "interface" or "crawled"


class GeolocationCatalog:
    """Per-peering targets plus the latency estimator built on them."""

    def __init__(self, config: Optional[GeolocationConfig] = None) -> None:
        self._config = config or GeolocationConfig()
        self._targets: Dict[int, Optional[GeoTarget]] = {}

    @property
    def config(self) -> GeolocationConfig:
        return self._config

    def _rng(self, *key: object) -> "random.Random":
        return stable_rng(self._config.seed, *key)

    def target_for(self, peering: Peering) -> Optional[GeoTarget]:
        """The best available target for ``peering``; ``None`` if unfindable."""
        cached = self._targets.get(peering.peering_id, "unset")
        if cached != "unset":
            return cached  # type: ignore[return-value]
        cfg = self._config
        rng = self._rng("target", peering.peering_id)
        target: Optional[GeoTarget]
        if rng.random() < cfg.interface_target_prob:
            target = GeoTarget(
                peering_id=peering.peering_id,
                uncertainty_km=rng.uniform(0.0, cfg.interface_uncertainty_max_km),
                source="interface",
            )
        elif rng.random() < cfg.missing_target_prob:
            target = None
        else:
            target = GeoTarget(
                peering_id=peering.peering_id,
                uncertainty_km=rng.expovariate(1.0 / cfg.crawled_uncertainty_mean_km),
                source="crawled",
            )
        self._targets[peering.peering_id] = target
        return target

    def has_target_within(self, peering: Peering, max_uncertainty_km: float) -> bool:
        target = self.target_for(peering)
        return target is not None and target.uncertainty_km <= max_uncertainty_km

    def estimate_latency_ms(
        self,
        ug: UserGroup,
        peering: Peering,
        model: LatencyModel,
        max_uncertainty_km: float,
        day: int = 0,
    ) -> Optional[float]:
        """Estimated min-RTT via the target, or ``None`` without coverage.

        The estimate equals the true latency plus an error drawn once per
        (UG, peering) whose scale grows with the target's displacement —
        farther targets mean the measured path diverges more from the real
        ingress path.
        """
        target = self.target_for(peering)
        if target is None or target.uncertainty_km > max_uncertainty_km:
            return None
        true_ms = model.latency_ms(ug, peering, day=day)
        cfg = self._config
        rng = self._rng("estimate", ug.ug_id, peering.peering_id)
        scale = cfg.error_floor_ms + cfg.error_ms_per_km * target.uncertainty_km
        error = rng.gauss(0.0, scale)
        return max(0.1, true_ms + error)

    def estimate_error_ms(
        self,
        ug: UserGroup,
        peering: Peering,
        model: LatencyModel,
        max_uncertainty_km: float,
    ) -> Optional[float]:
        """Absolute estimate error (for the Fig. 12b accuracy analysis)."""
        estimate = self.estimate_latency_ms(ug, peering, model, max_uncertainty_km)
        if estimate is None:
            return None
        return abs(estimate - model.latency_ms(ug, peering))
