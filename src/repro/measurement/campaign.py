"""Measurement campaigns: scheduled, rate-limited probing with retries.

The Advertisement Orchestrator "takes measurements from TM-Edges" (§4); in
practice that means a probing campaign: many (UG, ingress) targets, a probe
rate the edge boxes and targets can tolerate, several samples per target
(the paper pings each target 7 times), and a results store the optimizer
reads.  This module runs such a campaign over the discrete-event engine and
exposes the results in the ``latency_of`` shape Algorithm 1 consumes.

Real campaigns lose probes — filtered ICMP, dark PoPs, rate-limited
targets.  A campaign therefore has loss/timeout semantics: a probe that is
dropped (by the pinger's own loss model, by a :class:`repro.faults`
schedule's :class:`~repro.faults.ProbeLoss` window, or because the target's
PoP is dark) is retried with exponential backoff up to a bounded number of
attempts, and the per-target attempt counts are part of the result so the
orchestrator can tell "measured cleanly" from "limped through".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.faults.schedule import FaultSchedule
from repro.measurement.ping import DEFAULT_PING_COUNT, Pinger
from repro.simulation.events import EventLoop
from repro.telemetry import TRACER, emit_event
from repro.topology.cloud import Peering
from repro.usergroups.usergroup import UserGroup


@dataclass(frozen=True)
class CampaignConfig:
    #: Probes per second across the whole campaign (rate limit).
    probes_per_second: float = 50.0
    #: Samples per target (paper: ping 7 times, take the min).
    samples_per_target: int = DEFAULT_PING_COUNT
    #: Extra attempts per lost probe before giving the sample up.
    max_retries: int = 2
    #: First retry delay; doubles per subsequent attempt (exponential backoff).
    retry_backoff_s: float = 0.25

    def __post_init__(self) -> None:
        if self.probes_per_second <= 0:
            raise ValueError("probe rate must be positive")
        if self.samples_per_target < 1:
            raise ValueError("need at least one sample per target")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.retry_backoff_s <= 0:
            raise ValueError("retry_backoff_s must be positive")


@dataclass
class CampaignResult:
    """Collected minima plus campaign accounting."""

    latencies_ms: Dict[Tuple[int, int], float] = field(default_factory=dict)
    probes_sent: int = 0
    probes_lost: int = 0
    retries: int = 0
    targets_measured: int = 0
    targets_unreachable: int = 0
    duration_s: float = 0.0
    #: Per-target probe attempts (retries included); 1 per sample when clean.
    attempts: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: Targets whose recorded value came from a previous measurement epoch.
    stale_targets: Set[Tuple[int, int]] = field(default_factory=set)

    def latency_of(self, ug: UserGroup, peering_id: int) -> Optional[float]:
        """Adapter with the orchestrator's ``latency_of`` signature."""
        return self.latencies_ms.get((ug.ug_id, peering_id))

    def attempts_for(self, ug: UserGroup, peering_id: int) -> int:
        return self.attempts.get((ug.ug_id, peering_id), 0)

    @property
    def loss_rate(self) -> float:
        """Observed fraction of probes that went unanswered."""
        if self.probes_sent == 0:
            return 0.0
        return self.probes_lost / self.probes_sent


class MeasurementCampaign:
    """Probes a target list at a bounded rate over simulated time."""

    def __init__(
        self,
        pinger: Pinger,
        config: Optional[CampaignConfig] = None,
    ) -> None:
        self._pinger = pinger
        self._config = config or CampaignConfig()

    def run(
        self,
        targets: Sequence[Tuple[UserGroup, Peering]],
        day: int = 0,
        faults: Optional[FaultSchedule] = None,
        seed: int = 0,
    ) -> CampaignResult:
        """Measure every (UG, peering) target; returns the result store.

        Probes are spaced to honor the rate limit; each target gets
        ``samples_per_target`` probes whose minimum is recorded.  A probe
        lost to the pinger's loss model, to a ``faults`` probe-loss window,
        or to a dark PoP is retried after an exponentially-backed-off delay
        until ``max_retries`` is exhausted.  Probes falling into a
        ``StaleMeasurement`` window return the *previous* day's value and
        mark the target stale.
        """
        config = self._config
        result = CampaignResult()
        run_cm = TRACER.span(
            "campaign.run", targets=len(targets), day=day,
            faulted=faults is not None,
        )
        run_span = run_cm.__enter__()
        loop = EventLoop()
        interval_s = 1.0 / config.probes_per_second
        rng = random.Random(seed)

        samples: Dict[Tuple[int, int], List[float]] = {}
        probe_index = 0

        def fire_probe(
            loop: EventLoop,
            ug: UserGroup,
            peering: Peering,
            key: Tuple[int, int],
            attempt: int,
        ) -> None:
            now = loop.now_s
            result.probes_sent += 1
            result.attempts[key] = result.attempts.get(key, 0) + 1

            lost = False
            if faults is not None:
                if faults.pop_down(peering.pop.name, now):
                    lost = True  # the whole PoP is dark: nothing answers
                elif faults.probe_loss_rate(now) > 0 and rng.random() < faults.probe_loss_rate(now):
                    lost = True
            rtt: Optional[float] = None
            stale = False
            if not lost:
                probe_day = day
                if faults is not None and faults.stale_fraction(now) > 0:
                    if rng.random() < faults.stale_fraction(now):
                        probe_day = max(0, day - 1)
                        stale = probe_day != day
                rtt = self._pinger.min_latency_ms(ug, peering, count=1, day=probe_day)
                lost = rtt is None

            if lost:
                result.probes_lost += 1
                if attempt <= config.max_retries:
                    result.retries += 1
                    backoff_s = config.retry_backoff_s * (2 ** (attempt - 1))
                    loop.schedule_in(
                        backoff_s,
                        lambda loop, ug=ug, peering=peering, key=key, attempt=attempt + 1: fire_probe(
                            loop, ug, peering, key, attempt
                        ),
                    )
                return
            assert rtt is not None
            samples[key].append(rtt)
            if stale:
                result.stale_targets.add(key)

        for ug, peering in targets:
            key = (ug.ug_id, peering.peering_id)
            samples.setdefault(key, [])
            for _ in range(config.samples_per_target):
                when = probe_index * interval_s
                probe_index += 1
                loop.schedule_at(
                    when,
                    lambda loop, ug=ug, peering=peering, key=key: fire_probe(
                        loop, ug, peering, key, attempt=1
                    ),
                )
        loop.run_all()
        result.duration_s = loop.now_s if probe_index else 0.0

        for key, values in samples.items():
            if values:
                result.latencies_ms[key] = min(values)
                result.targets_measured += 1
            else:
                result.targets_unreachable += 1
                result.stale_targets.discard(key)
        run_span.tag("probes_sent", result.probes_sent)
        run_span.tag("probes_lost", result.probes_lost)
        run_span.tag("retries", result.retries)
        run_cm.__exit__(None, None, None)
        emit_event(
            "campaign",
            day=day,
            targets=len(targets),
            probes_sent=result.probes_sent,
            probes_lost=result.probes_lost,
            retries=result.retries,
            measured=result.targets_measured,
            unreachable=result.targets_unreachable,
            stale=len(result.stale_targets),
        )
        return result


def campaign_targets(
    scenario, max_targets_per_ug: Optional[int] = None
) -> List[Tuple[UserGroup, Peering]]:
    """Every policy-compliant (UG, peering) pair, optionally capped per UG."""
    targets: List[Tuple[UserGroup, Peering]] = []
    for ug in scenario.user_groups:
        peerings = scenario.catalog.ingresses(ug)
        if max_targets_per_ug is not None:
            peerings = peerings[:max_targets_per_ug]
        targets.extend((ug, peering) for peering in peerings)
    return targets
