"""Measurement campaigns: scheduled, rate-limited probing.

The Advertisement Orchestrator "takes measurements from TM-Edges" (§4); in
practice that means a probing campaign: many (UG, ingress) targets, a probe
rate the edge boxes and targets can tolerate, several samples per target
(the paper pings each target 7 times), and a results store the optimizer
reads.  This module runs such a campaign over the discrete-event engine and
exposes the results in the ``latency_of`` shape Algorithm 1 consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.measurement.ping import DEFAULT_PING_COUNT, Pinger
from repro.simulation.events import EventLoop
from repro.topology.cloud import Peering
from repro.usergroups.usergroup import UserGroup


@dataclass(frozen=True)
class CampaignConfig:
    #: Probes per second across the whole campaign (rate limit).
    probes_per_second: float = 50.0
    #: Samples per target (paper: ping 7 times, take the min).
    samples_per_target: int = DEFAULT_PING_COUNT

    def __post_init__(self) -> None:
        if self.probes_per_second <= 0:
            raise ValueError("probe rate must be positive")
        if self.samples_per_target < 1:
            raise ValueError("need at least one sample per target")


@dataclass
class CampaignResult:
    """Collected minima plus campaign accounting."""

    latencies_ms: Dict[Tuple[int, int], float] = field(default_factory=dict)
    probes_sent: int = 0
    targets_measured: int = 0
    targets_unreachable: int = 0
    duration_s: float = 0.0

    def latency_of(self, ug: UserGroup, peering_id: int) -> Optional[float]:
        """Adapter with the orchestrator's ``latency_of`` signature."""
        return self.latencies_ms.get((ug.ug_id, peering_id))


class MeasurementCampaign:
    """Probes a target list at a bounded rate over simulated time."""

    def __init__(
        self,
        pinger: Pinger,
        config: Optional[CampaignConfig] = None,
    ) -> None:
        self._pinger = pinger
        self._config = config or CampaignConfig()

    def run(
        self, targets: Sequence[Tuple[UserGroup, Peering]], day: int = 0
    ) -> CampaignResult:
        """Measure every (UG, peering) target; returns the result store.

        Probes are spaced to honor the rate limit; each target gets
        ``samples_per_target`` probes whose minimum is recorded.
        """
        config = self._config
        result = CampaignResult()
        loop = EventLoop()
        interval_s = 1.0 / config.probes_per_second

        samples: Dict[Tuple[int, int], List[float]] = {}
        probe_index = 0
        for ug, peering in targets:
            key = (ug.ug_id, peering.peering_id)
            samples.setdefault(key, [])
            for _ in range(config.samples_per_target):
                when = probe_index * interval_s
                probe_index += 1

                def fire(
                    loop: EventLoop,
                    ug: UserGroup = ug,
                    peering: Peering = peering,
                    key: Tuple[int, int] = key,
                ) -> None:
                    result.probes_sent += 1
                    rtt = self._pinger.min_latency_ms(ug, peering, count=1, day=day)
                    if rtt is not None:
                        samples[key].append(rtt)

                loop.schedule_at(when, fire)
        loop.run_all()
        result.duration_s = max(0.0, (probe_index - 1) * interval_s) if probe_index else 0.0

        for key, values in samples.items():
            if values:
                result.latencies_ms[key] = min(values)
                result.targets_measured += 1
            else:
                result.targets_unreachable += 1
        return result


def campaign_targets(
    scenario, max_targets_per_ug: Optional[int] = None
) -> List[Tuple[UserGroup, Peering]]:
    """Every policy-compliant (UG, peering) pair, optionally capped per UG."""
    targets: List[Tuple[UserGroup, Peering]] = []
    for ug in scenario.user_groups:
        peerings = scenario.catalog.ingresses(ug)
        if max_targets_per_ug is not None:
            peerings = peerings[:max_targets_per_ug]
        targets.extend((ug, peering) for peering in peerings)
    return targets
