"""Ground-truth latency between user groups and cloud ingresses.

This is the synthetic stand-in for the physical Internet the paper measured
with RIPE Atlas and Azure's measurement system.  Latency from a UG through a
peering decomposes into:

* propagation over fiber at geodesic distance (UG metro -> peering's PoP),
* a per-UG last-mile constant,
* a hidden per-(UG AS, peer AS) *inflation penalty* — circuitous intra-AS
  routing.  The paper found such inflation concentrated at transit providers
  ("those transit providers tended to inflate routes even over very large
  distances"), so transit peerings draw larger penalties more often.

The model also supports a ``day`` parameter: latencies drift slowly and
peerings occasionally suffer day-scale degradations, which drives the
benefit-retention-over-a-month experiment (Fig. 7).
"""

from __future__ import annotations

import math
import random

from repro.util import stable_rng
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.topology.cloud import Peering
from repro.topology.geo import fiber_rtt_ms, haversine_km
from repro.usergroups.usergroup import UserGroup


@dataclass(frozen=True)
class LatencyModelConfig:
    """Distributional knobs of the ground-truth model."""

    seed: int = 0
    #: Last-mile RTT added per UG, uniform in [min, max] ms.
    last_mile_min_ms: float = 1.0
    last_mile_max_ms: float = 12.0
    #: Probability a (UG AS, peer AS) pair suffers large inflation.
    inflation_prob_peer: float = 0.12
    inflation_prob_transit: float = 0.30
    #: Inflation penalty range (ms) when present.
    inflation_min_ms: float = 20.0
    inflation_max_ms: float = 150.0
    #: Small always-present intra-AS wiggle (ms), uniform in [0, x].
    base_wiggle_ms: float = 5.0
    #: Day-scale drift amplitude (ms) and event characteristics (Fig. 7).
    drift_amplitude_ms: float = 4.0
    event_prob_per_peering_day: float = 0.10
    event_penalty_ms: float = 150.0

    def __post_init__(self) -> None:
        if self.last_mile_min_ms < 0 or self.last_mile_max_ms < self.last_mile_min_ms:
            raise ValueError("invalid last-mile range")
        if not 0 <= self.inflation_prob_peer <= 1 or not 0 <= self.inflation_prob_transit <= 1:
            raise ValueError("inflation probabilities must be in [0,1]")


class LatencyModel:
    """Deterministic ground-truth min-RTT oracle.

    All values derive from ``(seed, identifiers)`` hashes, so the model needs
    no precomputation, is stable across calls, and scales to any population.
    """

    def __init__(self, config: Optional[LatencyModelConfig] = None) -> None:
        self._config = config or LatencyModelConfig()
        self._cache: Dict[Tuple[int, int, int], float] = {}
        # Component memos.  Each static component depends on far fewer keys
        # than there are (UG, peering) pairs — last mile on the UG alone,
        # inflation on the AS pair, propagation on the (UG, PoP) pair — so
        # caching them skips most of the per-pair RNG seeding during a bulk
        # latency-matrix fill without changing a single returned value.
        self._last_mile_memo: Dict[Tuple[int, str], float] = {}
        self._inflation_memo: Dict[Tuple[int, int, bool], float] = {}
        self._propagation_memo: Dict[Tuple[int, str], float] = {}

    @property
    def config(self) -> LatencyModelConfig:
        return self._config

    def _rng(self, *key: object) -> "random.Random":
        return stable_rng(self._config.seed, *key)

    # -- static components ---------------------------------------------------

    def last_mile_ms(self, ug: UserGroup) -> float:
        key = (ug.asn, ug.metro.name)
        value = self._last_mile_memo.get(key)
        if value is None:
            rng = self._rng("last-mile", *key)
            value = rng.uniform(
                self._config.last_mile_min_ms, self._config.last_mile_max_ms
            )
            self._last_mile_memo[key] = value
        return value

    def inflation_penalty_ms(self, ug: UserGroup, peering: Peering) -> float:
        """Hidden intra-AS inflation for this (UG AS, peer AS) pair."""
        cfg = self._config
        key = (ug.asn, peering.peer_asn, peering.is_transit)
        value = self._inflation_memo.get(key)
        if value is None:
            rng = self._rng("inflate", ug.asn, peering.peer_asn)
            prob = cfg.inflation_prob_transit if peering.is_transit else cfg.inflation_prob_peer
            if rng.random() < prob:
                value = rng.uniform(cfg.inflation_min_ms, cfg.inflation_max_ms)
            else:
                value = rng.uniform(0.0, cfg.base_wiggle_ms)
            self._inflation_memo[key] = value
        return value

    def propagation_ms(self, ug: UserGroup, peering: Peering) -> float:
        key = (ug.ug_id, peering.pop.name)
        value = self._propagation_memo.get(key)
        if value is None:
            distance = haversine_km(ug.location, peering.pop.location)
            value = fiber_rtt_ms(distance)
            self._propagation_memo[key] = value
        return value

    # -- day-varying components (Fig. 7) -------------------------------------

    def drift_ms(self, ug: UserGroup, peering: Peering, day: int) -> float:
        rng = self._rng("drift", ug.asn, peering.peering_id, day)
        return rng.uniform(0.0, self._config.drift_amplitude_ms)

    def event_penalty_ms(self, peering: Peering, day: int) -> float:
        """Day-scale degradation affecting everyone through a peering."""
        rng = self._rng("event", peering.peering_id, day)
        if rng.random() < self._config.event_prob_per_peering_day:
            return self._config.event_penalty_ms * rng.uniform(0.5, 1.5)
        return 0.0

    # -- the oracle ----------------------------------------------------------

    def clear_caches(self) -> None:
        """Drop every memo dict (values are pure seeded functions).

        Each memoized component is fully determined by its key (the RNG is
        re-seeded per key via ``stable_rng``), so clearing never changes a
        subsequently returned value — it only trades recompute time for
        memory.  The 100k-UG dense-matrix fill trims these between chunks.
        """
        self._cache.clear()
        self._last_mile_memo.clear()
        self._inflation_memo.clear()
        self._propagation_memo.clear()

    def latency_ms(self, ug: UserGroup, peering: Peering, day: int = 0) -> float:
        """True min-RTT from ``ug`` through ``peering``, on ``day``."""
        key = (ug.ug_id, peering.peering_id, day)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        value = (
            self.propagation_ms(ug, peering)
            + self.last_mile_ms(ug)
            + self.inflation_penalty_ms(ug, peering)
        )
        if day:
            value += self.drift_ms(ug, peering, day) + self.event_penalty_ms(peering, day)
        self._cache[key] = value
        return value
