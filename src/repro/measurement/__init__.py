"""Measurement substrate: latency oracle, pings, geolocation, probes."""

from repro.measurement.campaign import (
    CampaignConfig,
    CampaignResult,
    MeasurementCampaign,
    campaign_targets,
)
from repro.measurement.extrapolation import ExtrapolationConfig, SimulatedMeasurements
from repro.measurement.geolocation import GeoTarget, GeolocationCatalog, GeolocationConfig
from repro.measurement.latency_model import LatencyModel, LatencyModelConfig
from repro.measurement.ping import DEFAULT_PING_COUNT, Pinger, PingResult
from repro.measurement.probes import ProbeFleet, ProbeFleetConfig
from repro.measurement.traceroute import (
    Traceroute,
    TracerouteConfig,
    TracerouteHop,
    ValidationReport,
    synthesize_traceroute,
    validate_policy_compliance,
)

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "DEFAULT_PING_COUNT",
    "MeasurementCampaign",
    "campaign_targets",
    "ExtrapolationConfig",
    "SimulatedMeasurements",
    "GeoTarget",
    "GeolocationCatalog",
    "GeolocationConfig",
    "LatencyModel",
    "LatencyModelConfig",
    "Pinger",
    "PingResult",
    "ProbeFleet",
    "Traceroute",
    "TracerouteConfig",
    "TracerouteHop",
    "ValidationReport",
    "synthesize_traceroute",
    "validate_policy_compliance",
    "ProbeFleetConfig",
]
