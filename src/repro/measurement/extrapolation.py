"""Simulating measurements for UGs without probes (Appendix C).

RIPE Atlas only covers ~47% of traffic volume, so the paper extrapolates:
for a UG without a probe, find probes within 500 km whose anycast latency is
within 10 ms, pool the *improvements over anycast* those probes saw along
their policy-compliant ingresses ("representative improvements"), and draw
each of the UG's per-ingress latencies from that pool.  "Probes in areas
with good routing ... induce simulated measurements for nearby UGs with good
routing."

The result is a latency source (``(ug, peering_id) -> Optional[float]``)
usable anywhere the orchestrator accepts one, letting the Fig. 6a pipeline
run over the full population from partial real coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from typing import TYPE_CHECKING

from repro.measurement.probes import ProbeFleet
from repro.usergroups.usergroup import UserGroup
from repro.util import stable_rng

if TYPE_CHECKING:  # avoid a circular import; Scenario is annotation-only here
    from repro.scenario import Scenario


@dataclass(frozen=True)
class ExtrapolationConfig:
    seed: int = 0
    #: Neighborhood radius for donor probes (paper: 500 km).
    radius_km: float = 500.0
    #: Max anycast-latency difference for a donor probe (paper: 10 ms).
    latency_tolerance_ms: float = 10.0


class SimulatedMeasurements:
    """Latency source combining real probe measurements and extrapolation.

    * UGs hosting a probe: true measured latency (via the ground-truth model,
      standing in for actual pings);
    * other UGs: anycast latency plus an improvement drawn from nearby
      probes' representative-improvement pool (clamped non-negative);
    * UGs with no eligible donor probes: ``None`` (unmeasurable), matching
      the paper's exclusion of uncovered UGs from real-measurement analyses.
    """

    def __init__(
        self,
        scenario: Scenario,
        fleet: ProbeFleet,
        config: Optional[ExtrapolationConfig] = None,
    ) -> None:
        self._scenario = scenario
        self._fleet = fleet
        self._config = config or ExtrapolationConfig()
        self._anycast = scenario.anycast_latencies()
        self._pool_cache: Dict[int, Optional[List[float]]] = {}
        self._value_cache: Dict[tuple, Optional[float]] = {}

    # -- donor pools -----------------------------------------------------------

    def _probe_improvements(self, probe: UserGroup) -> List[float]:
        """Improvements over anycast along the probe's compliant ingresses."""
        scenario = self._scenario
        anycast = self._anycast[probe.ug_id]
        improvements = []
        for peering in scenario.catalog.ingresses(probe):
            latency = scenario.latency_model.latency_ms(probe, peering)
            improvements.append(anycast - latency)  # may be negative
        return improvements

    def representative_improvements(self, ug: UserGroup) -> Optional[List[float]]:
        """The pooled improvements of all eligible donor probes."""
        cached = self._pool_cache.get(ug.ug_id, "unset")
        if cached != "unset":
            return cached  # type: ignore[return-value]
        donors = self._fleet.probes_near(
            ug,
            radius_km=self._config.radius_km,
            anycast_latency_ms=self._anycast,
            latency_tolerance_ms=self._config.latency_tolerance_ms,
        )
        pool: Optional[List[float]]
        if not donors:
            pool = None
        else:
            pool = []
            for donor in donors:
                pool.extend(self._probe_improvements(donor))
        self._pool_cache[ug.ug_id] = pool
        return pool

    # -- the latency source ------------------------------------------------------

    def __call__(self, ug: UserGroup, peering_id: int) -> Optional[float]:
        key = (ug.ug_id, peering_id)
        if key in self._value_cache:
            return self._value_cache[key]
        value = self._compute(ug, peering_id)
        self._value_cache[key] = value
        return value

    def _compute(self, ug: UserGroup, peering_id: int) -> Optional[float]:
        scenario = self._scenario
        peering = scenario.deployment.peering(peering_id)
        if not scenario.catalog.is_compliant(ug, peering):
            return None
        if self._fleet.has_probe(ug):
            # Real measurement.
            return scenario.latency_model.latency_ms(ug, peering)
        pool = self.representative_improvements(ug)
        if not pool:
            return None
        rng = stable_rng(self._config.seed, "extrapolate", ug.ug_id, peering_id)
        improvement = rng.choice(pool)
        return max(0.5, self._anycast[ug.ug_id] - improvement)

    # -- coverage reporting -------------------------------------------------------

    def measurable_fraction(self) -> float:
        """Fraction of UGs with real or simulated measurements."""
        count = 0
        for ug in self._scenario.user_groups:
            if self._fleet.has_probe(ug) or self.representative_improvements(ug):
                count += 1
        return count / max(1, len(self._scenario.user_groups))
