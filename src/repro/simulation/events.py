"""A minimal discrete-event simulation engine.

Drives the Traffic Manager experiments (Fig. 10), where what matters is
*timing*: failure detection within ~1 RTT, BGP reconvergence over seconds,
DNS failover over minutes.  Events are (time, sequence, callback) triples on
a heap; callbacks may schedule further events.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

Callback = Callable[["EventLoop"], None]


@dataclass(order=True)
class _ScheduledEvent:
    time_s: float
    sequence: int
    callback: Callback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventLoop:
    """Heap-based event loop with a monotonically advancing clock."""

    def __init__(self) -> None:
        self._heap: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now_s(self) -> float:
        return self._now

    @property
    def processed_events(self) -> int:
        return self._processed

    @property
    def pending_events(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule_at(self, time_s: float, callback: Callback) -> _ScheduledEvent:
        """Schedule ``callback`` at an absolute time (>= now)."""
        if math.isnan(time_s) or time_s < self._now:
            raise ValueError(f"cannot schedule at {time_s} (now={self._now})")
        event = _ScheduledEvent(time_s=time_s, sequence=next(self._sequence), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delay_s: float, callback: Callback) -> _ScheduledEvent:
        """Schedule ``callback`` after a relative delay (>= 0)."""
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self._now + delay_s, callback)

    def cancel(self, event: _ScheduledEvent) -> None:
        event.cancelled = True

    def run_until(self, end_time_s: float) -> None:
        """Process events with time <= ``end_time_s``; clock ends there."""
        while self._heap and self._heap[0].time_s <= end_time_s:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time_s
            self._processed += 1
            event.callback(self)
        self._now = max(self._now, end_time_s)

    def run_all(self, max_events: int = 1_000_000) -> None:
        """Drain the queue entirely (bounded against runaway scheduling)."""
        for _ in range(max_events):
            if not self._heap:
                return
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time_s
            self._processed += 1
            event.callback(self)
        raise RuntimeError(f"exceeded {max_events} events; runaway schedule?")
