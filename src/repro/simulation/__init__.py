"""Discrete-event simulation engine."""

from repro.simulation.events import EventLoop

__all__ = ["EventLoop"]
