"""Synthetic user-group population with Zipf-distributed traffic volumes.

Azure weights UGs by traffic volume when maximizing benefit (Eq. 1); traffic
volumes across networks are famously heavy-tailed, so we draw weights from a
Zipf-like distribution.  UGs are placed in metros near their AS's home metro,
giving multi-metro ASes several UGs, like the paper's (AS, metro) grouping.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.topology.builder import Topology
from repro.topology.geo import WORLD_METROS, Metro, haversine_km
from repro.usergroups.usergroup import UserGroup


@dataclass(frozen=True)
class UserGroupConfig:
    """Knobs for the synthetic UG population."""

    seed: int = 0
    n_ugs: int = 500
    #: Zipf exponent for traffic volume (1.0-1.2 matches web-traffic studies).
    zipf_exponent: float = 1.1
    #: Max distance (km) between an AS's home metro and a UG's metro.
    metro_spread_km: float = 2500.0
    #: Probability a UG lands in its AS's home metro exactly.
    home_metro_prob: float = 0.6
    #: Metro pool UGs may land in.  ``None`` means :data:`WORLD_METROS`;
    #: presets with an extended topology pool pass the same pool here.
    metros: Optional[Tuple[Metro, ...]] = None

    def __post_init__(self) -> None:
        if self.n_ugs < 1:
            raise ValueError("need at least one UG")
        if self.zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")


def zipf_weights(n: int, exponent: float) -> List[float]:
    """Weights proportional to 1/rank^exponent, normalized to sum to 1."""
    if n < 1:
        raise ValueError("n must be >= 1")
    raw = [1.0 / (rank**exponent) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def generate_user_groups(
    topology: Topology, config: Optional[UserGroupConfig] = None
) -> List[UserGroup]:
    """Create a reproducible UG population over the topology's edge ASes."""
    config = config or UserGroupConfig()
    rng = random.Random(config.seed)

    edge_asns = topology.edge_asns()
    if not edge_asns:
        raise ValueError("topology has no edge ASes to host user groups")

    weights = zipf_weights(config.n_ugs, config.zipf_exponent)
    rng.shuffle(weights)  # volume rank should not correlate with creation order

    pool: Sequence[Metro] = config.metros if config.metros is not None else WORLD_METROS
    # ASes sharing a home metro share a nearby-metro list; memoize it so the
    # placement loop stays O(attempts), not O(attempts x pool).
    nearby_memo: Dict[str, List[Metro]] = {}

    ugs: List[UserGroup] = []
    seen_keys = set()
    attempts = 0
    while len(ugs) < config.n_ugs and attempts < config.n_ugs * 20:
        attempts += 1
        asn = rng.choice(edge_asns)
        home = topology.graph.get_as(asn).home_metro
        assert home is not None
        metro = _pick_metro(rng, home, config, pool, nearby_memo)
        key = (asn, metro.name)
        if key in seen_keys:
            continue
        seen_keys.add(key)
        ugs.append(
            UserGroup(
                ug_id=len(ugs),
                asn=asn,
                metro=metro,
                volume=weights[len(ugs)],
            )
        )
    if len(ugs) < config.n_ugs:
        raise RuntimeError(
            f"could only place {len(ugs)}/{config.n_ugs} distinct UGs; "
            "increase topology size or metro spread"
        )
    return ugs


def _pick_metro(
    rng: random.Random,
    home: Metro,
    config: UserGroupConfig,
    pool: Sequence[Metro],
    nearby_memo: Dict[str, List[Metro]],
) -> Metro:
    if rng.random() < config.home_metro_prob:
        return home
    nearby = nearby_memo.get(home.name)
    if nearby is None:
        nearby = [
            metro
            for metro in pool
            if haversine_km(metro.location, home.location) <= config.metro_spread_km
        ]
        nearby_memo[home.name] = nearby
    return rng.choice(nearby) if nearby else home


def total_volume(ugs: Sequence[UserGroup]) -> float:
    return sum(ug.volume for ug in ugs)
