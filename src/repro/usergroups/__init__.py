"""User groups: population generation and policy-compliant ingresses."""

from repro.usergroups.generation import (
    UserGroupConfig,
    generate_user_groups,
    total_volume,
    zipf_weights,
)
from repro.usergroups.ingresses import IngressCatalog, policy_compliant_peerings
from repro.usergroups.usergroup import UserGroup

__all__ = [
    "IngressCatalog",
    "UserGroup",
    "UserGroupConfig",
    "generate_user_groups",
    "policy_compliant_peerings",
    "total_volume",
    "zipf_weights",
]
