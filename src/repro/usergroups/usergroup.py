"""User groups: the unit PAINTER optimizes for.

"To simplify calculation, we logically group users in the same AS and large
metropolitan area, referring to each group as a UG (user group)" (§3.1).
Each UG carries a traffic-volume weight used in the benefit objective
(Eq. 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.topology.geo import GeoPoint, Metro


@dataclass(frozen=True)
class UserGroup:
    """Users of one AS in one metropolitan area."""

    ug_id: int
    asn: int
    metro: Metro
    volume: float

    def __post_init__(self) -> None:
        if self.volume < 0:
            raise ValueError(f"volume must be non-negative, got {self.volume}")

    @property
    def location(self) -> GeoPoint:
        return self.metro.location

    @property
    def key(self) -> Tuple[int, str]:
        """Natural identity of a UG: (ASN, metro name)."""
        return (self.asn, self.metro.name)

    def __str__(self) -> str:
        return f"UG{self.ug_id}[AS{self.asn}@{self.metro.name}, w={self.volume:.2f}]"
