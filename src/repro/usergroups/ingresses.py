"""Policy-compliant ingress derivation (§3.1).

The paper derives, for each UG, the set of peerings through which traffic
*could* enter the cloud consistent with routing policy:

1. a peering is policy-compliant if the UG's own prefixes are announced over
   it (here: the peer AS *is* the UG's AS — a direct peering);
2. a peering is policy-compliant if the UG's AS is in the peer's customer
   cone (the peer will carry its customers' traffic anywhere);
3. every UG is policy-compliant through the cloud's transit providers
   ("we add all UGs to customer cones of Azure transit providers").
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Set

from repro.topology.builder import Topology
from repro.topology.cloud import Peering
from repro.usergroups.usergroup import UserGroup


def policy_compliant_peerings(ug: UserGroup, topology: Topology) -> List[Peering]:
    """All peerings through which ``ug`` can reach the cloud per policy."""
    deployment = topology.deployment
    graph = topology.graph
    result: List[Peering] = []
    for peering in deployment.peerings:
        if peering.is_transit:
            result.append(peering)  # rule 3: transit carries everyone
            continue
        if peering.peer_asn == ug.asn:
            result.append(peering)  # rule 1: direct peering
            continue
        if peering.peer_asn in graph and graph.in_customer_cone(ug.asn, of=peering.peer_asn):
            result.append(peering)  # rule 2: customer cone
    return result


class IngressCatalog:
    """Precomputed policy-compliant ingress sets for a UG population.

    The orchestrator consults these sets constantly (every improvement
    evaluation in Algorithm 1), so they are computed once.  Matches the
    paper's observation that "UGs tend to have paths via a relatively small
    fraction of ingresses" for non-transit peerings, with transit providers
    forming the shared floor.

    The build is inverted relative to :func:`policy_compliant_peerings`:
    instead of scanning every peering per UG (O(UGs x peerings) — 220M rule
    evaluations at mega scale), it walks each distinct peer AS's customer
    cone once and fans the peering ids out to the UG ASNs inside it.  Both
    formulations produce identical sets (a cone contains its own AS, so the
    direct-peering rule is subsumed for in-graph peers; out-of-graph direct
    peers are handled explicitly), which a regression test asserts.
    """

    def __init__(self, topology: Topology, ugs: Sequence[UserGroup]) -> None:
        self._topology = topology
        self._ugs = list(ugs)
        self._by_ug: Dict[int, FrozenSet[int]] = {}

        graph = topology.graph
        peerings = topology.deployment.peerings
        transit_ids = frozenset(p.peering_id for p in peerings if p.is_transit)
        nontransit_by_peer: Dict[int, List[int]] = {}
        for peering in peerings:
            if not peering.is_transit:
                nontransit_by_peer.setdefault(peering.peer_asn, []).append(
                    peering.peering_id
                )

        ugs_by_asn: Dict[int, List[UserGroup]] = {}
        for ug in self._ugs:
            ugs_by_asn.setdefault(ug.asn, []).append(ug)
        ug_asn_set = frozenset(ugs_by_asn)

        extra: Dict[int, Set[int]] = {asn: set() for asn in ugs_by_asn}
        for peer_asn, pids in nontransit_by_peer.items():
            if peer_asn in graph:
                # Rules 1+2: every UG AS in the peer's customer cone (which
                # includes the peer itself) may enter via these peerings.
                for asn in graph.customer_cone(peer_asn) & ug_asn_set:
                    extra[asn].update(pids)
            elif peer_asn in ug_asn_set:
                extra[peer_asn].update(pids)  # rule 1: out-of-graph direct peer

        # Intern identical sets: UG ASNs under the same cones share one
        # frozenset object instead of thousands of equal copies.
        interned: Dict[FrozenSet[int], FrozenSet[int]] = {}
        for asn, members in ugs_by_asn.items():
            ids = frozenset(transit_ids | extra[asn]) if extra[asn] else transit_ids
            ids = interned.setdefault(ids, ids)
            for ug in members:
                self._by_ug[ug.ug_id] = ids

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def user_groups(self) -> List[UserGroup]:
        return list(self._ugs)

    def ingress_ids(self, ug: UserGroup) -> FrozenSet[int]:
        try:
            return self._by_ug[ug.ug_id]
        except KeyError:
            raise KeyError(f"UG {ug.ug_id} not in catalog") from None

    def ingresses(self, ug: UserGroup) -> List[Peering]:
        deployment = self._topology.deployment
        return [deployment.peering(pid) for pid in sorted(self.ingress_ids(ug))]

    def is_compliant(self, ug: UserGroup, peering: Peering) -> bool:
        return peering.peering_id in self.ingress_ids(ug)

    def compliant_subset(self, ug: UserGroup, peering_ids: Iterable[int]) -> FrozenSet[int]:
        """The subset of ``peering_ids`` that are policy-compliant for ``ug``."""
        ids = self.ingress_ids(ug)
        if isinstance(peering_ids, (set, frozenset)):
            return ids & peering_ids  # hot path: no intermediate frozenset
        return ids & frozenset(peering_ids)

    def coverage_stats(self) -> Mapping[str, float]:
        """Summary statistics used in tests and the scaling experiments."""
        counts = [len(self._by_ug[ug.ug_id]) for ug in self._ugs]
        if not counts:
            return {"min": 0.0, "mean": 0.0, "max": 0.0}
        return {
            "min": float(min(counts)),
            "mean": sum(counts) / len(counts),
            "max": float(max(counts)),
        }
