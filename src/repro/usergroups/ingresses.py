"""Policy-compliant ingress derivation (§3.1).

The paper derives, for each UG, the set of peerings through which traffic
*could* enter the cloud consistent with routing policy:

1. a peering is policy-compliant if the UG's own prefixes are announced over
   it (here: the peer AS *is* the UG's AS — a direct peering);
2. a peering is policy-compliant if the UG's AS is in the peer's customer
   cone (the peer will carry its customers' traffic anywhere);
3. every UG is policy-compliant through the cloud's transit providers
   ("we add all UGs to customer cones of Azure transit providers").
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence

from repro.topology.builder import Topology
from repro.topology.cloud import Peering
from repro.usergroups.usergroup import UserGroup


def policy_compliant_peerings(ug: UserGroup, topology: Topology) -> List[Peering]:
    """All peerings through which ``ug`` can reach the cloud per policy."""
    deployment = topology.deployment
    graph = topology.graph
    result: List[Peering] = []
    for peering in deployment.peerings:
        if peering.is_transit:
            result.append(peering)  # rule 3: transit carries everyone
            continue
        if peering.peer_asn == ug.asn:
            result.append(peering)  # rule 1: direct peering
            continue
        if peering.peer_asn in graph and graph.in_customer_cone(ug.asn, of=peering.peer_asn):
            result.append(peering)  # rule 2: customer cone
    return result


class IngressCatalog:
    """Precomputed policy-compliant ingress sets for a UG population.

    The orchestrator consults these sets constantly (every improvement
    evaluation in Algorithm 1), so they are computed once.  Matches the
    paper's observation that "UGs tend to have paths via a relatively small
    fraction of ingresses" for non-transit peerings, with transit providers
    forming the shared floor.
    """

    def __init__(self, topology: Topology, ugs: Sequence[UserGroup]) -> None:
        self._topology = topology
        self._ugs = list(ugs)
        self._by_ug: Dict[int, FrozenSet[int]] = {}
        for ug in self._ugs:
            peerings = policy_compliant_peerings(ug, topology)
            self._by_ug[ug.ug_id] = frozenset(p.peering_id for p in peerings)

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def user_groups(self) -> List[UserGroup]:
        return list(self._ugs)

    def ingress_ids(self, ug: UserGroup) -> FrozenSet[int]:
        try:
            return self._by_ug[ug.ug_id]
        except KeyError:
            raise KeyError(f"UG {ug.ug_id} not in catalog") from None

    def ingresses(self, ug: UserGroup) -> List[Peering]:
        deployment = self._topology.deployment
        return [deployment.peering(pid) for pid in sorted(self.ingress_ids(ug))]

    def is_compliant(self, ug: UserGroup, peering: Peering) -> bool:
        return peering.peering_id in self.ingress_ids(ug)

    def compliant_subset(self, ug: UserGroup, peering_ids: Iterable[int]) -> FrozenSet[int]:
        """The subset of ``peering_ids`` that are policy-compliant for ``ug``."""
        ids = self.ingress_ids(ug)
        if isinstance(peering_ids, (set, frozenset)):
            return ids & peering_ids  # hot path: no intermediate frozenset
        return ids & frozenset(peering_ids)

    def coverage_stats(self) -> Mapping[str, float]:
        """Summary statistics used in tests and the scaling experiments."""
        counts = [len(self._by_ug[ug.ug_id]) for ug in self._ugs]
        if not counts:
            return {"min": 0.0, "mean": 0.0, "max": 0.0}
        return {
            "min": float(min(counts)),
            "mean": sum(counts) / len(counts),
            "max": float(max(counts)),
        }
