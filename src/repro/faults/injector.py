"""FaultInjector: arms a FaultSchedule on the discrete-event engine.

The schedule is declarative; the injector makes it operational.  It

* schedules every fault transition on an :class:`repro.simulation.events.EventLoop`
  so experiments can react as faults fire (and tests can assert ordering);
* maintains the set of currently-active faults as ground truth for
  consumers that poll instead of subscribe;
* replays :class:`repro.faults.events.LinkFlap` transitions into an RFC
  2439 :class:`repro.bgp.flap_damping.FlapDampingState`, tying chaos
  experiments to the damping model the orchestrator paces itself against;
* derives an :class:`ObservationFaults` filter so the Advertisement
  Orchestrator's learning loop sees exactly the missing/stale observation
  pattern the schedule dictates.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.bgp.flap_damping import DampingConfig, FlapDampingState
from repro.faults.events import FaultEvent, LinkFlap
from repro.faults.schedule import FaultSchedule
from repro.simulation.events import EventLoop

FaultListener = Callable[[float, FaultEvent, bool], None]

#: Observation outcomes the injector can assign to a learning-loop sample.
OUTCOME_OK = "ok"
OUTCOME_MISSING = "missing"
OUTCOME_STALE = "stale"


class FaultInjector:
    """Arms a schedule on an event loop and exposes ground truth."""

    def __init__(self, schedule: FaultSchedule, seed: int = 0) -> None:
        self._schedule = schedule
        self._seed = seed
        self._active: Set[FaultEvent] = set()
        self._fired: List[Tuple[float, FaultEvent, bool]] = []
        self._listeners: List[FaultListener] = []

    @property
    def schedule(self) -> FaultSchedule:
        return self._schedule

    @property
    def active_faults(self) -> Set[FaultEvent]:
        """Faults currently in force (only meaningful once armed and run)."""
        return set(self._active)

    @property
    def fired_transitions(self) -> List[Tuple[float, FaultEvent, bool]]:
        """Ground-truth perturbation log: every transition that has fired."""
        return list(self._fired)

    def subscribe(self, listener: FaultListener) -> None:
        """Call ``listener(time_s, event, went_down)`` on each transition."""
        self._listeners.append(listener)

    def arm(self, loop: EventLoop) -> int:
        """Schedule every fault transition on ``loop``; returns the count.

        Transitions earlier than ``loop.now_s`` are applied immediately so a
        schedule can be armed mid-run without losing already-active faults.
        """
        armed = 0
        for time_s, event, went_down in self._schedule.transitions():
            if time_s < loop.now_s:
                self._apply(time_s, event, went_down)
                continue

            def fire(
                loop: EventLoop,
                time_s: float = time_s,
                event: FaultEvent = event,
                went_down: bool = went_down,
            ) -> None:
                self._apply(time_s, event, went_down)

            loop.schedule_at(time_s, fire)
            armed += 1
        return armed

    def _apply(self, time_s: float, event: FaultEvent, went_down: bool) -> None:
        if went_down:
            self._active.add(event)
        else:
            self._active.discard(event)
        self._fired.append((time_s, event, went_down))
        for listener in self._listeners:
            listener(time_s, event, went_down)

    # -- pass-through ground-truth queries ----------------------------------

    def pop_down(self, pop_name: str, time_s: float) -> bool:
        return self._schedule.pop_down(pop_name, time_s)

    def prefix_withdrawn(self, prefix: str, time_s: float) -> bool:
        return self._schedule.prefix_withdrawn(prefix, time_s)

    def latency_penalty_ms(self, pop_name: str, time_s: float) -> float:
        return self._schedule.latency_penalty_ms(pop_name, time_s)

    def probe_loss_rate(self, time_s: float) -> float:
        return self._schedule.probe_loss_rate(time_s)

    def stale_fraction(self, time_s: float) -> float:
        return self._schedule.stale_fraction(time_s)

    # -- cross-layer derivations ---------------------------------------------

    def damping_state(
        self, config: Optional[DampingConfig] = None, until_s: float = math.inf
    ) -> FlapDampingState:
        """RFC 2439 damping state after replaying every link flap.

        A flapping link accrues penalty at the remote routers; an
        orchestrator consulting this state sees which (prefix, peer) pairs a
        chaos storm has rendered unusable for further advertisement changes.
        """
        state = FlapDampingState(config)
        for flap in self._schedule.events_of(LinkFlap):
            prefix = flap.prefix or f"pop:{flap.pop_name}"
            for time_s, is_withdrawal in flap.flap_times():
                if time_s > until_s:
                    break
                state.record_flap(
                    prefix, flap.peer_asn, time_s, withdrawal=is_withdrawal
                )
        return state

    def observation_faults(
        self, round_period_s: float = 1.0, seed: Optional[int] = None
    ) -> "ObservationFaults":
        """An orchestrator observation filter driven by this schedule.

        Learning round ``i`` is mapped to simulated time ``i * round_period_s``;
        the probe-loss rate in force there becomes the missing-observation
        probability and the stale fraction the stale probability.
        """
        return ObservationFaults.from_schedule(
            self._schedule,
            round_period_s=round_period_s,
            seed=self._seed if seed is None else seed,
        )


class ObservationFaults:
    """Deterministically decides the fate of each learning-loop observation.

    ``outcome(iteration, ug_id, prefix)`` returns ``"ok"``, ``"missing"``,
    or ``"stale"``.  Decisions are a pure function of ``(seed, iteration,
    ug_id, prefix)``, so a learning run is reproducible given the seed —
    the acceptance bar for every chaos experiment.
    """

    def __init__(
        self,
        missing_rate: float = 0.0,
        stale_rate: float = 0.0,
        seed: int = 0,
        per_round_rates: Optional[Dict[int, Tuple[float, float]]] = None,
    ) -> None:
        if not 0.0 <= missing_rate <= 1.0:
            raise ValueError("missing_rate must be in [0, 1]")
        if not 0.0 <= stale_rate <= 1.0:
            raise ValueError("stale_rate must be in [0, 1]")
        if missing_rate + stale_rate > 1.0:
            raise ValueError("missing_rate + stale_rate must not exceed 1")
        self._missing_rate = missing_rate
        self._stale_rate = stale_rate
        self._seed = seed
        self._per_round = dict(per_round_rates) if per_round_rates else {}

    @classmethod
    def from_schedule(
        cls, schedule: FaultSchedule, round_period_s: float = 1.0, seed: int = 0
    ) -> "ObservationFaults":
        """Sample the schedule's loss/staleness at each round's timestamp."""
        if round_period_s <= 0:
            raise ValueError("round_period_s must be positive")
        horizon = schedule.horizon_s
        rounds = int(horizon / round_period_s) + 1 if horizon > 0 else 0
        per_round: Dict[int, Tuple[float, float]] = {}
        for i in range(rounds):
            t = i * round_period_s
            missing = schedule.probe_loss_rate(t)
            stale = min(schedule.stale_fraction(t), 1.0 - missing)
            if missing > 0 or stale > 0:
                per_round[i] = (missing, stale)
        return cls(seed=seed, per_round_rates=per_round)

    def rates_for(self, iteration: int) -> Tuple[float, float]:
        return self._per_round.get(iteration, (self._missing_rate, self._stale_rate))

    def outcome(self, iteration: int, ug_id: int, prefix: int) -> str:
        missing_rate, stale_rate = self.rates_for(iteration)
        if missing_rate <= 0 and stale_rate <= 0:
            return OUTCOME_OK
        key = ((self._seed * 1_000_003 + iteration) * 1_000_003 + ug_id) * 1_000_003 + prefix
        draw = random.Random(key).random()
        if draw < missing_rate:
            return OUTCOME_MISSING
        if draw < missing_rate + stale_rate:
            return OUTCOME_STALE
        return OUTCOME_OK
