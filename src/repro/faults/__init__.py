"""Fault injection: typed fault schedules and graceful-degradation plumbing.

PAINTER's headline operational claim is robustness — TM-Edges fail over at
RTT timescales and the orchestrator keeps producing good configurations
despite partial observations.  This package turns every experiment into a
robustness experiment: a :class:`FaultSchedule` of typed, composable fault
events, a :class:`FaultInjector` that arms them on the event loop, and an
:class:`ObservationFaults` filter for the learning loop.
"""

from repro.faults.events import (
    FaultEvent,
    LatencySpike,
    LinkFlap,
    PeeringWithdrawal,
    PopOutage,
    ProbeLoss,
    StaleMeasurement,
    WorkerCrash,
)
from repro.faults.injector import (
    OUTCOME_MISSING,
    OUTCOME_OK,
    OUTCOME_STALE,
    FaultInjector,
    ObservationFaults,
)
from repro.faults.schedule import FaultSchedule

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "LatencySpike",
    "LinkFlap",
    "ObservationFaults",
    "OUTCOME_MISSING",
    "OUTCOME_OK",
    "OUTCOME_STALE",
    "PeeringWithdrawal",
    "PopOutage",
    "ProbeLoss",
    "StaleMeasurement",
    "WorkerCrash",
]
