"""Typed fault events: the vocabulary of the fault-injection subsystem.

Each event is a frozen dataclass describing one perturbation of the world
over a time window.  Events are *declarative*: they carry no behaviour
beyond answering "are you active at time t?" and enumerating their state
transitions, so the same event can drive the Traffic Manager's path oracle,
the measurement campaign's loss model, the orchestrator's observation
filter, and the BGP flap-damping state without any of those layers knowing
about the others.

The vocabulary mirrors the failure modes PAINTER's evaluation touches:

* :class:`PopOutage` — a whole PoP disappears (the Fig. 10 scenario);
* :class:`PeeringWithdrawal` — one prefix withdrawn from one ingress;
* :class:`LinkFlap` — a link cycling up/down, feeding RFC 2439 damping
  (:mod:`repro.bgp.flap_damping`);
* :class:`LatencySpike` — transient inflation on paths through a PoP;
* :class:`ProbeLoss` — measurement probes dropped at some rate;
* :class:`StaleMeasurement` — observations served from a previous epoch;
* :class:`WorkerCrash` — a parallel-solve pool worker is killed, driving
  the orchestrator's serial-fallback path (:mod:`repro.parallel`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple


@dataclass(frozen=True)
class FaultEvent:
    """Base class: a perturbation active over ``[start_s, end_s)``."""

    start_s: float

    def __post_init__(self) -> None:
        if math.isnan(self.start_s) or self.start_s < 0:
            raise ValueError("start_s must be a non-negative number")

    @property
    def end_s(self) -> float:
        """Exclusive end of the fault window (``inf`` = never heals)."""
        return math.inf

    def active_at(self, time_s: float) -> bool:
        return self.start_s <= time_s < self.end_s

    def transitions(self) -> Iterator[Tuple[float, bool]]:
        """(time, went_down) pairs — the event's observable state changes."""
        yield (self.start_s, True)
        if not math.isinf(self.end_s):
            yield (self.end_s, False)

    def describe(self) -> str:
        window = "∞" if math.isinf(self.end_s) else f"{self.end_s:g}s"
        return f"{type(self).__name__}[{self.start_s:g}s → {window}]"


@dataclass(frozen=True)
class PopOutage(FaultEvent):
    """A PoP (and every path through it) goes dark."""

    pop_name: str = ""
    duration_s: float = math.inf

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.pop_name:
            raise ValueError("PopOutage needs a pop_name")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class PeeringWithdrawal(FaultEvent):
    """One advertised prefix withdrawn (route no longer reaches its PoP)."""

    prefix: str = ""
    duration_s: float = math.inf

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.prefix:
            raise ValueError("PeeringWithdrawal needs a prefix")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class LinkFlap(FaultEvent):
    """A link cycling down/up ``cycles`` times.

    Targets either a whole PoP (``pop_name``) or a single prefix
    (``prefix``).  Each cycle is ``down_s`` seconds dark followed by
    ``up_s`` seconds healthy; every transition counts as a routing flap for
    damping purposes (``peer_asn`` names the peer whose damping state the
    flaps charge).
    """

    pop_name: Optional[str] = None
    prefix: Optional[str] = None
    peer_asn: int = 0
    down_s: float = 1.0
    up_s: float = 4.0
    cycles: int = 3

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.pop_name is None and self.prefix is None:
            raise ValueError("LinkFlap needs a pop_name or a prefix")
        if self.down_s <= 0 or self.up_s <= 0:
            raise ValueError("down_s and up_s must be positive")
        if self.cycles < 1:
            raise ValueError("cycles must be >= 1")

    @property
    def period_s(self) -> float:
        return self.down_s + self.up_s

    @property
    def end_s(self) -> float:
        """The flap sequence ends when the last down phase heals."""
        return self.start_s + (self.cycles - 1) * self.period_s + self.down_s

    def is_down(self, time_s: float) -> bool:
        """Within a down phase of some cycle?"""
        if time_s < self.start_s or time_s >= self.end_s:
            return False
        phase = (time_s - self.start_s) % self.period_s
        return phase < self.down_s

    def transitions(self) -> Iterator[Tuple[float, bool]]:
        for cycle in range(self.cycles):
            down_at = self.start_s + cycle * self.period_s
            yield (down_at, True)
            yield (down_at + self.down_s, False)

    def flap_times(self) -> Iterator[Tuple[float, bool]]:
        """(time, is_withdrawal) pairs for :mod:`repro.bgp.flap_damping`."""
        for time_s, went_down in self.transitions():
            yield (time_s, went_down)


@dataclass(frozen=True)
class LatencySpike(FaultEvent):
    """Transient latency inflation (congestion, reroute) on live paths."""

    duration_s: float = 10.0
    magnitude_ms: float = 25.0
    #: Restrict to paths through this PoP; ``None`` hits every path.
    pop_name: Optional[str] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.magnitude_ms < 0:
            raise ValueError("magnitude_ms must be non-negative")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def applies_to(self, pop_name: str) -> bool:
        return self.pop_name is None or self.pop_name == pop_name


@dataclass(frozen=True)
class ProbeLoss(FaultEvent):
    """Measurement probes dropped at ``loss_rate`` during the window."""

    duration_s: float = 30.0
    loss_rate: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError("loss_rate must be in [0, 1]")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class WorkerCrash(FaultEvent):
    """A solve-pool worker process dies (SIGKILL) at ``start_s``.

    Process death is permanent — the event never heals (``end_s`` stays
    ``inf``); the orchestrator reacts by tearing the pool down and re-running
    the solve serially, which determinism makes result-identical.  Armed via
    :func:`repro.parallel.arm_worker_faults`.
    """

    worker_index: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.worker_index < 0:
            raise ValueError("worker_index must be non-negative")

    def describe(self) -> str:
        return f"WorkerCrash[{self.start_s:g}s → ∞, worker {self.worker_index}]"


@dataclass(frozen=True)
class StaleMeasurement(FaultEvent):
    """A fraction of observations served from a previous measurement epoch.

    Models the collector pipeline lagging: results arrive, but describe the
    world as it was — exactly the "incorrect assumption" transients §3.1
    warns about, now injectable on demand.
    """

    duration_s: float = 60.0
    fraction: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s
