"""FaultSchedule: a composable, queryable timeline of fault events.

A schedule is the declarative heart of the subsystem: an ordered tuple of
:mod:`repro.faults.events` instances plus pure query functions over
simulated time.  Consumers never iterate events themselves — they ask the
schedule "is this PoP down at t?", "what latency penalty applies here?",
"what probe-loss rate is in force?" — so adding a new event type extends
every layer at once.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple, Type, TypeVar

from repro.faults.events import (
    FaultEvent,
    LatencySpike,
    LinkFlap,
    PeeringWithdrawal,
    PopOutage,
    ProbeLoss,
    StaleMeasurement,
)

E = TypeVar("E", bound=FaultEvent)


def _merge_intervals(intervals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Merge overlapping/adjacent [start, end) intervals."""
    if not intervals:
        return []
    intervals.sort()
    merged = [intervals[0]]
    for start, end in intervals[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-queryable collection of fault events."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: (e.start_s, repr(e))))
        object.__setattr__(self, "events", ordered)

    # -- construction --------------------------------------------------------

    @classmethod
    def single_pop_outage(
        cls, pop_name: str, at_s: float, duration_s: float = math.inf
    ) -> "FaultSchedule":
        """The legacy Fig. 10 scenario: one PoP dies, forever by default."""
        return cls(events=(PopOutage(start_s=at_s, pop_name=pop_name, duration_s=duration_s),))

    @classmethod
    def random_storm(
        cls,
        pop_names: Sequence[str],
        duration_s: float,
        seed: int = 0,
        intensity: float = 1.0,
        prefixes: Sequence[str] = (),
    ) -> "FaultSchedule":
        """A seeded random fault storm for chaos experiments.

        ``intensity`` scales the expected event count; the storm mixes PoP
        outages, link flaps, latency spikes, probe loss, and staleness
        windows over ``[0, duration_s)``.  Deterministic given the seed.
        """
        if not pop_names:
            raise ValueError("need at least one PoP to storm")
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if intensity <= 0:
            raise ValueError("intensity must be positive")
        rng = random.Random(seed)
        events: List[FaultEvent] = []

        def window(min_len: float, max_len: float) -> Tuple[float, float]:
            start = rng.uniform(0.05, 0.75) * duration_s
            length = min(rng.uniform(min_len, max_len), duration_s - start)
            return start, max(length, min_len)

        n_outages = max(1, round(rng.uniform(0.5, 1.5) * intensity))
        for _ in range(n_outages):
            start, length = window(0.05 * duration_s, 0.3 * duration_s)
            events.append(
                PopOutage(start_s=start, pop_name=rng.choice(list(pop_names)), duration_s=length)
            )
        for _ in range(round(rng.uniform(0.0, 1.5) * intensity)):
            start, _length = window(1.0, 2.0)
            events.append(
                LinkFlap(
                    start_s=start,
                    pop_name=rng.choice(list(pop_names)),
                    down_s=rng.uniform(0.5, 2.0),
                    up_s=rng.uniform(2.0, 6.0),
                    cycles=rng.randint(2, 4),
                )
            )
        for _ in range(round(rng.uniform(0.5, 2.0) * intensity)):
            start, length = window(0.05 * duration_s, 0.2 * duration_s)
            events.append(
                LatencySpike(
                    start_s=start,
                    duration_s=length,
                    magnitude_ms=rng.uniform(10.0, 60.0),
                    pop_name=rng.choice(list(pop_names) + [None]),
                )
            )
        for _ in range(round(rng.uniform(0.0, 1.0) * intensity)):
            start, length = window(0.1 * duration_s, 0.3 * duration_s)
            events.append(
                ProbeLoss(start_s=start, duration_s=length, loss_rate=rng.uniform(0.2, 0.8))
            )
        for _ in range(round(rng.uniform(0.0, 1.0) * intensity)):
            start, length = window(0.1 * duration_s, 0.4 * duration_s)
            events.append(
                StaleMeasurement(
                    start_s=start, duration_s=length, fraction=rng.uniform(0.2, 0.7)
                )
            )
        if prefixes and rng.random() < 0.5 * intensity:
            start, length = window(0.05 * duration_s, 0.2 * duration_s)
            events.append(
                PeeringWithdrawal(
                    start_s=start, prefix=rng.choice(list(prefixes)), duration_s=length
                )
            )
        return cls(events=tuple(events))

    def extended(self, *events: FaultEvent) -> "FaultSchedule":
        """A new schedule with ``events`` added (schedules are immutable)."""
        return FaultSchedule(events=self.events + tuple(events))

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def events_of(self, event_type: Type[E]) -> List[E]:
        return [e for e in self.events if isinstance(e, event_type)]

    @property
    def horizon_s(self) -> float:
        """When the last finite fault heals (0 for an empty schedule)."""
        finite = [e.end_s for e in self.events if not math.isinf(e.end_s)]
        return max(finite) if finite else 0.0

    def describe(self) -> str:
        if not self.events:
            return "FaultSchedule[empty]"
        return "FaultSchedule[" + ", ".join(e.describe() for e in self.events) + "]"

    # -- point queries -------------------------------------------------------

    def pop_down(self, pop_name: str, time_s: float) -> bool:
        """Is the PoP dark at ``time_s`` (outage or flap down-phase)?"""
        for event in self.events:
            if isinstance(event, PopOutage) and event.pop_name == pop_name:
                if event.active_at(time_s):
                    return True
            elif isinstance(event, LinkFlap) and event.pop_name == pop_name:
                if event.is_down(time_s):
                    return True
        return False

    def prefix_withdrawn(self, prefix: str, time_s: float) -> bool:
        """Is this specific prefix withdrawn at ``time_s``?"""
        for event in self.events:
            if isinstance(event, PeeringWithdrawal) and event.prefix == prefix:
                if event.active_at(time_s):
                    return True
            elif isinstance(event, LinkFlap) and event.prefix == prefix:
                if event.is_down(time_s):
                    return True
        return False

    def path_down(self, pop_name: str, prefix: str, time_s: float) -> bool:
        return self.pop_down(pop_name, time_s) or self.prefix_withdrawn(prefix, time_s)

    def latency_penalty_ms(self, pop_name: str, time_s: float) -> float:
        """Summed spike inflation applying to paths through ``pop_name``."""
        return sum(
            event.magnitude_ms
            for event in self.events_of(LatencySpike)
            if event.active_at(time_s) and event.applies_to(pop_name)
        )

    def probe_loss_rate(self, time_s: float) -> float:
        """Probability a measurement probe is dropped at ``time_s``.

        Concurrent windows compose as independent drops:
        ``1 - prod(1 - rate)``.
        """
        survival = 1.0
        for event in self.events_of(ProbeLoss):
            if event.active_at(time_s):
                survival *= 1.0 - event.loss_rate
        return 1.0 - survival

    def stale_fraction(self, time_s: float) -> float:
        """Fraction of observations served stale at ``time_s`` (max wins)."""
        fractions = [
            event.fraction
            for event in self.events_of(StaleMeasurement)
            if event.active_at(time_s)
        ]
        return max(fractions) if fractions else 0.0

    # -- interval queries ----------------------------------------------------

    def down_intervals(
        self,
        pop_name: Optional[str] = None,
        prefix: Optional[str] = None,
        horizon_s: float = math.inf,
    ) -> List[Tuple[float, float]]:
        """Merged [start, end) dark windows for a PoP and/or prefix.

        This is what the Traffic Manager's path oracle consumes: each
        interval start is a withdrawal (spawning a BGP convergence trace for
        anycast paths), each end a restoration.
        """
        intervals: List[Tuple[float, float]] = []
        for event in self.events:
            if isinstance(event, PopOutage):
                if pop_name is not None and event.pop_name == pop_name:
                    intervals.append((event.start_s, min(event.end_s, horizon_s)))
            elif isinstance(event, PeeringWithdrawal):
                if prefix is not None and event.prefix == prefix:
                    intervals.append((event.start_s, min(event.end_s, horizon_s)))
            elif isinstance(event, LinkFlap):
                matches = (pop_name is not None and event.pop_name == pop_name) or (
                    prefix is not None and event.prefix == prefix
                )
                if matches:
                    for cycle in range(event.cycles):
                        down_at = event.start_s + cycle * event.period_s
                        if down_at >= horizon_s:
                            break
                        intervals.append(
                            (down_at, min(down_at + event.down_s, horizon_s))
                        )
        return _merge_intervals(intervals)

    def transitions(self) -> List[Tuple[float, FaultEvent, bool]]:
        """Every (time, event, went_down) state change, time-ordered."""
        changes: List[Tuple[float, FaultEvent, bool]] = []
        for event in self.events:
            for time_s, went_down in event.transitions():
                if not math.isinf(time_s):
                    changes.append((time_s, event, went_down))
        changes.sort(key=lambda item: (item[0], not item[2]))
        return changes
