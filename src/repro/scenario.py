"""Scenario: one fully-assembled synthetic world.

A scenario bundles everything an experiment needs — topology, user groups,
policy-compliant ingress catalog, ground-truth latency, ground-truth routing,
and per-UG anycast baselines — constructed deterministically from one seed.

Two presets mirror the paper's two evaluation settings:

* :func:`prototype_scenario` — PEERING/Vultr scale (25 PoPs, hundreds of
  neighbor ASes) where real advertisements could be conducted (§5.1.1);
* :func:`azure_scenario` — a larger deployment standing in for Azure's
  (~200 PoPs, thousands of peerings), where the paper relied on estimated
  and simulated measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.measurement.latency_model import LatencyModel, LatencyModelConfig
from repro.routing.ground_truth import GroundTruthRouting
from repro.topology.builder import Topology, TopologyConfig, build_topology
from repro.topology.geo import WORLD_METROS, synthetic_metros
from repro.usergroups.generation import UserGroupConfig, generate_user_groups
from repro.usergroups.ingresses import IngressCatalog
from repro.usergroups.usergroup import UserGroup


@dataclass
class Scenario:
    """A complete synthetic evaluation world."""

    name: str
    topology: Topology
    user_groups: List[UserGroup]
    catalog: IngressCatalog
    latency_model: LatencyModel
    routing: GroundTruthRouting
    _anycast_cache: Dict[int, float] = field(default_factory=dict, repr=False)

    @property
    def deployment(self):
        return self.topology.deployment

    @property
    def graph(self):
        return self.topology.graph

    def set_ug_volume(self, ug_id: int, volume: float) -> UserGroup:
        """Mutate one UG's traffic volume in place (a workload delta).

        :class:`UserGroup` is frozen, and the same object is referenced
        from the catalog, the orchestrator's affected-map, and any held
        configs — so the shift is applied through ``object.__setattr__``
        on the shared instance rather than by rebuilding the population.
        Callers holding derived volume arrays (the orchestrator) must
        patch them; use :meth:`PainterOrchestrator.apply_volume_shift`,
        which does, instead of calling this directly.
        """
        if volume < 0:
            raise ValueError("volume must be non-negative")
        for ug in self.user_groups:
            if ug.ug_id == ug_id:
                object.__setattr__(ug, "volume", float(volume))
                return ug
        raise KeyError(f"unknown UG id {ug_id}")

    def anycast_latency_ms(self, ug: UserGroup, day: int = 0) -> float:
        """The UG's latency under the default anycast configuration D.

        Every UG has an anycast route (the anycast prefix is advertised via
        every peering, and every UG has at least the transit ingresses), so
        this never returns ``None``.
        """
        if day == 0 and ug.ug_id in self._anycast_cache:
            return self._anycast_cache[ug.ug_id]
        latency = self.routing.anycast_latency_ms(ug, day=day)
        if latency is None:
            raise RuntimeError(f"{ug} unexpectedly has no anycast route")
        if day == 0:
            self._anycast_cache[ug.ug_id] = latency
        return latency

    def anycast_latencies(self, day: int = 0) -> Dict[int, float]:
        return {ug.ug_id: self.anycast_latency_ms(ug, day=day) for ug in self.user_groups}

    def best_possible_latency_ms(self, ug: UserGroup, day: int = 0) -> float:
        """Latency via the UG's best policy-compliant ingress (oracle bound).

        This is what the One-per-Peering strategy achieves at full budget —
        the denominator of "percent of possible benefit" in Fig. 6a.
        """
        latencies = [
            self.latency_model.latency_ms(ug, peering, day=day)
            for peering in self.catalog.ingresses(ug)
        ]
        if not latencies:
            raise RuntimeError(f"{ug} has no policy-compliant ingress")
        return min(latencies)

    def total_possible_benefit(self, day: int = 0) -> float:
        """Volume-weighted sum of (anycast - best possible) over all UGs."""
        total = 0.0
        for ug in self.user_groups:
            improvement = self.anycast_latency_ms(ug, day=day) - self.best_possible_latency_ms(
                ug, day=day
            )
            total += ug.volume * max(0.0, improvement)
        return total

    def describe(self) -> str:
        return (
            f"scenario {self.name!r}: {self.deployment.describe()}; "
            f"{len(self.user_groups)} UGs"
        )


def build_scenario(
    name: str,
    topology_config: TopologyConfig,
    ug_config: UserGroupConfig,
    latency_config: Optional[LatencyModelConfig] = None,
    routing_seed: Optional[int] = None,
) -> Scenario:
    """Assemble a scenario from explicit configs (all seeded)."""
    topology = build_topology(topology_config)
    ugs = generate_user_groups(topology, ug_config)
    catalog = IngressCatalog(topology, ugs)
    latency_model = LatencyModel(latency_config or LatencyModelConfig(seed=topology_config.seed))
    routing = GroundTruthRouting(
        topology,
        latency_model,
        seed=topology_config.seed if routing_seed is None else routing_seed,
    )
    return Scenario(
        name=name,
        topology=topology,
        user_groups=ugs,
        catalog=catalog,
        latency_model=latency_model,
        routing=routing,
    )


# -- preset build caching -----------------------------------------------------
#
# Scenario construction (topology + BGP-ready graph + UG population) is the
# expensive shared step when many experiments run in one process.  The cache
# is OPT-IN: worlds are shared only after enable_preset_cache(), because
# sharing is a semantic choice (deterministic internal caches are shared
# too).  The parallel experiment runner enables it per worker process.

_preset_cache_enabled = False
_preset_cache: Dict[tuple, Scenario] = {}


def enable_preset_cache(enabled: bool = True) -> None:
    """Share identically-parameterized preset worlds within this process."""
    global _preset_cache_enabled
    _preset_cache_enabled = enabled
    if not enabled:
        _preset_cache.clear()


def clear_preset_cache() -> None:
    _preset_cache.clear()


def _maybe_cached(key: tuple, factory) -> Scenario:
    if not _preset_cache_enabled:
        return factory()
    cached = _preset_cache.get(key)
    if cached is None:
        cached = _preset_cache[key] = factory()
    return cached


def prototype_scenario(seed: int = 0, n_ugs: int = 400) -> Scenario:
    """PEERING/Vultr-prototype scale: 25 PoPs, a few hundred neighbor ASes."""
    return _maybe_cached(
        ("prototype", seed, n_ugs), lambda: _build_prototype(seed, n_ugs)
    )


def _build_prototype(seed: int, n_ugs: int) -> Scenario:
    return build_scenario(
        name="prototype",
        topology_config=TopologyConfig(
            seed=seed,
            n_pops=25,
            n_tier1=5,
            n_transit=12,
            n_regional=60,
            n_stub=300,
        ),
        ug_config=UserGroupConfig(seed=seed + 1, n_ugs=n_ugs),
    )


def azure_scenario(seed: int = 0, n_ugs: int = 1200) -> Scenario:
    """Azure-like scale: more PoPs and far more peerings per PoP."""
    return _maybe_cached(("azure", seed, n_ugs), lambda: _build_azure(seed, n_ugs))


def _build_azure(seed: int, n_ugs: int) -> Scenario:
    return build_scenario(
        name="azure-like",
        topology_config=TopologyConfig(
            seed=seed,
            n_pops=40,
            n_tier1=8,
            n_transit=24,
            n_regional=160,
            n_stub=900,
            regional_peering_prob=0.7,
        ),
        ug_config=UserGroupConfig(seed=seed + 1, n_ugs=n_ugs),
    )


#: PoP count of the ``mega`` preset; the metro pool is padded with synthetic
#: metros so every PoP lands in a distinct metro.
MEGA_N_POPS = 500


def mega_scenario(seed: int = 0, n_ugs: int = 100_000) -> Scenario:
    """Hyperscaler stress scale: 500 PoPs, ~22k neighbor ASes, 100k UGs.

    This preset exists to exercise the dense-matrix memory-budget path and
    the compiled compute backends at a scale where the per-UG dict layout
    would not fit; ``big_as_presence_cap`` keeps the peering count (and thus
    the dense matrix width) linear in the PoP count.
    """
    return _maybe_cached(("mega", seed, n_ugs), lambda: _build_mega(seed, n_ugs))


def _build_mega(seed: int, n_ugs: int) -> Scenario:
    metros = WORLD_METROS + synthetic_metros(MEGA_N_POPS - len(WORLD_METROS), seed=seed)
    return build_scenario(
        name="mega",
        topology_config=TopologyConfig(
            seed=seed,
            n_pops=MEGA_N_POPS,
            n_tier1=8,
            n_transit=24,
            n_regional=2000,
            n_stub=20000,
            transit_provider_fraction=0.25,
            regional_peering_prob=0.5,
            stub_peering_prob=0.01,
            metros=metros,
            big_as_presence_cap=24,
        ),
        ug_config=UserGroupConfig(seed=seed + 1, n_ugs=n_ugs, metros=metros),
    )


def tiny_scenario(seed: int = 0, n_ugs: int = 60) -> Scenario:
    """Small world for fast unit tests."""
    return _maybe_cached(("tiny", seed, n_ugs), lambda: _build_tiny(seed, n_ugs))


def _build_tiny(seed: int, n_ugs: int) -> Scenario:
    return build_scenario(
        name="tiny",
        topology_config=TopologyConfig(
            seed=seed,
            n_pops=6,
            n_tier1=2,
            n_transit=4,
            n_regional=12,
            n_stub=50,
        ),
        ug_config=UserGroupConfig(seed=seed + 1, n_ugs=n_ugs),
    )
