"""Scenario auditing: structural self-checks for generated worlds.

Synthetic-world bugs are silent — a mis-generated topology still runs, it
just produces meaningless curves.  ``audit_scenario`` re-derives the
invariants every experiment relies on and reports each check, so a user who
builds a custom scenario can verify it before trusting results:

* the AS graph is economically sane (no provider cycles);
* every UG has an anycast route and at least one compliant ingress;
* policy compliance and BGP reachability agree (spot-checked);
* anycast can never beat the best compliant ingress;
* the benefit headroom is non-degenerate (there is something to optimize).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.bgp.simulator import BGPSimulator
from repro.scenario import Scenario


@dataclass(frozen=True)
class AuditCheck:
    name: str
    passed: bool
    detail: str


@dataclass
class AuditReport:
    checks: List[AuditCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> List[AuditCheck]:
        return [check for check in self.checks if not check.passed]

    def render(self) -> str:
        lines = []
        for check in self.checks:
            status = "ok " if check.passed else "FAIL"
            lines.append(f"[{status}] {check.name}: {check.detail}")
        verdict = "PASSED" if self.passed else f"FAILED ({len(self.failures)} checks)"
        lines.append(f"audit {verdict}")
        return "\n".join(lines)


def audit_scenario(scenario: Scenario, sample_ugs: int = 25) -> AuditReport:
    """Run every structural check; never raises, always reports."""
    report = AuditReport()

    def check(name: str, func: Callable[[], str]) -> None:
        try:
            detail = func()
            report.checks.append(AuditCheck(name=name, passed=True, detail=detail))
        except AssertionError as exc:
            report.checks.append(AuditCheck(name=name, passed=False, detail=str(exc)))
        except Exception as exc:  # a check crashing is itself a failure
            report.checks.append(
                AuditCheck(name=name, passed=False, detail=f"check crashed: {exc!r}")
            )

    def graph_sanity() -> str:
        cycle = scenario.graph.find_provider_cycle()
        assert cycle is None, f"provider cycle: {cycle}"
        return f"{len(scenario.graph)} ASes, {scenario.graph.edge_count()} links, acyclic"

    def ug_coverage() -> str:
        missing = [
            ug.ug_id
            for ug in scenario.user_groups
            if not scenario.catalog.ingress_ids(ug)
        ]
        assert not missing, f"UGs without compliant ingress: {missing[:5]}"
        return f"{len(scenario.user_groups)} UGs all have compliant ingresses"

    def anycast_routes() -> str:
        for ug in scenario.user_groups:
            assert (
                scenario.routing.anycast_ingress(ug) is not None
            ), f"UG {ug.ug_id} has no anycast route"
        return "every UG has an anycast route"

    def anycast_bound() -> str:
        worst = 0.0
        for ug in scenario.user_groups:
            gap = scenario.best_possible_latency_ms(ug) - scenario.anycast_latency_ms(ug)
            worst = max(worst, gap)
            assert gap <= 1e-6, (
                f"UG {ug.ug_id}: best compliant ingress worse than anycast by {gap:.3f} ms"
            )
        return "anycast never beats the best compliant ingress"

    def bgp_agreement() -> str:
        sim = BGPSimulator(scenario.graph, origin_asn=1, tie_break_seed=0)
        all_ids = frozenset(p.peering_id for p in scenario.deployment.peerings)
        peer_asns = sorted({p.peer_asn for p in scenario.deployment.peerings})
        routes = sim.propagate("audit", peer_asns)
        for ug in scenario.user_groups[:sample_ugs]:
            has_route = ug.asn in routes
            compliant = bool(scenario.catalog.compliant_subset(ug, all_ids))
            assert has_route == compliant, (
                f"UG {ug.ug_id}: BGP reachability {has_route} != compliance {compliant}"
            )
        return f"BGP reachability matches compliance on {sample_ugs} sampled UGs"

    def headroom() -> str:
        total = scenario.total_possible_benefit()
        assert total > 0, "no benefit headroom: nothing to optimize"
        return f"benefit headroom {total:.2f} weighted-ms"

    check("graph-sanity", graph_sanity)
    check("ug-coverage", ug_coverage)
    check("anycast-routes", anycast_routes)
    check("anycast-bound", anycast_bound)
    check("bgp-compliance-agreement", bgp_agreement)
    check("benefit-headroom", headroom)
    return report
