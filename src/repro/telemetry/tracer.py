"""Nestable tracing spans with a zero-overhead no-op mode.

A :class:`Tracer` produces :class:`Span` records — name, wall/CPU time,
free-form tags, and a parent link — via the :meth:`Tracer.span` context
manager.  Spans nest naturally (the tracer keeps a stack), so a
``orchestrator.learn`` span contains ``orchestrator.solve`` spans which
contain per-prefix ``orchestrator.prefix_scan`` spans.

The tracer is **disabled by default**.  Disabled, ``span()`` returns a
shared singleton no-op context manager whose ``__enter__``/``__exit__`` do
nothing — no allocation, no clock reads, no journal writes — so leaving the
instrumentation in hot paths costs a single attribute check.  This is the
property the million-flow TM benchmarks gate on.

Finished spans are handed to an optional sink (normally a
:class:`repro.telemetry.journal.RunJournal`) in *completion* order, which
is deterministic for deterministic workloads.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional


class Span:
    """One traced region.  Mutable while open; frozen in practice once
    closed (the tracer hands it to the sink and forgets it)."""

    __slots__ = (
        "name", "span_id", "parent_id", "depth", "tags",
        "wall_s", "cpu_s", "_wall_start", "_cpu_start",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        depth: int,
        tags: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.tags: Dict[str, Any] = dict(tags) if tags else {}
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._wall_start = 0.0
        self._cpu_start = 0.0

    def tag(self, key: str, value: Any) -> None:
        """Attach/overwrite one tag on an open span."""
        self.tags[key] = value

    def to_record(self) -> Dict[str, Any]:
        """Plain-data view, suitable for the run journal."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "tags": self.tags,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"wall={self.wall_s:.6f}s)"
        )


class _NoopSpan:
    """Shared do-nothing stand-in returned while tracing is disabled.

    Supports the same surface as an open :class:`Span` (``tag`` is a
    no-op) so instrumented code never branches on tracer state beyond the
    initial ``span()`` call.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def tag(self, key: str, value: Any) -> None:
        return None


#: The singleton no-op context manager.  One object for the whole process:
#: disabled tracing allocates nothing per call.
NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager wrapping one live :class:`Span` on the tracer stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        span = self.span
        self._tracer._stack.append(span)
        span._wall_start = time.perf_counter()
        span._cpu_start = time.process_time()
        return span

    def __exit__(self, *exc: object) -> None:
        span = self.span
        span.wall_s = time.perf_counter() - span._wall_start
        span.cpu_s = time.process_time() - span._cpu_start
        tracer = self._tracer
        stack = tracer._stack
        # Pop back to (and including) this span even if inner spans leaked.
        while stack:
            if stack.pop() is span:
                break
        sink = tracer._sink
        if sink is not None:
            sink(span)


class Tracer:
    """Produces nested :class:`Span` records; off by default.

    Usage::

        with TRACER.span("orchestrator.solve", budget=25) as span:
            ...
            span.tag("prefixes_used", config.prefix_count)

    ``enable(sink)`` turns tracing on and routes finished spans to
    ``sink(span)`` — usually ``RunJournal.record_span``.  ``disable()``
    returns the tracer to its zero-overhead mode.
    """

    __slots__ = ("enabled", "_sink", "_stack", "_next_id")

    def __init__(self) -> None:
        self.enabled = False
        self._sink: Optional[Callable[[Span], None]] = None
        self._stack: List[Span] = []
        self._next_id = 1

    def enable(self, sink: Optional[Callable[[Span], None]] = None) -> None:
        self.enabled = True
        self._sink = sink
        self._stack.clear()
        self._next_id = 1

    def disable(self) -> None:
        self.enabled = False
        self._sink = None
        self._stack.clear()
        self._next_id = 1

    def span(self, name: str, **tags: Any):
        """Open a span named ``name``.  While disabled this returns the
        shared :data:`NOOP_SPAN` — no allocation, no clock reads."""
        if not self.enabled:
            return NOOP_SPAN
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            depth=len(self._stack),
            tags=tags or None,
        )
        self._next_id += 1
        return _ActiveSpan(self, span)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None


#: The process-wide tracer used by instrumented production code.
TRACER = Tracer()
