"""The metrics half of :mod:`repro.telemetry`: counters, gauges, histograms.

This module absorbed and superseded the old ``repro.perf`` registry.  The
three original stat kinds (:class:`Counter`, :class:`CacheStats`,
:class:`TimerStats`) now live here, joined by :class:`Gauge` (a
last-value-wins level) and :class:`Histogram` (fixed-bucket distributions —
per-batch flow counts, marginal-benefit magnitudes, advertisement-round
latency deltas).  :class:`MetricsRegistry` extends the original
``PerfRegistry`` contract, so everything that held a ``PERF`` reference
keeps working: ``repro.perf`` is a compatibility shim re-exporting these
names, and the module-level :data:`METRICS` registry *is* the old ``PERF``
singleton.

Design rules carried over from ``repro.perf`` (and still binding):

* hot code asks the registry for a stat object **once** and then mutates a
  plain attribute — instrumentation costs an attribute increment, not a
  dict lookup plus allocation;
* ``reset()`` zeroes stats *in place*, keeping handed-out references valid;
* ``snapshot()`` is plain JSON-able data and ``merge()`` folds a worker
  process's snapshot into this one.

New here: :meth:`MetricsRegistry.to_prometheus` renders the whole registry
in the Prometheus text exposition format (counters, gauges, cumulative
histogram buckets, timers as ``_seconds_total``/``_calls_total`` pairs).
"""

from __future__ import annotations

import bisect
import math
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple


class Counter:
    """A named monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A named last-value-wins level (live flows, heap size, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class CacheStats:
    """Hit/miss accounting for one named cache."""

    __slots__ = ("name", "hits", "misses", "invalidations")

    def __init__(self, name: str) -> None:
        self.name = name
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __repr__(self) -> str:
        return (
            f"CacheStats({self.name!r}, hits={self.hits}, misses={self.misses}, "
            f"invalidations={self.invalidations})"
        )


class TimerStats:
    """Accumulated wall-clock time over a named region."""

    __slots__ = ("name", "calls", "total_s")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.total_s = 0.0

    def add(self, elapsed_s: float) -> None:
        self.calls += 1
        self.total_s += elapsed_s

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0

    def reset(self) -> None:
        self.calls = 0
        self.total_s = 0.0

    def __repr__(self) -> str:
        return f"TimerStats({self.name!r}, calls={self.calls}, total_s={self.total_s:.3f})"


#: Default histogram buckets: decades with a 1-2-5 ladder, good for counts
#: and millisecond magnitudes alike.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0, 100_000.0, 1_000_000.0,
)


class Histogram:
    """Fixed-bucket distribution (Prometheus-style cumulative semantics).

    ``bounds`` are the *upper* edges of the finite buckets; one implicit
    ``+inf`` bucket catches the overflow.  Bounds are fixed at creation —
    re-requesting the histogram with different bounds raises, because two
    call sites silently aggregating into different shapes is a bug.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        cleaned = tuple(float(b) for b in bounds)
        if not cleaned or any(
            b2 <= b1 for b1, b2 in zip(cleaned, cleaned[1:])
        ):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.bounds = cleaned
        self.counts = [0] * (len(cleaned) + 1)  # +1 for the +inf bucket
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile (upper bound of the bucket holding it)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target and c:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, sum={self.sum:.3f})"


class MetricsRegistry:
    """Owns every named counter/gauge/cache/timer/histogram and renders them.

    Stat objects are created on first request and survive :meth:`reset`
    (which zeroes them in place), so hot paths can hold direct references
    across resets.  This is the superset of the old ``PerfRegistry``
    contract; ``repro.perf.PERF`` aliases the module-level :data:`METRICS`.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._caches: Dict[str, CacheStats] = {}
        self._timers: Dict[str, TimerStats] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- stat acquisition ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        stat = self._counters.get(name)
        if stat is None:
            stat = self._counters[name] = Counter(name)
        return stat

    def gauge(self, name: str) -> Gauge:
        stat = self._gauges.get(name)
        if stat is None:
            stat = self._gauges[name] = Gauge(name)
        return stat

    def cache(self, name: str) -> CacheStats:
        stat = self._caches.get(name)
        if stat is None:
            stat = self._caches[name] = CacheStats(name)
        return stat

    def timer(self, name: str) -> TimerStats:
        stat = self._timers.get(name)
        if stat is None:
            stat = self._timers[name] = TimerStats(name)
        return stat

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        stat = self._histograms.get(name)
        if stat is None:
            stat = self._histograms[name] = Histogram(
                name, bounds if bounds is not None else DEFAULT_BUCKETS
            )
        elif bounds is not None and tuple(float(b) for b in bounds) != stat.bounds:
            raise ValueError(
                f"histogram {name!r} already exists with different bounds"
            )
        return stat

    @contextmanager
    def timed(self, name: str) -> Iterator[TimerStats]:
        """``with METRICS.timed("solve"): ...`` — accumulate the block's time."""
        stat = self.timer(name)
        start = time.perf_counter()
        try:
            yield stat
        finally:
            stat.add(time.perf_counter() - start)

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Zero every stat in place (handed-out references stay valid)."""
        for group in (
            self._counters, self._gauges, self._caches, self._timers,
            self._histograms,
        ):
            for stat in group.values():
                stat.reset()

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` from another registry (e.g. a parallel
        experiment worker process) into this one, summing every stat.

        Merging is atomic: every incompatibility (histogram bounds or bucket
        shape drift between processes) is detected up front, before any stat
        is touched, so a rejected snapshot leaves the registry exactly as it
        was.  Stats the parent has never seen are created on the fly.
        """
        # Validate-first: a partially applied snapshot would silently skew
        # every later report, which is worse than losing the snapshot.
        for name, stats in snapshot.get("histograms", {}).items():
            existing = self._histograms.get(name)
            bounds = stats.get("bounds")
            if existing is not None:
                if (
                    bounds is not None
                    and tuple(float(b) for b in bounds) != existing.bounds
                ):
                    raise ValueError(
                        f"histogram {name!r} already exists with different bounds"
                    )
                expected_buckets = len(existing.counts)
            else:
                expected_buckets = (
                    len(bounds) + 1 if bounds is not None else len(DEFAULT_BUCKETS) + 1
                )
            counts = stats.get("counts", [])
            if len(counts) != expected_buckets:
                raise ValueError(
                    f"histogram {name!r} snapshot has {len(counts)} buckets, "
                    f"registry has {expected_buckets}"
                )
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += int(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)  # last writer wins, as for any gauge
        for name, stats in snapshot.get("caches", {}).items():
            cache = self.cache(name)
            cache.hits += int(stats.get("hits", 0))
            cache.misses += int(stats.get("misses", 0))
            cache.invalidations += int(stats.get("invalidations", 0))
        for name, stats in snapshot.get("timers", {}).items():
            timer = self.timer(name)
            timer.calls += int(stats.get("calls", 0))
            timer.total_s += float(stats.get("total_s", 0.0))
        for name, stats in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, stats.get("bounds"))
            counts = stats.get("counts", [])
            for i, c in enumerate(counts):
                hist.counts[i] += int(c)
            hist.count += int(stats.get("count", 0))
            hist.sum += float(stats.get("sum", 0.0))
            # min/max serialize as None while the histogram is empty.
            if stats.get("min") is not None:
                hist.min = min(hist.min, float(stats["min"]))
            if stats.get("max") is not None:
                hist.max = max(hist.max, float(stats["max"]))

    # -- inspection ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data view of every stat (JSON-serializable)."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "caches": {
                name: {
                    "hits": s.hits,
                    "misses": s.misses,
                    "invalidations": s.invalidations,
                    "hit_rate": s.hit_rate,
                }
                for name, s in sorted(self._caches.items())
            },
            "timers": {
                name: {"calls": t.calls, "total_s": t.total_s, "mean_s": t.mean_s}
                for name, t in sorted(self._timers.items())
            },
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min if h.count else None,
                    "max": h.max if h.count else None,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def _active(self) -> bool:
        return bool(
            any(c.value for c in self._counters.values())
            or any(g.value for g in self._gauges.values())
            or any(c.hits or c.misses for c in self._caches.values())
            or any(t.calls for t in self._timers.values())
            or any(h.count for h in self._histograms.values())
        )

    def render(self) -> str:
        """Fixed-width text report for terminals."""
        lines: List[str] = ["== performance counters =="]
        if not self._active():
            lines.append("(no activity recorded)")
            return "\n".join(lines)
        if any(c.value for c in self._counters.values()):
            lines.append("-- counters --")
            width = max(len(n) for n in self._counters)
            for name, counter in sorted(self._counters.items()):
                lines.append(f"{name.ljust(width)}  {counter.value}")
        live_gauges = {n: g for n, g in self._gauges.items() if g.value}
        if live_gauges:
            lines.append("-- gauges --")
            width = max(len(n) for n in live_gauges)
            for name, gauge in sorted(live_gauges.items()):
                lines.append(f"{name.ljust(width)}  {gauge.value:g}")
        live_caches = {n: s for n, s in self._caches.items() if s.lookups or s.invalidations}
        if live_caches:
            lines.append("-- caches --")
            width = max(len(n) for n in live_caches)
            for name, s in sorted(live_caches.items()):
                lines.append(
                    f"{name.ljust(width)}  hits {s.hits}  misses {s.misses}  "
                    f"hit-rate {100 * s.hit_rate:.1f}%  invalidations {s.invalidations}"
                )
        live_timers = {n: t for n, t in self._timers.items() if t.calls}
        if live_timers:
            lines.append("-- timers --")
            width = max(len(n) for n in live_timers)
            for name, t in sorted(live_timers.items()):
                lines.append(
                    f"{name.ljust(width)}  calls {t.calls}  total {t.total_s:.3f}s  "
                    f"mean {1000 * t.mean_s:.2f}ms"
                )
        live_hists = {n: h for n, h in self._histograms.items() if h.count}
        if live_hists:
            lines.append("-- histograms --")
            width = max(len(n) for n in live_hists)
            for name, h in sorted(live_hists.items()):
                lines.append(
                    f"{name.ljust(width)}  count {h.count}  mean {h.mean:g}  "
                    f"min {h.min:g}  p50 {h.quantile(0.5):g}  "
                    f"p99 {h.quantile(0.99):g}  max {h.max:g}"
                )
        return "\n".join(lines)

    def to_markdown(self, title: str = "Performance counters") -> str:
        """Markdown section for inclusion in generated reports."""
        lines = [f"## {title}", ""]
        if not self._active():
            lines.append("*No instrumented activity recorded.*")
            lines.append("")
            return "\n".join(lines)
        if any(c.value for c in self._counters.values()):
            lines.append("| counter | value |")
            lines.append("|---|---|")
            for name, counter in sorted(self._counters.items()):
                lines.append(f"| {name} | {counter.value} |")
            lines.append("")
        live_gauges = {n: g for n, g in self._gauges.items() if g.value}
        if live_gauges:
            lines.append("| gauge | value |")
            lines.append("|---|---|")
            for name, gauge in sorted(live_gauges.items()):
                lines.append(f"| {name} | {gauge.value:g} |")
            lines.append("")
        live_caches = {n: s for n, s in self._caches.items() if s.lookups or s.invalidations}
        if live_caches:
            lines.append("| cache | hits | misses | hit rate | invalidations |")
            lines.append("|---|---|---|---|---|")
            for name, s in sorted(live_caches.items()):
                lines.append(
                    f"| {name} | {s.hits} | {s.misses} | {100 * s.hit_rate:.1f}% "
                    f"| {s.invalidations} |"
                )
            lines.append("")
        live_timers = {n: t for n, t in self._timers.items() if t.calls}
        if live_timers:
            lines.append("| timer | calls | total (s) | mean (ms) |")
            lines.append("|---|---|---|---|")
            for name, t in sorted(live_timers.items()):
                lines.append(
                    f"| {name} | {t.calls} | {t.total_s:.3f} | {1000 * t.mean_s:.2f} |"
                )
            lines.append("")
        live_hists = {n: h for n, h in self._histograms.items() if h.count}
        if live_hists:
            lines.append("| histogram | count | mean | p50 | p99 | max |")
            lines.append("|---|---|---|---|---|---|")
            for name, h in sorted(live_hists.items()):
                lines.append(
                    f"| {name} | {h.count} | {h.mean:g} | {h.quantile(0.5):g} "
                    f"| {h.quantile(0.99):g} | {h.max:g} |"
                )
            lines.append("")
        return "\n".join(lines)

    def to_prometheus(self) -> str:
        """The whole registry in the Prometheus text exposition format.

        Metric names are sanitized (dots/dashes become underscores); caches
        expand to three counters (``_hits_total``/``_misses_total``/
        ``_invalidations_total``) and timers to a call-count/seconds pair,
        mirroring how a real exporter would publish them.
        """
        lines: List[str] = []
        for name, counter in sorted(self._counters.items()):
            metric = _prom_name(name) + "_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {counter.value}")
        for name, gauge in sorted(self._gauges.items()):
            metric = _prom_name(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_prom_value(gauge.value)}")
        for name, s in sorted(self._caches.items()):
            base = _prom_name(name)
            for suffix, value in (
                ("hits", s.hits), ("misses", s.misses),
                ("invalidations", s.invalidations),
            ):
                metric = f"{base}_{suffix}_total"
                lines.append(f"# TYPE {metric} counter")
                lines.append(f"{metric} {value}")
        for name, t in sorted(self._timers.items()):
            base = _prom_name(name)
            lines.append(f"# TYPE {base}_calls_total counter")
            lines.append(f"{base}_calls_total {t.calls}")
            lines.append(f"# TYPE {base}_seconds_total counter")
            lines.append(f"{base}_seconds_total {_prom_value(t.total_s)}")
        for name, h in sorted(self._histograms.items()):
            base = _prom_name(name)
            lines.append(f"# TYPE {base} histogram")
            cumulative = 0
            for bound, count in zip(h.bounds, h.counts):
                cumulative += count
                lines.append(
                    f'{base}_bucket{{le="{_prom_value(bound)}"}} {cumulative}'
                )
            lines.append(f'{base}_bucket{{le="+Inf"}} {h.count}')
            lines.append(f"{base}_sum {_prom_value(h.sum)}")
            lines.append(f"{base}_count {h.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_name(name: str) -> str:
    out = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _prom_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


#: The process-wide registry used by instrumented production code.  The old
#: ``repro.perf.PERF`` name aliases this object.
METRICS = MetricsRegistry()
