"""Tracing spans, metrics, and the run journal for the PAINTER pipeline.

Three cooperating pieces:

* :class:`Tracer` / :data:`TRACER` — nestable spans (wall + CPU time, tags,
  parent links) with a zero-overhead no-op mode; see
  :mod:`repro.telemetry.tracer`.
* :class:`MetricsRegistry` / :data:`METRICS` — counters, gauges, caches,
  timers, and fixed-bucket histograms, plus Prometheus text export.  This
  absorbed ``repro.perf`` (which is now a compatibility shim); see
  :mod:`repro.telemetry.metrics`.
* :class:`RunJournal` — a versioned, deterministic JSONL record of every
  span and advertisement/measurement/fault event, with
  :func:`load_journal` / :func:`journal_to_result` reconstructing a run
  timeline and the ``repro trace`` breakdown; see
  :mod:`repro.telemetry.journal`.

The usual wiring is :func:`telemetry_session`::

    from repro.telemetry import telemetry_session

    with telemetry_session("my-run") as journal:
        orchestrator.learn(iterations=5)
    journal.write("run.jsonl")

Telemetry is **off by default**; uninstrumented behaviour (and tier-1 test
output) is bit-identical with the tracer disabled.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from repro.telemetry.journal import (
    JOURNAL_VERSION,
    LoadedJournal,
    RunJournal,
    journal_to_result,
    load_journal,
)
from repro.telemetry.metrics import (
    METRICS,
    CacheStats,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimerStats,
)
from repro.telemetry.tracer import NOOP_SPAN, Span, Tracer, TRACER

__all__ = [
    "CacheStats",
    "Counter",
    "Gauge",
    "Histogram",
    "JOURNAL_VERSION",
    "LoadedJournal",
    "METRICS",
    "MetricsRegistry",
    "NOOP_SPAN",
    "RunJournal",
    "Span",
    "TimerStats",
    "TRACER",
    "Tracer",
    "emit_event",
    "journal_to_result",
    "load_journal",
    "telemetry_session",
]


@contextmanager
def telemetry_session(
    run_name: str = "run",
    include_timings: bool = False,
    meta: Optional[Dict[str, Any]] = None,
) -> Iterator[RunJournal]:
    """Enable tracing into a fresh :class:`RunJournal` for the duration of
    the block, then restore the tracer's previous state.

    ``include_timings=False`` (the default) keeps the journal byte-stable
    across identical-seed runs; pass True to record wall/CPU time for
    ``repro trace`` breakdowns.
    """
    journal = RunJournal(run_name, include_timings=include_timings, meta=meta)
    was_enabled = TRACER.enabled
    previous_sink = TRACER._sink
    TRACER.enable(journal.record_span)
    journal_event_hook.append(journal)
    try:
        yield journal
    finally:
        journal_event_hook.remove(journal)
        if was_enabled:
            TRACER.enable(previous_sink)
        else:
            TRACER.disable()


#: Active journals to which instrumented code should publish domain events.
#: Production code calls :func:`emit_event`; with no session open it is a
#: cheap truthiness check and returns immediately.
journal_event_hook: list = []


def emit_event(event_type: str, **fields: Any) -> None:
    """Publish one domain event to every active telemetry session."""
    if not journal_event_hook:
        return
    for journal in journal_event_hook:
        journal.record_event(event_type, **fields)
