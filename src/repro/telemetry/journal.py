"""Versioned JSONL run journal: every span and event of a run, in order.

A :class:`RunJournal` collects two record kinds:

* ``span`` records emitted by the :class:`~repro.telemetry.tracer.Tracer`
  in span-completion order, and
* ``event`` records — advertisements pushed, measurement rounds,
  injected faults, failover remaps — emitted by instrumented code via
  :meth:`RunJournal.record_event`.

Records are kept in arrival order and stamped with a monotonically
increasing ``seq``, so for a deterministic workload the journal itself is
deterministic.  By default wall/CPU timings are **excluded** from the
serialized form (``include_timings=False``): identical seeds then produce
byte-identical JSONL files, which is the determinism gate
``tests/test_telemetry_journal.py`` asserts.  The CLI enables timings so
``repro trace`` can render real time breakdowns.

The on-disk format is JSONL: one header line (``{"kind": "header",
"journal_version": 1, ...}``) followed by one compact JSON object per
record with sorted keys.  :func:`load_journal` reads it back and
:func:`journal_to_result` reconstructs the per-phase time/benefit
breakdown table rendered by ``repro trace``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.telemetry.tracer import Span

#: Bump when the record schema changes shape incompatibly.
JOURNAL_VERSION = 1

_JSON_COMPACT = {"sort_keys": True, "separators": (",", ":")}


class RunJournal:
    """In-memory record stream with deterministic JSONL serialization."""

    def __init__(
        self,
        run_name: str = "run",
        include_timings: bool = False,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.run_name = run_name
        self.include_timings = include_timings
        self.meta: Dict[str, Any] = dict(meta) if meta else {}
        self.records: List[Dict[str, Any]] = []
        self._seq = 0

    # -- recording ----------------------------------------------------------

    def record_span(self, span: Span) -> None:
        """Sink for :meth:`Tracer.enable` — called on span completion."""
        record = span.to_record()
        if not self.include_timings:
            del record["wall_s"]
            del record["cpu_s"]
        record["kind"] = "span"
        self._append(record)

    def record_event(self, event_type: str, **fields: Any) -> None:
        """Record one domain event (advertisement, measurement, fault...).

        Field names ``kind``/``event``/``seq`` are reserved for the record
        envelope and rejected rather than silently clobbered.
        """
        for reserved in ("kind", "event", "seq"):
            if reserved in fields:
                raise ValueError(f"event field {reserved!r} is reserved")
        record: Dict[str, Any] = {"kind": "event", "event": event_type}
        record.update(fields)
        self._append(record)

    def _append(self, record: Dict[str, Any]) -> None:
        record["seq"] = self._seq
        self._seq += 1
        self.records.append(record)

    def resume_from(self, records: List[Dict[str, Any]]) -> None:
        """Prime the journal with previously persisted records.

        Crash recovery (:class:`repro.controller.DurableJournal`) reloads
        the durable prefix of a run's journal and continues appending;
        the sequence numbering carries on from the highest reloaded seq,
        so the recovered journal is indistinguishable from one written by
        an uninterrupted run.
        """
        self.records = list(records)
        self._seq = (
            max(int(r.get("seq", -1)) for r in self.records) + 1
            if self.records
            else 0
        )

    # -- serialization ------------------------------------------------------

    def header(self) -> Dict[str, Any]:
        return {
            "kind": "header",
            "journal_version": JOURNAL_VERSION,
            "run_name": self.run_name,
            "include_timings": self.include_timings,
            "meta": self.meta,
        }

    def to_jsonl(self) -> str:
        """Serialize header + records as deterministic compact JSONL."""
        lines = [json.dumps(self.header(), **_JSON_COMPACT)]
        lines.extend(json.dumps(r, **_JSON_COMPACT) for r in self.records)
        return "\n".join(lines) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())

    # -- queries ------------------------------------------------------------

    def spans(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r["kind"] == "span"]

    def events(self, event_type: Optional[str] = None) -> List[Dict[str, Any]]:
        out = [r for r in self.records if r["kind"] == "event"]
        if event_type is not None:
            out = [r for r in out if r["event"] == event_type]
        return out

    def __len__(self) -> int:
        return len(self.records)


class LoadedJournal:
    """A journal read back from JSONL — header metadata plus records."""

    def __init__(self, header: Dict[str, Any], records: List[Dict[str, Any]]) -> None:
        if header.get("kind") != "header":
            raise ValueError("journal does not start with a header record")
        version = header.get("journal_version")
        if version != JOURNAL_VERSION:
            raise ValueError(
                f"unsupported journal version {version!r} "
                f"(this build reads version {JOURNAL_VERSION})"
            )
        self.header = header
        self.records = records

    @property
    def run_name(self) -> str:
        return self.header.get("run_name", "run")

    @property
    def include_timings(self) -> bool:
        return bool(self.header.get("include_timings", False))

    def spans(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("kind") == "span"]

    def events(self, event_type: Optional[str] = None) -> List[Dict[str, Any]]:
        out = [r for r in self.records if r.get("kind") == "event"]
        if event_type is not None:
            out = [r for r in out if r.get("event") == event_type]
        return out

    def timeline(self) -> List[Dict[str, Any]]:
        """All records in seq order (the reconstructed run timeline)."""
        return sorted(self.records, key=lambda r: r.get("seq", 0))


def load_journal(path: str) -> LoadedJournal:
    """Read a JSONL journal produced by :meth:`RunJournal.write`."""
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line for line in (l.strip() for l in fh) if line]
    if not lines:
        raise ValueError(f"journal {path!r} is empty")
    header = json.loads(lines[0])
    records = [json.loads(line) for line in lines[1:]]
    return LoadedJournal(header, records)


def journal_to_result(journal: LoadedJournal):
    """Build the per-phase breakdown table ``repro trace`` renders.

    Aggregates spans by name (count, total/mean wall time when the journal
    carries timings) and appends event tallies, reusing the existing
    :class:`~repro.experiments.harness.ExperimentResult` report machinery.
    """
    from repro.experiments.harness import ExperimentResult

    spans = journal.spans()
    events = journal.events()
    with_timings = journal.include_timings

    if with_timings:
        result = ExperimentResult(
            experiment_id="trace",
            title=f"per-phase breakdown for {journal.run_name}",
            columns=("phase", "spans", "total wall (s)", "mean wall (ms)", "cpu (s)"),
        )
    else:
        result = ExperimentResult(
            experiment_id="trace",
            title=f"per-phase breakdown for {journal.run_name}",
            columns=("phase", "spans"),
        )

    by_name: Dict[str, Dict[str, float]] = {}
    order: List[str] = []
    for span in spans:
        name = span["name"]
        agg = by_name.get(name)
        if agg is None:
            agg = by_name[name] = {"count": 0, "wall_s": 0.0, "cpu_s": 0.0}
            order.append(name)
        agg["count"] += 1
        agg["wall_s"] += span.get("wall_s", 0.0)
        agg["cpu_s"] += span.get("cpu_s", 0.0)

    # Heaviest phases first when we know the timings; first-seen otherwise.
    if with_timings:
        order.sort(key=lambda n: -by_name[n]["wall_s"])
    for name in order:
        agg = by_name[name]
        if with_timings:
            count = int(agg["count"])
            mean_ms = 1000.0 * agg["wall_s"] / count if count else 0.0
            result.add_row(
                name, count, f"{agg['wall_s']:.3f}", f"{mean_ms:.2f}",
                f"{agg['cpu_s']:.3f}",
            )
        else:
            result.add_row(name, int(agg["count"]))

    if not spans:
        result.add_note("journal contains no spans (was tracing enabled?)")
    if not with_timings:
        result.add_note(
            "journal was written without timings (deterministic mode); "
            "re-run with timings enabled for wall/CPU columns"
        )

    counts: Dict[str, int] = {}
    for event in events:
        counts[event.get("event", "?")] = counts.get(event.get("event", "?"), 0) + 1
    for event_type in sorted(counts):
        result.add_note(f"event {event_type}: {counts[event_type]} recorded")

    benefit_events = [e for e in events if "realized_benefit" in e]
    if benefit_events:
        last = benefit_events[-1]
        result.add_note(
            f"final realized benefit: {float(last['realized_benefit']):.4f}"
        )
    return result
