"""The parent-side parallel solve driver.

``ParallelSolver`` owns the shared-memory matrices, the fork pool of
:class:`repro.parallel.shard.ShardState` workers, and a ``solve()`` that
mirrors ``PainterOrchestrator._solve`` phase for phase:

1. **fill** (once per pool): workers fill their row ranges of the shared
   UG×peering latency/distance matrices; the parent adopts the latency
   matrix so its own evaluator reads the same doubles without recomputing.
2. **prep** (once per solve): the parent broadcasts the authoritative
   learned-UG set; both sides derive the identical learned-filtered pair
   layout of the gain buffer.
3. **round_start** (once per prefix): workers write initial-heap gains into
   the shared buffer; the parent performs every ``vol @ gain`` reduction
   over the full canonical segments.
4. **refresh / accept** (inner loop): workers return shard slices and
   scalar corrections; the parent concatenates in worker order (== global
   row order), sums, applies learned-row corrections, and drives the one
   true heap.

Refreshes are batched speculatively: alongside the popped peering, up to
:data:`SPECULATIVE_REFRESHES` stale heap-top candidates ride the same
round trip.  Their marginals are pure functions of the (version-stamped)
round state, so caching them until the next accept changes nothing about
the values the serial path would compute — it only saves pipe latency
during re-push streaks.

Every floating-point reduction happens here, in serial order, which is why
``workers=N`` is bit-identical to the serial solve for every N.
"""

from __future__ import annotations

import heapq
import logging
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.advertisement import AdvertisementConfig
from repro.parallel.pool import DEFAULT_TIMEOUT_S, WorkerPool, WorkerPoolError
from repro.parallel.shard import ShardContext, ShardState, shard_ranges
from repro.parallel.shared import SharedArray
from repro.perf import PERF
from repro.telemetry import TRACER
from repro.telemetry.metrics import METRICS

logger = logging.getLogger(__name__)

#: Extra stale heap-top marginals refreshed per round trip (batched
#: speculation; identical values, fewer pipe crossings).
SPECULATIVE_REFRESHES = 3


class ParallelSolver:
    """Shards one orchestrator's lazy-greedy solve across forked workers."""

    def __init__(
        self,
        orchestrator,
        n_workers: int,
        *,
        timeout_s: float = DEFAULT_TIMEOUT_S,
    ) -> None:
        if n_workers < 2:
            raise ValueError("parallel solve needs at least 2 workers")
        self._orch = orchestrator
        self.n_workers = n_workers
        scenario = orchestrator._scenario
        evaluator = orchestrator._evaluator
        model = orchestrator._model
        n_ugs = len(scenario.user_groups)
        n_cols = len(evaluator.peering_columns)
        self._lat = SharedArray((n_ugs, n_cols), fill=np.nan)
        self._dist = SharedArray((n_ugs, n_cols), fill=np.nan)
        total_pairs = sum(len(ugs) for ugs in orchestrator._affected.values())
        self._gains = SharedArray((total_pairs,), fill=0.0)
        ctx = ShardContext(
            scenario,
            evaluator,
            model,
            orchestrator._affected,
            orchestrator._ug_index,
            self._lat.array,
            self._dist.array,
            self._gains.array,
        )
        self._ctx = ctx
        shards = shard_ranges(n_ugs, n_workers)

        def make_handler(index: int, _ctx=ctx, _shards=tuple(shards)) -> ShardState:
            lo, hi = _shards[index]
            return ShardState(_ctx, lo, hi)

        self.pool = WorkerPool(n_workers, make_handler, timeout_s=timeout_s)
        #: World-state generation this pool was forked from.  The
        #: orchestrator bumps its own epoch on volume/peering mutations and
        #: rebuilds any pool whose epoch lags — forked workers hold frozen
        #: copies of the scenario and must not serve a mutated world.
        self.world_epoch = getattr(orchestrator, "_world_epoch", 0)
        self._filled = False
        self._slow_queries = PERF.counter("evaluator.scan_slow_queries")
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.pool.close()
        finally:
            if self._filled:
                self._orch._evaluator.backend.release_latency_matrix()
            # Release the shard context's views so the mappings can unmap.
            self._ctx.lat_mat = None
            self._ctx.dist_mat = None
            self._ctx.gain_buf = None
            for arr in (self._lat, self._dist, self._gains):
                arr.close(unlink=True)

    def invalidate(self, ug_ids) -> bool:
        """Broadcast an epoch bump after the parent's model learned.

        Returns ``False`` when the broadcast could not reach every worker
        (pool already broken, or it broke right here).  The caller must
        treat that as a pool failure — a worker that missed the epoch bump
        would solve against a stale learned set, so the next solve has to
        fall back instead of trusting (or waiting on) this pool.
        """
        if self.pool.broken:
            return False
        try:
            self.pool.broadcast("invalidate", tuple(ug_ids))
            return True
        except WorkerPoolError:
            self.pool.broken = True
            return False

    def _ensure_filled(self) -> None:
        if self._filled:
            return
        with PERF.timed("parallel.fill"):
            self.pool.broadcast("fill")
        # The parent's evaluator now reads the worker-computed doubles
        # instead of re-deriving them serially (bound on the compute
        # backend, which owns the dense-matrix surface).
        self._orch._evaluator.backend.bind_latency_matrix(self._lat.array)
        self._filled = True

    # -- the solve -----------------------------------------------------------

    def solve(self, record_curve: bool = False) -> AdvertisementConfig:
        """One full Algorithm-1 budget allocation, sharded; see ``_solve``."""
        # Imported here: repro.core.orchestrator lazily imports this module.
        from repro.core.orchestrator import EPSILON_BENEFIT, _BENEFIT_BUCKETS

        orch = self._orch
        scenario = orch._scenario
        evaluator = orch._evaluator
        model = orch._model
        pool = self.pool
        config = AdvertisementConfig()
        orch.budget_curve = []
        PERF.counter("orchestrator.solve_calls").add()
        PERF.counter("parallel.solve_calls").add()
        marginal_evals = PERF.counter("orchestrator.marginal_evals")
        naive_evals = PERF.counter("orchestrator.naive_marginal_evals")
        repushes = PERF.counter("orchestrator.heap_repushes")
        spec_hits = PERF.counter("parallel.speculative_hits")
        refresh_rounds = PERF.counter("parallel.refresh_roundtrips")
        marginal_hist = PERF.histogram(
            "orchestrator.marginal_benefit", _BENEFIT_BUCKETS
        )
        self._ensure_filled()

        ugs = scenario.user_groups
        n_ugs = len(ugs)
        budget = orch._budget
        anycast_arr = np.array([scenario.anycast_latency_ms(ug) for ug in ugs])
        vol_list = [ug.volume for ug in ugs]
        vol_arr = np.array(vol_list)
        all_peering_ids = self._ctx.all_peering_ids
        rows_np = self._ctx.rows_np
        affected_map = self._ctx.affected

        exp_np = np.full((n_ugs, budget), np.inf)

        # Per-solve learned split, mirrored on both sides of the pipe: the
        # parent owns the live model; workers get the set explicitly.
        learned_ids = tuple(sorted(model.learned_ug_ids))
        learned_rows = {
            orch._ug_index[ug_id]
            for ug_id in learned_ids
            if ug_id in orch._ug_index
        }
        learned_sorted = np.fromiter(
            sorted(learned_rows), dtype=np.intp, count=len(learned_rows)
        )
        pool.broadcast("prep", learned_ids)
        # Parent-side layout over the same learned-filtered pair ordering the
        # workers derived: gain-buffer spans, filtered volumes, and the
        # learned (UG, row) remainders the parent corrects for exactly.
        spans: Dict[int, Tuple[int, int]] = {}
        vol_f: Dict[int, "np.ndarray"] = {}
        learned_aff: Dict[int, List[Tuple[object, int]]] = {}
        off = 0
        for pid in all_peering_ids:
            rows = rows_np[pid]
            if learned_rows:
                filt = rows[~np.isin(rows, learned_sorted)]
            else:
                filt = rows
            spans[pid] = (off, len(filt))
            off += len(filt)
            vol_f[pid] = vol_arr[filt]
            if len(filt) != len(rows):
                learned_aff[pid] = [
                    (ug, row)
                    for ug, row in zip(affected_map[pid], rows.tolist())
                    if row in learned_rows
                ]
        gain_view = self._gains.array

        def learned_query(ug, advertised: set, pid: int) -> Optional[float]:
            # The parent-side image of PrefixScan.query's slow path.
            self._slow_queries.value += 1
            return evaluator.expected_prefix_latency(
                ug, frozenset(advertised | {pid})
            )

        for prefix in range(budget):
            with TRACER.span("orchestrator.prefix_scan", prefix=prefix) as scan_span:
                advertised: set = set()
                base_np = (
                    np.minimum(anycast_arr, exp_np.min(axis=1))
                    if n_ugs
                    else anycast_arr
                )
                base_list = base_np.tolist()
                cur_p: List[Optional[float]] = [None] * n_ugs
                pool.broadcast("round_start", base_np)

                version = 0
                heap: List[Tuple[float, int, int]] = []
                for pid in all_peering_ids:
                    marginal_evals.add()
                    start, count = spans[pid]
                    delta = float(vol_f[pid] @ gain_view[start : start + count])
                    for ug, row in learned_aff.get(pid, ()):
                        base = base_list[row]
                        new_p = learned_query(ug, advertised, pid)
                        if new_p is not None and new_p < base:
                            delta += vol_list[row] * (base - new_p)
                    heap.append((-delta, version, pid))
                heapq.heapify(heap)

                #: pid -> refreshed delta, valid until the next accept.
                speculative: Dict[int, float] = {}

                def refresh_batch(primary: int) -> None:
                    batch = [primary]
                    if SPECULATIVE_REFRESHES and len(heap) > 1:
                        for neg, seen_v, pid in sorted(heap[:8])[
                            : SPECULATIVE_REFRESHES + 1
                        ]:
                            if (
                                seen_v != version
                                and pid != primary
                                and pid not in advertised
                                and pid not in speculative
                                and len(batch) <= SPECULATIVE_REFRESHES
                            ):
                                batch.append(pid)
                    refresh_rounds.add()
                    replies = pool.broadcast("refresh", batch)
                    for i, pid in enumerate(batch):
                        contrib = np.concatenate(
                            [reply[i][0] for reply in replies]
                        )
                        delta = float(contrib.sum())
                        for reply in replies:
                            for correction in reply[i][1]:
                                delta += correction
                        for ug, row in learned_aff.get(pid, ()):
                            base_s = base_list[row]
                            old_p = cur_p[row]
                            old_best = (
                                base_s
                                if old_p is None or base_s < old_p
                                else old_p
                            )
                            new_p_s = learned_query(ug, advertised, pid)
                            if new_p_s is None:
                                new_best_s = old_best
                            elif new_p_s < base_s:
                                new_best_s = new_p_s
                            else:
                                new_best_s = base_s
                            delta += vol_list[row] * (old_best - new_best_s)
                        speculative[pid] = delta

                while heap:
                    neg_delta, seen_version, pid = heapq.heappop(heap)
                    if pid in advertised:
                        continue
                    if seen_version != version:
                        marginal_evals.add()
                        if pid in speculative:
                            spec_hits.add()
                        else:
                            refresh_batch(pid)
                        fresh = speculative.pop(pid)
                        if heap and fresh < -heap[0][0] - EPSILON_BENEFIT:
                            repushes.add()
                            heapq.heappush(heap, (-fresh, version, pid))
                            continue
                        neg_delta = -fresh
                    if -neg_delta <= EPSILON_BENEFIT:
                        break  # no peering offers positive benefit
                    marginal_hist.observe(-neg_delta)
                    advertised.add(pid)
                    config.add(prefix, pid)
                    version += 1
                    speculative.clear()
                    for worker_updates in pool.broadcast("accept", pid):
                        for row, value in worker_updates:
                            cur_p[row] = value
                            exp_np[row, prefix] = (
                                np.inf if value is None else value
                            )
                    if pid in learned_aff:
                        frozen = frozenset(advertised)
                        for ug, row in learned_aff[pid]:
                            # scan.current() equivalent for learned rows.
                            value = evaluator.expected_prefix_latency(ug, frozen)
                            cur_p[row] = value
                            exp_np[row, prefix] = (
                                np.inf if value is None else value
                            )
                    if not orch._allow_reuse:
                        break  # one peering per prefix (ablation)

                accepts = len(advertised)
                n_peerings = len(all_peering_ids)
                if orch._allow_reuse:
                    naive_evals.add(
                        (accepts + 1) * n_peerings
                        - accepts * (accepts + 1) // 2
                    )
                else:
                    naive_evals.add(n_peerings)
                scan_span.tag("accepted", accepts)
            if not advertised:
                break  # nothing left anywhere
            logger.debug(
                "prefix %d advertised via %d peerings (parallel)",
                prefix,
                accepts,
            )
            if record_curve:
                from repro.core.orchestrator import BudgetPoint

                evaluation = evaluator.evaluate(config)
                orch.budget_curve.append(
                    BudgetPoint(
                        prefixes_used=config.prefix_count,
                        pairs_used=config.pair_count,
                        estimated_benefit=evaluation.estimated,
                        upper_benefit=evaluation.upper,
                        lower_benefit=evaluation.lower,
                        mean_benefit=evaluation.mean,
                    )
                )

        # Fold each worker's per-solve metrics (scan counters, fill timers)
        # into the parent registry; workers snapshot-and-reset so a
        # persistent pool never double-counts across solves.
        for snapshot in pool.collect_metrics():
            METRICS.merge(snapshot)
        return config
