"""A persistent fork-based worker pool with a deterministic gather order.

The pool forks ``n`` long-lived workers, each holding one handler object
(built in the child from a factory closed over pre-fork state, so nothing
is pickled) and one duplex control pipe.  ``broadcast`` sends a request to
every worker and then collects replies **in worker-index order** — the
ordering guarantee the parallel solver's bit-identical merge relies on.

Failure model: any worker death (EOF/broken pipe — e.g. a chaos run
SIGKILLing the process), reply timeout, or in-worker exception marks the
whole pool broken and raises :class:`WorkerPoolError`.  The solver catches
that, tears the pool down, and re-runs the solve serially; determinism
makes the fallback result identical to what the pool would have produced.

Fault injection: :func:`arm_worker_faults` subscribes a pool to a
:class:`repro.faults.FaultInjector`, SIGKILLing the indexed worker when a
:class:`repro.faults.WorkerCrash` event fires.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.telemetry import TRACER
from repro.telemetry.metrics import METRICS

#: Seconds a healthy worker gets to answer one request before the pool is
#: declared broken.  Generous: requests are sub-second in practice.
DEFAULT_TIMEOUT_S = 300.0


class WorkerPoolError(RuntimeError):
    """The pool can no longer serve requests (death, timeout, worker error)."""


def _worker_main(
    index: int,
    conn,
    make_handler: Callable[[int], Any],
) -> None:
    """Child process loop: dispatch pipe requests to the handler object."""
    # Inherited telemetry state belongs to the parent: spans would interleave
    # garbage into its journal, and inherited metric values would be counted
    # twice on merge.  Workers start from zero and snapshot-and-reset on
    # request.  (The forked child also shares the parent's resource-tracker
    # process, so shared-memory bookkeeping is left strictly to the parent.)
    TRACER.disable()
    METRICS.reset()
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    handler = make_handler(index)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op = message[0]
        if op == "__stop__":
            conn.send(("ok", None))
            break
        if op == "__ping__":
            conn.send(("ok", index))
            continue
        if op == "__metrics__":
            snap = METRICS.snapshot()
            METRICS.reset()
            conn.send(("ok", snap))
            continue
        try:
            result = getattr(handler, op)(*message[1:])
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        else:
            conn.send(("ok", result))
    conn.close()


class WorkerPool:
    """``n`` forked workers answering method calls over duplex pipes."""

    def __init__(
        self,
        n_workers: int,
        make_handler: Callable[[int], Any],
        *,
        timeout_s: float = DEFAULT_TIMEOUT_S,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise WorkerPoolError("fork start method unavailable") from exc
        self.n_workers = n_workers
        self.timeout_s = timeout_s
        self.broken = False
        self._procs: List = []
        self._conns: List = []
        for index in range(n_workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(index, child_conn, make_handler),
                daemon=True,
                name=f"repro-solve-worker-{index}",
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    # -- request/reply -------------------------------------------------------

    def _recv(self, index: int) -> Any:
        conn = self._conns[index]
        try:
            if not conn.poll(self.timeout_s):
                raise WorkerPoolError(f"worker {index} timed out")
            status, payload = conn.recv()
        except WorkerPoolError:
            self.broken = True
            raise
        except (EOFError, OSError) as exc:
            self.broken = True
            raise WorkerPoolError(f"worker {index} died: {exc!r}") from exc
        if status != "ok":
            self.broken = True
            raise WorkerPoolError(f"worker {index} failed: {payload}")
        return payload

    def broadcast(self, op: str, *args: Any) -> List[Any]:
        """Send ``op`` to every worker; gather replies in worker order."""
        if self.broken:
            raise WorkerPoolError("worker pool is broken")
        message = (op,) + args
        for index, conn in enumerate(self._conns):
            try:
                conn.send(message)
            except (BrokenPipeError, OSError) as exc:
                self.broken = True
                raise WorkerPoolError(
                    f"worker {index} unreachable: {exc!r}"
                ) from exc
        return [self._recv(index) for index in range(self.n_workers)]

    def call(self, index: int, op: str, *args: Any) -> Any:
        """Send ``op`` to one worker and wait for its reply."""
        if self.broken:
            raise WorkerPoolError("worker pool is broken")
        try:
            self._conns[index].send((op,) + args)
        except (BrokenPipeError, OSError) as exc:
            self.broken = True
            raise WorkerPoolError(f"worker {index} unreachable: {exc!r}") from exc
        return self._recv(index)

    def ping(self) -> List[int]:
        return self.broadcast("__ping__")

    def collect_metrics(self) -> List[dict]:
        """Snapshot-and-reset each worker's metrics registry."""
        return self.broadcast("__metrics__")

    # -- lifecycle / fault injection ----------------------------------------

    def alive(self) -> bool:
        return not self.broken and all(p.is_alive() for p in self._procs)

    def kill_worker(self, index: int) -> bool:
        """SIGKILL one worker (fault injection); returns whether it ran."""
        proc = self._procs[index]
        if not proc.is_alive():
            return False
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=10.0)
        return True

    def close(self) -> None:
        """Stop every worker, politely first, then by force."""
        for index, conn in enumerate(self._conns):
            try:
                conn.send(("__stop__",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self.broken = True


def arm_worker_faults(injector, pool: WorkerPool) -> None:
    """Kill pool workers when the injector fires ``WorkerCrash`` events.

    Chaos schedules can thereby exercise the parallel solver's serial
    fallback exactly like any other fault: the listener SIGKILLs the
    indexed worker on the event's down transition, and the next pool
    request surfaces the death as :class:`WorkerPoolError`.
    """
    from repro.faults.events import WorkerCrash

    def listener(time_s: float, event, went_down: bool) -> None:
        if went_down and isinstance(event, WorkerCrash):
            index = event.worker_index % pool.n_workers
            pool.kill_worker(index)

    injector.subscribe(listener)
