"""Row-sharded worker state for the parallel lazy-greedy solve.

Each worker owns a contiguous range of UG rows ``[lo, hi)`` and performs,
for those rows only, exactly the per-row work the serial ``_solve`` does:
filling the latency/distance matrices, computing initial-heap gains, the
vectorized part of a marginal refresh, and folding accepted peerings into
an incremental :class:`repro.core.benefit.PrefixScan`.

Bit-identity with the serial path rests on three invariants, all enforced
here:

* workers compute only **elementwise / per-row** quantities — every
  floating-point *reduction* (``contrib.sum()``, the initial ``vol @ gain``
  dot product, scalar shrink-correction accumulation) happens in the parent
  over full arrays assembled in canonical row order, so the summation order
  is the serial order regardless of worker count;
* shard row ranges are contiguous and affected-UG lists are row-ascending
  (``_invert_catalog`` walks UGs in scenario order), so concatenating
  worker results in worker-index order reproduces the serial array layout
  with no re-sorting;
* the per-value math is the *same code* the serial path runs — the
  deterministic latency/distance oracles, the compute backend's
  elementwise kernels (``repro.kernels``; workers inherit the evaluator's
  backend at fork time, so a compiled solve is compiled in every shard),
  and the shared :class:`PrefixScan` — evaluated on the same IEEE doubles.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

# Re-exported for backward compatibility: the canonical kernel now lives in
# the numpy reference backend (every ComputeBackend reproduces it
# bit-for-bit elementwise).
from repro.kernels import ScanContext
from repro.kernels.numpy_backend import refresh_contrib  # noqa: F401
from repro.perf import PERF


def shard_ranges(n_rows: int, n_workers: int) -> List[Tuple[int, int]]:
    """Contiguous, near-even ``[lo, hi)`` row ranges, one per worker."""
    if n_workers < 1:
        raise ValueError("need at least one worker")
    base = n_rows // n_workers
    extra = n_rows % n_workers
    ranges = []
    lo = 0
    for i in range(n_workers):
        hi = lo + base + (1 if i < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


class ShardContext:
    """Everything a worker inherits at fork time (built pre-fork, immutable).

    Holds the scenario graph plus the shared-memory matrices.  Nothing in
    here is pickled: under the ``fork`` start method children inherit the
    parent's address space, and the :class:`SharedArray` segments map the
    same physical pages in every process.
    """

    def __init__(
        self,
        scenario,
        evaluator,
        model,
        affected: Dict[int, Sequence],
        ug_index: Dict[int, int],
        lat_mat,
        dist_mat,
        gain_buf,
    ) -> None:
        self.scenario = scenario
        self.evaluator = evaluator
        self.model = model
        #: The evaluator's compute backend: forked workers inherit it (a
        #: numba backend's compiled dispatchers survive ``fork``), so shard
        #: kernels run on exactly the backend the serial path would use.
        self.backend = evaluator.backend
        self.affected = affected
        self.ug_index = ug_index
        self.all_peering_ids: List[int] = sorted(affected)
        self.col_of: Dict[int, int] = evaluator.peering_columns
        self.n_ugs = len(scenario.user_groups)
        self.d_reuse = model.d_reuse_km
        self.lat_mat = lat_mat
        self.dist_mat = dist_mat
        self.gain_buf = gain_buf
        #: Global row indices of each peering's affected UGs, ascending
        #: (catalog inversion walks UGs in scenario order).
        self.rows_np: Dict[int, "np.ndarray"] = {
            pid: np.fromiter(
                (ug_index[ug.ug_id] for ug in ugs), dtype=np.intp, count=len(ugs)
            )
            for pid, ugs in affected.items()
        }
        self.total_pairs = sum(len(ugs) for ugs in affected.values())


class ShardState:
    """One worker's mutable solve state over its row range ``[lo, hi)``.

    The public methods are the worker protocol: ``fill``, ``prep``,
    ``round_start``, ``refresh``, ``accept``, ``invalidate``.  All of them
    run equally well in-process (the unit tests drive them directly) — the
    pool merely moves the calls behind a pipe.
    """

    def __init__(self, ctx: ShardContext, lo: int, hi: int) -> None:
        self.ctx = ctx
        self.lo = lo
        self.hi = hi
        self.ugs = ctx.scenario.user_groups
        # Same construction as the serial solve: python-float volumes and
        # their float64 array image.
        self.vol_list = [ug.volume for ug in self.ugs]
        self.vol_arr = np.array(self.vol_list)
        self._prepped = False
        # Per-solve state (built by prep):
        self.learned_rows: set = set()
        self.local: Dict[int, Tuple["np.ndarray", "np.ndarray", "np.ndarray", "np.ndarray"]] = {}
        self.spans: Dict[int, Tuple[int, int]] = {}
        self.shard_all: Dict[int, list] = {}
        self.shard_unlearned: Dict[int, List[Tuple[object, int]]] = {}
        # Per-round state (built by round_start):
        self.scan = None
        self.base_np: Optional["np.ndarray"] = None
        self.base_list: Optional[list] = None
        self.d0_arr: Optional["np.ndarray"] = None
        self.csum_arr: Optional["np.ndarray"] = None
        self.ccnt_arr: Optional["np.ndarray"] = None
        self.ob_arr: Optional["np.ndarray"] = None
        self._learned_frozen: FrozenSet[int] = frozenset()
        self._fast_queries = PERF.counter("evaluator.scan_fast_queries")

    # -- one-time: matrix fill ----------------------------------------------

    def fill(self) -> int:
        """Fill the shared latency/distance matrices for rows ``[lo, hi)``.

        Uses the same deterministic oracles the serial precompute uses, so
        every slot holds the exact double the serial solve would compute.
        ``+inf`` encodes an unmeasurable ingress (``None``).
        """
        ctx = self.ctx
        lat_mat = ctx.lat_mat
        dist_mat = ctx.dist_mat
        catalog = ctx.model.catalog
        col_of = ctx.col_of
        filled = 0
        for row in range(self.lo, self.hi):
            ug = self.ugs[row]
            for pid in catalog.ingress_ids(ug):
                col = col_of[pid]
                lat = ctx.evaluator.latency(ug, pid)
                lat_mat[row, col] = np.inf if lat is None else lat
                dist_mat[row, col] = ctx.model.distance_km(ug, pid)
                filled += 1
        return filled

    # -- per-solve: learned split + gain-buffer layout -----------------------

    def prep(self, learned_ug_ids: Sequence[int]) -> int:
        """Build this solve's per-peering local arrays and buffer spans.

        ``learned_ug_ids`` is the authoritative learned set from the parent
        (the worker's forked routing model is frozen at pool-creation time
        and must not be consulted).  Learned rows are excluded here exactly
        as the serial solve's keep-mask excludes them; the parent handles
        all learned-row corrections itself.
        """
        ctx = self.ctx
        self._learned_frozen = frozenset(learned_ug_ids)
        ug_index = ctx.ug_index
        learned_rows = {
            ug_index[ug_id] for ug_id in learned_ug_ids if ug_id in ug_index
        }
        self.learned_rows = learned_rows
        learned_sorted = np.fromiter(
            sorted(learned_rows), dtype=np.intp, count=len(learned_rows)
        )
        lat_mat = ctx.lat_mat
        dist_mat = ctx.dist_mat
        lo, hi = self.lo, self.hi
        local = {}
        spans = {}
        shard_all = {}
        shard_unlearned = {}
        off = 0
        for pid in ctx.all_peering_ids:
            rows = ctx.rows_np[pid]
            if not learned_rows:
                filt = rows
            else:
                filt = rows[~np.isin(rows, learned_sorted)]
            left = int(np.searchsorted(filt, lo))
            right = int(np.searchsorted(filt, hi))
            sel = filt[left:right]
            col = ctx.col_of[pid]
            lat = lat_mat[sel, col].copy()
            lat[np.isinf(lat)] = np.nan  # serial build_lat uses nan for None
            dist = dist_mat[sel, col].copy()
            local[pid] = (sel, lat, dist, self.vol_arr[sel])
            spans[pid] = (off + left, right - left)
            off += len(filt)
            affected = ctx.affected[pid]
            rows_list = rows.tolist()
            in_shard = [
                (ug, row)
                for ug, row in zip(affected, rows_list)
                if lo <= row < hi
            ]
            shard_all[pid] = [ug for ug, _ in in_shard]
            shard_unlearned[pid] = [
                (ug, row) for ug, row in in_shard if row not in learned_rows
            ]
        self.local = local
        self.spans = spans
        self.shard_all = shard_all
        self.shard_unlearned = shard_unlearned
        self._prepped = True
        return off  # total (learned-filtered) pair count, all shards

    # -- per-prefix round ----------------------------------------------------

    def _table_source(self, ug):
        """Scan table for one UG, sourced from the shared matrices."""
        ctx = self.ctx
        row = ctx.ug_index[ug.ug_id]
        lat_mat = ctx.lat_mat
        dist_mat = ctx.dist_mat
        col_of = ctx.col_of
        table = {}
        for pid in ctx.model.catalog.ingress_ids(ug):
            col = col_of[pid]
            lat = lat_mat[row, col]
            table[pid] = (
                float(dist_mat[row, col]),
                None if math.isinf(lat) else float(lat),
            )
        return table

    def round_start(self, base_np: "np.ndarray") -> None:
        """Reset per-prefix state and write this shard's initial gains.

        Gains land in the shared buffer at each peering's span, giving the
        parent the full serial ``fmax(base - lat, 0)`` vector per peering
        once every worker has acknowledged; the parent then performs the
        ``vol @ gain`` reduction itself.
        """
        ctx = self.ctx
        self.base_np = base_np
        self.base_list = base_np.tolist()
        n = ctx.n_ugs
        self.d0_arr = np.full(n, np.inf)
        self.csum_arr = np.zeros(n)
        self.ccnt_arr = np.zeros(n)
        self.ob_arr = base_np.copy()
        self.scan = ctx.evaluator.begin_prefix_scan(
            ScanContext(
                learned_ug_ids=self._learned_frozen,
                table_source=self._table_source,
            )
        )
        gains = ctx.gain_buf
        backend = ctx.backend
        for pid in ctx.all_peering_ids:
            sel, lat, _dist, _vol = self.local[pid]
            start, count = self.spans[pid]
            if count:
                gains[start : start + count] = backend.initial_gains(
                    base_np[sel], lat
                )
            self._fast_queries.value += count

    def refresh(self, pids: Sequence[int]) -> List[Tuple["np.ndarray", list]]:
        """Shard slice of the refresh marginal for each requested peering.

        Returns, per peering, ``(contrib, corrections)``: the vectorized
        per-row contributions (shrink rows zeroed) and the exact scalar
        shrink corrections in ascending row order.  The parent concatenates
        worker contribs and sums everything itself.
        """
        out = []
        backend = self.ctx.backend
        for pid in pids:
            sel, lat, dist, vol = self.local[pid]
            contrib, shrink = backend.refresh_contrib(
                dist,
                lat,
                vol,
                self.d0_arr[sel],
                self.csum_arr[sel],
                self.ccnt_arr[sel],
                self.ob_arr[sel],
                self.base_np[sel],
                self.ctx.d_reuse,
            )
            corrections = []
            if shrink.any():
                for pos in np.nonzero(shrink)[0]:
                    row = int(sel[pos])
                    ug = self.ugs[row]
                    ob_s = self.ob_arr[row]
                    new_p_s = self.scan.query(ug, pid)
                    if new_p_s is None:
                        continue
                    base_s = self.base_list[row]
                    new_best_s = new_p_s if new_p_s < base_s else base_s
                    corrections.append(self.vol_list[row] * (ob_s - new_best_s))
            self._fast_queries.value += len(lat)
            out.append((contrib, corrections))
        return out

    def accept(self, pid: int) -> List[Tuple[int, Optional[float]]]:
        """Fold an accepted peering into this shard's scan state.

        Returns ``(row, expected latency)`` updates for the shard's
        unlearned affected rows, exactly the values the serial accept loop
        writes into ``exp_np``; the parent applies them and handles learned
        rows itself.
        """
        self.scan.accept(pid, self.shard_all.get(pid, ()))
        updates = []
        for ug, row in self.shard_unlearned.get(pid, ()):
            d0, ksum, kcnt, value = self.scan.kept_stats(ug)
            self.d0_arr[row] = d0
            self.csum_arr[row] = ksum
            self.ccnt_arr[row] = kcnt
            updates.append((row, value))
            base = self.base_list[row]
            self.ob_arr[row] = base if value is None or base < value else value
        return updates

    # -- epoch invalidation --------------------------------------------------

    def invalidate(self, ug_ids: Sequence[int]) -> int:
        """Drop per-solve state after the parent's model learned ``ug_ids``.

        The next ``prep`` rebuilds the learned split from the authoritative
        set the parent sends; dropping eagerly here makes it impossible for
        a stale layout to survive an ``observe()`` between solves.
        """
        self._prepped = False
        self.local = {}
        self.spans = {}
        self.shard_all = {}
        self.shard_unlearned = {}
        return len(tuple(ug_ids))
