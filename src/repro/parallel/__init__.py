"""Intra-solve parallelism: sharded lazy-greedy evaluation, bit-identical.

``PainterOrchestrator.solve`` with ``OrchestratorConfig(workers=N)`` (or
``repro solve --workers N``) shards each prefix round's candidate-peering
marginal evaluations across ``N`` persistent fork workers.  The latency and
distance matrices live in ``multiprocessing.shared_memory`` — workers fill
and read them as plain numpy views, and nothing scenario-sized ever crosses
a pipe.  Results are **bit-identical** to the serial path for every worker
count: workers compute only elementwise per-row slices, and the parent
performs every floating-point reduction over canonically ordered full
arrays (see :mod:`repro.parallel.shard` for the invariants).

Process-wide gating: :func:`disable_parallel` turns the subsystem off for
this process (orchestrators silently run serial).  The experiment harness
calls it inside its own pool workers so an ``--jobs`` fan-out can never
nest a solve pool inside an experiment worker.
"""

from repro.parallel.pool import (
    DEFAULT_TIMEOUT_S,
    WorkerPool,
    WorkerPoolError,
    arm_worker_faults,
)
from repro.parallel.shard import ShardContext, ShardState, shard_ranges
from repro.parallel.shared import SharedArray
from repro.parallel.solver import SPECULATIVE_REFRESHES, ParallelSolver

_ENABLED = True


def parallel_enabled() -> bool:
    """Whether this process may create solve worker pools."""
    return _ENABLED


def disable_parallel() -> None:
    """Force every orchestrator in this process to solve serially.

    Called by the experiment harness's pool initializer: experiment workers
    are themselves one-per-core, so nesting a solve pool inside each would
    oversubscribe the machine (and fork from an already-forked child).
    """
    global _ENABLED
    _ENABLED = False


def enable_parallel() -> None:
    """Re-allow solve worker pools (undo :func:`disable_parallel`)."""
    global _ENABLED
    _ENABLED = True


__all__ = [
    "DEFAULT_TIMEOUT_S",
    "ParallelSolver",
    "SPECULATIVE_REFRESHES",
    "SharedArray",
    "ShardContext",
    "ShardState",
    "WorkerPool",
    "WorkerPoolError",
    "arm_worker_faults",
    "disable_parallel",
    "enable_parallel",
    "parallel_enabled",
    "shard_ranges",
]
