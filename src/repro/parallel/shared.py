"""Shared-memory numpy arrays for the fork-based solver worker pool.

The parallel solver shares the UG×peering latency and distance matrices —
and a scratch buffer for per-round marginal gains — between the parent and
its shard workers without pickling a single scenario object.  Each
:class:`SharedArray` owns one POSIX shared-memory segment exposing a numpy
view; segments are created by the parent *before* forking, so children
inherit open file descriptors and simply map the same pages (MAP_SHARED:
worker writes are immediately visible to the parent once the worker's reply
arrives over the control pipe).
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Sequence, Tuple

import numpy as np


class SharedArray:
    """A numpy array backed by a named POSIX shared-memory segment."""

    def __init__(
        self,
        shape: Sequence[int],
        dtype: "np.dtype" = np.float64,
        fill: float = np.nan,
    ) -> None:
        shape = tuple(int(s) for s in shape)
        nbytes = int(np.dtype(dtype).itemsize * max(1, int(np.prod(shape))))
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self.shape: Tuple[int, ...] = shape
        self.dtype = np.dtype(dtype)
        self.array = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf)
        if fill is not None:
            self.array.fill(fill)
        self._closed = False

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self, unlink: bool = False) -> None:
        """Release the local mapping (and destroy the segment if ``unlink``)."""
        if self._closed:
            return
        self._closed = True
        # Drop the numpy view first: SharedMemory.close() invalidates buf.
        self.array = None
        try:
            self._shm.close()
        except Exception:  # pragma: no cover - platform-dependent teardown
            pass
        if unlink:
            try:
                self._shm.unlink()
            except Exception:  # pragma: no cover - already unlinked
                pass

    def __del__(self) -> None:  # pragma: no cover - GC-timing dependent
        try:
            self.close()
        except Exception:
            pass
