"""Shared-memory numpy arrays for the fork-based solver worker pool.

The parallel solver shares the UG×peering latency and distance matrices —
and a scratch buffer for per-round marginal gains — between the parent and
its shard workers without pickling a single scenario object.  Each
:class:`SharedArray` owns one POSIX shared-memory segment exposing a numpy
view; segments are created by the parent *before* forking, so children
inherit open file descriptors and simply map the same pages (MAP_SHARED:
worker writes are immediately visible to the parent once the worker's reply
arrives over the control pipe).
"""

from __future__ import annotations

import logging
from multiprocessing import shared_memory
from typing import Sequence, Tuple

import numpy as np

from repro.perf import PERF

logger = logging.getLogger(__name__)


class SharedArray:
    """A numpy array backed by a named POSIX shared-memory segment."""

    def __init__(
        self,
        shape: Sequence[int],
        dtype: "np.dtype" = np.float64,
        fill: float = np.nan,
    ) -> None:
        shape = tuple(int(s) for s in shape)
        nbytes = int(np.dtype(dtype).itemsize * max(1, int(np.prod(shape))))
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self.shape: Tuple[int, ...] = shape
        self.dtype = np.dtype(dtype)
        self.array = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf)
        if fill is not None:
            self.array.fill(fill)
        self._closed = False

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self, unlink: bool = False) -> None:
        """Release the local mapping (and destroy the segment if ``unlink``).

        Expected teardown races — the segment already unlinked by a peer
        (``FileNotFoundError``) or a still-live exported buffer view
        (``BufferError``) — stay silent; anything else is counted in the
        ``parallel.shm_teardown_errors`` metric and logged so leaked
        shared-memory segments are visible instead of swallowed.
        """
        if self._closed:
            return
        self._closed = True
        # Drop the numpy view first: SharedMemory.close() invalidates buf.
        self.array = None
        name = self._shm.name
        try:
            self._shm.close()
        except (FileNotFoundError, BufferError):
            pass
        except Exception:
            PERF.counter("parallel.shm_teardown_errors").add()
            logger.warning(
                "unexpected error closing shared-memory segment %s", name,
                exc_info=True,
            )
        if unlink:
            try:
                self._shm.unlink()
            except (FileNotFoundError, BufferError):
                pass
            except Exception:
                PERF.counter("parallel.shm_teardown_errors").add()
                logger.warning(
                    "unexpected error unlinking shared-memory segment %s",
                    name,
                    exc_info=True,
                )

    def __del__(self) -> None:  # pragma: no cover - GC-timing dependent
        try:
            self.close()
        except Exception:
            pass
