"""Continuous-operation controller: the PAINTER control loop as a service.

The batch orchestrator answers "what should we advertise right now?";
this package keeps answering it as the world moves.  A
:class:`PainterController` ingests a stream of typed world deltas
(:mod:`repro.controller.deltas` — UG volume shifts, peering sessions
dropping and returning, whole-PoP outages derived from
:mod:`repro.faults` schedules), re-solves each iteration by warm-starting
Algorithm 1 from the previous solution
(:meth:`repro.core.PainterOrchestrator.solve_warm` — bit-identical to a
cold solve, at a fraction of the cost), and applies the result through
the Traffic Manager.

Robustness is the headline, not an afterthought:

* every iteration ends in a **crash-safe checkpoint**
  (:class:`CheckpointStore` — atomic write-then-rename, fsync'd,
  versioned, content-hashed) and an fsync'd append to a durable run
  journal (:class:`DurableJournal`), sequence-stamped so a killed
  controller resumes from the last durable iteration and the journal
  reads as if the crash never happened;
* re-solve and apply run under **retry-with-backoff** and a SIGALRM
  **watchdog**; an iteration that keeps failing degrades gracefully to
  the last-known-good configuration instead of taking the loop down;
* a **circuit breaker** cold-verifies the warm solver on a configurable
  cadence and pins the loop to cold solves for a cooldown window if the
  differential guard ever detects divergence.
"""

from repro.controller.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    CheckpointStore,
    DurableJournal,
)
from repro.controller.daemon import (
    ControllerConfig,
    ControllerError,
    ControllerExtension,
    ControllerResult,
    IterationTimeout,
    PainterController,
)
from repro.controller.deltas import (
    Delta,
    DeltaError,
    LinkWeightShift,
    PeeringDown,
    PeeringUp,
    PopDown,
    PopUp,
    VolumeShift,
    delta_from_dict,
    delta_to_dict,
    deltas_from_fault_schedule,
    group_deltas,
    link_weight_deltas,
    load_deltas,
    save_deltas,
    synthetic_deltas,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "CheckpointStore",
    "ControllerConfig",
    "ControllerError",
    "ControllerExtension",
    "ControllerResult",
    "Delta",
    "DeltaError",
    "DurableJournal",
    "IterationTimeout",
    "LinkWeightShift",
    "PainterController",
    "PeeringDown",
    "PeeringUp",
    "PopDown",
    "PopUp",
    "VolumeShift",
    "delta_from_dict",
    "delta_to_dict",
    "deltas_from_fault_schedule",
    "group_deltas",
    "link_weight_deltas",
    "load_deltas",
    "save_deltas",
    "synthetic_deltas",
]
