"""Crash-safe persistence for the controller: checkpoints and the journal.

Two durability primitives, both built on ``repro.io.atomic_write_text``'s
write-temp / fsync / rename contract:

* :class:`CheckpointStore` — versioned, content-hashed snapshots of the
  controller's full resume state, one file per iteration
  (``checkpoint-00000042.json``).  Writes are atomic, loads verify the
  SHA-256 of the payload, and a corrupt or torn file is *skipped* (with a
  warning), falling back to the previous durable checkpoint instead of
  refusing to start.
* :class:`DurableJournal` — a :class:`repro.telemetry.RunJournal` whose
  records are appended incrementally to a JSONL file and fsync'd at each
  iteration boundary.  On resume the file is reloaded tolerantly: a torn
  trailing line (a crash mid-append) is dropped, and records past the
  last durable checkpoint's ``journal_seq`` are truncated away — the
  interrupted iteration re-runs deterministically and re-appends them,
  so the recovered journal is byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.io import atomic_write_text
from repro.telemetry import METRICS
from repro.telemetry.journal import RunJournal

logger = logging.getLogger(__name__)

PathLike = Union[str, Path]

#: Bump when the checkpoint payload schema changes incompatibly.
CHECKPOINT_VERSION = 1
_CHECKPOINT_KIND = "painter-controller-checkpoint"
_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{8})\.json$")
_JSON_COMPACT = {"sort_keys": True, "separators": (",", ":")}


class CheckpointError(ValueError):
    """Raised for malformed, mismatched, or corrupted checkpoints."""


def _payload_digest(payload: Dict[str, Any]) -> str:
    canonical = json.dumps(payload, **_JSON_COMPACT)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Checkpoint:
    """One verified checkpoint read back from disk."""

    seq: int
    payload: Dict[str, Any]
    path: Path


class CheckpointStore:
    """A directory of atomic, hash-verified controller checkpoints."""

    def __init__(self, directory: PathLike, keep: int = 3) -> None:
        if keep < 1:
            raise ValueError("keep must be at least 1")
        self.directory = Path(directory)
        self.keep = keep
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, seq: int) -> Path:
        return self.directory / f"checkpoint-{seq:08d}.json"

    def save(self, seq: int, payload: Dict[str, Any]) -> Path:
        """Durably write checkpoint ``seq``; prunes beyond ``keep``."""
        if seq < 0:
            raise ValueError("checkpoint seq must be non-negative")
        envelope = {
            "kind": _CHECKPOINT_KIND,
            "version": CHECKPOINT_VERSION,
            "seq": seq,
            "sha256": _payload_digest(payload),
            "payload": payload,
        }
        path = self.path_for(seq)
        atomic_write_text(path, json.dumps(envelope, sort_keys=True, indent=2))
        METRICS.counter("controller.checkpoints").add()
        self._prune()
        return path

    def _prune(self) -> None:
        paths = self.list_paths()
        for path in paths[: -self.keep]:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                logger.debug("could not prune %s", path, exc_info=True)

    def list_paths(self) -> List[Path]:
        """All checkpoint files, oldest first."""
        entries = []
        for path in self.directory.iterdir():
            match = _CHECKPOINT_RE.match(path.name)
            if match:
                entries.append((int(match.group(1)), path))
        return [path for _, path in sorted(entries)]

    def load(self, path: PathLike) -> Checkpoint:
        """Read and verify one checkpoint file (raises on any mismatch)."""
        path = Path(path)
        try:
            envelope = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
        if not isinstance(envelope, dict) or envelope.get("kind") != _CHECKPOINT_KIND:
            raise CheckpointError(f"{path} is not a controller checkpoint")
        if envelope.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {envelope.get('version')!r}"
            )
        payload = envelope.get("payload")
        seq = envelope.get("seq")
        if not isinstance(payload, dict) or not isinstance(seq, int):
            raise CheckpointError(f"{path} has a malformed envelope")
        if _payload_digest(payload) != envelope.get("sha256"):
            raise CheckpointError(f"{path} failed its content hash check")
        return Checkpoint(seq=seq, payload=payload, path=path)

    def latest(self) -> Optional[Checkpoint]:
        """The newest checkpoint that verifies; corrupt files are skipped.

        A crash can never tear a checkpoint (writes are atomic), but a
        disk can still rot one — recovery prefers losing an iteration to
        refusing to start, so verification failures fall back to the
        next-newest file.
        """
        for path in reversed(self.list_paths()):
            try:
                return self.load(path)
            except CheckpointError as exc:
                METRICS.counter("controller.corrupt_checkpoints").add()
                logger.warning("skipping corrupt checkpoint: %s", exc)
        return None


class DurableJournal:
    """A run journal with incremental fsync'd appends and tail recovery.

    Use :meth:`start` for a fresh run or :meth:`resume` after a crash;
    record events through :meth:`event` and make them durable with
    :meth:`sync` (one call per controller iteration).
    """

    def __init__(
        self,
        path: PathLike,
        run_name: str = "controller",
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.path = Path(path)
        self.journal = RunJournal(run_name, include_timings=False, meta=meta)
        self._written = 0
        self._fh = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "DurableJournal":
        """Begin a fresh journal file (header line, fsync'd)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._fh.write(json.dumps(self.journal.header(), **_JSON_COMPACT) + "\n")
        self._fsync()
        return self

    @classmethod
    def resume(cls, path: PathLike, journal_seq: int) -> "DurableJournal":
        """Reload the durable prefix of an interrupted run's journal.

        ``journal_seq`` is the last record sequence the newest durable
        checkpoint vouches for.  Anything after it — a torn trailing
        line, or whole records from the iteration the crash interrupted —
        is dropped, and the truncated file is atomically rewritten before
        appending resumes.
        """
        path = Path(path)
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError as exc:
            raise CheckpointError(f"unreadable journal {path}: {exc}") from exc
        if not lines:
            raise CheckpointError(f"journal {path} is empty")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"journal {path} has a corrupt header") from exc
        if not isinstance(header, dict) or header.get("kind") != "header":
            raise CheckpointError(f"journal {path} does not start with a header")
        records: List[Dict[str, Any]] = []
        dropped = 0
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                dropped += 1
                break  # torn tail: a crash interrupted an append here
            if not isinstance(record, dict) or not isinstance(record.get("seq"), int):
                dropped += 1
                break
            if record["seq"] > journal_seq:
                dropped += 1
                continue  # beyond the last durable checkpoint: re-run instead
            records.append(record)
        if dropped:
            logger.info(
                "journal recovery dropped %d record(s) past seq %d",
                dropped,
                journal_seq,
            )
            METRICS.counter("controller.journal_tail_dropped").add(dropped)
        instance = cls(
            path,
            run_name=header.get("run_name", "controller"),
            meta=header.get("meta") or None,
        )
        instance.journal.resume_from(records)
        instance._written = len(records)
        atomic_write_text(path, instance._render())
        instance._fh = open(path, "a", encoding="utf-8")
        return instance

    def _render(self) -> str:
        lines = [json.dumps(self.journal.header(), **_JSON_COMPACT)]
        lines.extend(
            json.dumps(record, **_JSON_COMPACT) for record in self.journal.records
        )
        return "\n".join(lines) + "\n"

    # -- recording ----------------------------------------------------------

    def event(self, event_type: str, **fields: Any) -> None:
        self.journal.record_event(event_type, **fields)

    @property
    def last_seq(self) -> int:
        """Sequence of the newest record (-1 while empty)."""
        return self.journal._seq - 1

    def sync(self) -> None:
        """Append every unwritten record, then flush and fsync."""
        if self._fh is None:
            raise RuntimeError("journal not started (call start() or resume())")
        for record in self.journal.records[self._written:]:
            self._fh.write(json.dumps(record, **_JSON_COMPACT) + "\n")
        self._written = len(self.journal.records)
        self._fsync()

    def tear(self) -> None:
        """Crash-injection helper: flush a deliberately torn half-record.

        Simulates the kernel persisting only part of an append before the
        process died; :meth:`resume` must drop the fragment.
        """
        if self._fh is None:
            raise RuntimeError("journal not started")
        pending = self.journal.records[self._written:]
        if pending:
            line = json.dumps(pending[0], **_JSON_COMPACT)
            self._fh.write(line[: max(1, len(line) // 2)])
        else:
            self._fh.write('{"kind":"event","event":"torn","half')
        self._fsync()

    def _fsync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            try:
                self.sync()
            finally:
                self._fh.close()
                self._fh = None
