"""The supervised control loop: deltas in, advertisements out, forever.

One :class:`PainterController` iteration:

1. **ingest** — apply the next timestamp-bucket of deltas to the world
   through the orchestrator's mutation surface (volume shifts mark the
   touched peerings dirty; peering/PoP toggles adjust the candidate set);
2. **re-solve** — :meth:`PainterOrchestrator.solve_warm`, re-evaluating
   only what the deltas dirtied (bit-identical to a cold solve), under a
   SIGALRM watchdog and retry-with-backoff; exhausted retries degrade the
   iteration to the last-known-good configuration instead of crashing;
3. **verify** — on a configurable cadence, a differential guard
   cross-checks the warm result against :meth:`solve_cold`; a mismatch
   trips a circuit breaker that pins the loop to cold solves for a
   cooldown window;
4. **apply** — install the configuration through the Traffic Manager
   (when it changed) and optionally run a measurement round
   (``execute_and_observe``) to keep learning;
5. **persist** — append the iteration's events to the
   :class:`DurableJournal` (fsync'd), then write a
   :class:`CheckpointStore` checkpoint carrying everything needed to
   resume: delta cursor, volume overrides, disabled peerings, the
   routing-model snapshot, current and last-known-good configs, and the
   journal sequence the checkpoint vouches for.

A killed controller restarts from the newest durable checkpoint, trims
the journal past that checkpoint's sequence, and re-runs the interrupted
iteration; determinism (warm == cold, seeded world) makes the resumed
run's configs and journal byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import logging
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from repro.controller.checkpoint import CheckpointStore, DurableJournal
from repro.controller.deltas import (
    Delta,
    LinkWeightShift,
    PeeringDown,
    PeeringUp,
    PopDown,
    PopUp,
    VolumeShift,
    delta_to_dict,
    group_deltas,
)
from repro.core.advertisement import AdvertisementConfig
from repro.core.benefit import realized_benefit
from repro.core.installation import install_configuration
from repro.core.orchestrator import OrchestratorConfig, PainterOrchestrator
from repro.io import (
    config_from_dict,
    config_to_dict,
    restore_routing_model,
    routing_model_to_dict,
)
from repro.telemetry import METRICS, journal_event_hook

logger = logging.getLogger(__name__)

PathLike = Union[str, Path]

_CRASH_POINTS = ("mid_journal", "before_checkpoint", "after_checkpoint")


class ControllerError(RuntimeError):
    """The loop cannot make progress (no solution and nothing to fall back to)."""


class ControllerExtension:
    """A deterministic co-processor riding the controller's iteration cycle.

    An extension observes every completed iteration (after the config is
    installed, before the iteration is persisted) and contributes its own
    resume state to the controller's checkpoint, so whatever it accumulates
    — a data plane, an SLO ledger, a simulation clock — survives a SIGKILL
    with the same byte-identical-resume guarantee the controller itself
    gives.  The contract the crash-recovery suite relies on:

    * :meth:`after_iteration` must be a pure function of the controller's
      deterministic state (iteration number, config, applied deltas) —
      wall-clock reads may feed metrics, but never journal events or
      snapshot payloads;
    * :meth:`snapshot` returns a JSON-ready dict capturing everything
      needed to resume, and :meth:`restore` is its exact inverse.
    """

    def after_iteration(
        self, iteration: int, config: AdvertisementConfig, controller: "PainterController"
    ) -> None:
        """Called once per iteration, after apply and before persist."""

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready resume state, stored inside the controller checkpoint."""
        return {}

    def restore(self, payload: Dict[str, Any]) -> None:
        """Inverse of :meth:`snapshot`, called before the loop resumes."""


class IterationTimeout(RuntimeError):
    """The watchdog cut off a hung iteration."""


@contextmanager
def _watchdog(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`IterationTimeout` if the block runs past ``seconds``.

    SIGALRM-based, so it fires even inside a wedged C extension call; a
    no-op off the main thread or on platforms without SIGALRM.
    """
    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _alarm(signum, frame):
        raise IterationTimeout(f"iteration exceeded {seconds:g}s watchdog")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass(frozen=True)
class ControllerConfig:
    """Everything that parameterizes one :class:`PainterController`."""

    #: Directory for the checkpoint store (created if missing).
    checkpoint_dir: PathLike
    #: Journal path; default ``<checkpoint_dir>/journal.jsonl``.
    journal_path: Optional[PathLike] = None
    #: Checkpoints retained on disk (older ones are pruned).
    checkpoint_keep: int = 3
    #: Warm-start re-solves (False pins every iteration to a cold solve).
    warm_start: bool = True
    #: Cold-verify the warm solver every N iterations (0 = never).
    verify_every: int = 0
    #: Cold iterations after the differential guard detects divergence.
    breaker_cooldown: int = 2
    #: Re-solve attempts after the first failure before degrading.
    max_retries: int = 2
    #: First retry delay; multiplied by ``backoff_factor`` per attempt.
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    #: Watchdog limit per solve attempt (None = no watchdog).
    iteration_timeout_s: Optional[float] = None
    #: Run a measurement round after each apply (the learning loop).
    observe: bool = True
    #: Install each changed config through the Traffic Manager.
    install: bool = True
    #: Hard iteration cap (None = run the delta stream to its end).
    max_iterations: Optional[int] = None
    run_name: str = "controller"
    #: Crash injection for recovery tests: SIGKILL self at this iteration…
    crash_at_seq: Optional[int] = None
    #: …at this point: ``mid_journal`` (torn append), ``before_checkpoint``
    #: (journal durable, checkpoint not), or ``after_checkpoint``.
    crash_point: str = "before_checkpoint"

    def __post_init__(self) -> None:
        if self.checkpoint_keep < 1:
            raise ValueError("checkpoint_keep must be at least 1")
        if self.verify_every < 0:
            raise ValueError("verify_every must be non-negative")
        if self.breaker_cooldown < 0:
            raise ValueError("breaker_cooldown must be non-negative")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_s < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff_s must be >= 0 and backoff_factor >= 1")
        if self.crash_point not in _CRASH_POINTS:
            raise ValueError(f"crash_point must be one of {_CRASH_POINTS}")

    @property
    def resolved_journal_path(self) -> Path:
        if self.journal_path is not None:
            return Path(self.journal_path)
        return Path(self.checkpoint_dir) / "journal.jsonl"


@dataclass
class ControllerResult:
    """What one :meth:`PainterController.run` produced."""

    iterations_run: int = 0
    #: Checkpoint seq resumed from, or None for a fresh start.
    resumed_from: Optional[int] = None
    final_config: Optional[AdvertisementConfig] = None
    last_known_good: Optional[AdvertisementConfig] = None
    degradations: int = 0
    divergences: int = 0
    deltas_applied: int = 0
    journal_path: Optional[Path] = None
    checkpoint_dir: Optional[Path] = None
    #: Per-iteration (iteration, mode, reconverge_s) accounting.
    timeline: List[Dict[str, Any]] = field(default_factory=list)


class PainterController:
    """Long-running supervised control loop over one scenario.

    Construct with the scenario, the orchestrator's solver parameters,
    the controller's robustness parameters, and the delta stream; then
    :meth:`run`.  Crash recovery is automatic: if the checkpoint
    directory already holds a durable checkpoint, the run resumes after
    the last completed iteration instead of starting over.
    """

    def __init__(
        self,
        scenario,
        orchestrator_config: OrchestratorConfig,
        controller_config: ControllerConfig,
        deltas: Sequence[Delta] = (),
        extension: Optional[ControllerExtension] = None,
    ) -> None:
        self._scenario = scenario
        self._cfg = controller_config
        self._extension = extension
        self._orch = PainterOrchestrator(scenario, orchestrator_config)
        self._groups = group_deltas(deltas)
        self._store = CheckpointStore(
            controller_config.checkpoint_dir, keep=controller_config.checkpoint_keep
        )
        self._journal: Optional[DurableJournal] = None
        self._volume_overrides: Dict[int, float] = {}
        self._current: Optional[AdvertisementConfig] = None
        self._last_good: Optional[AdvertisementConfig] = None
        self._cold_left = 0
        self._degradations = 0
        self._divergences = 0
        self._deltas_applied = 0
        self._staleness = 0
        #: Current intra-cloud link-weight epoch (LinkWeightShift deltas).
        #: The solve itself is deliberately unaffected: PAINTER's prefix
        #: advertisements carry no IGP signal, so an epoch shift must not
        #: perturb its ingress choices — the holds-ingress property the
        #: hot-potato scenario measures against MED-steered comparators.
        self._weight_epoch = 0

    @property
    def orchestrator(self) -> PainterOrchestrator:
        return self._orch

    @property
    def scenario(self):
        return self._scenario

    @property
    def journal(self) -> Optional[DurableJournal]:
        """The live durable journal (None outside :meth:`run`)."""
        return self._journal

    @property
    def weight_epoch(self) -> int:
        """Current intra-cloud link-weight epoch (0 until a shift arrives)."""
        return self._weight_epoch

    def close(self) -> None:
        if self._journal is not None:
            try:
                self._journal.close()
            finally:
                self._journal = None
        self._orch.close()

    def __enter__(self) -> "PainterController":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- state (de)hydration -------------------------------------------------

    def _snapshot_payload(self, iteration: int, cursor: int, journal_seq: int):
        extension = (
            self._extension.snapshot() if self._extension is not None else None
        )
        return {
            "extension": extension,
            "iteration": iteration,
            "cursor": cursor,
            "journal_seq": journal_seq,
            "volume_overrides": {
                str(ug_id): vol for ug_id, vol in self._volume_overrides.items()
            },
            "disabled_peerings": sorted(self._orch.disabled_peerings),
            "current_config": (
                config_to_dict(self._current) if self._current is not None else None
            ),
            "last_known_good": (
                config_to_dict(self._last_good)
                if self._last_good is not None
                else None
            ),
            "routing_model": routing_model_to_dict(self._orch.model),
            "cold_iterations_left": self._cold_left,
            "counters": {
                "degradations": self._degradations,
                "divergences": self._divergences,
                "deltas_applied": self._deltas_applied,
                "staleness": self._staleness,
            },
            "scenario": self._scenario.name,
            "prefix_budget": self._orch.prefix_budget,
            "weight_epoch": self._weight_epoch,
        }

    def _restore(self, payload: Dict[str, Any]) -> None:
        for ug_id, volume in payload.get("volume_overrides", {}).items():
            self._orch.apply_volume_shift(int(ug_id), float(volume))
            self._volume_overrides[int(ug_id)] = float(volume)
        for peering_id in payload.get("disabled_peerings", ()):
            self._orch.set_peering_enabled(int(peering_id), False)
        restore_routing_model(self._orch.model, payload["routing_model"])
        current = payload.get("current_config")
        self._current = config_from_dict(current) if current is not None else None
        good = payload.get("last_known_good")
        self._last_good = config_from_dict(good) if good is not None else None
        self._cold_left = int(payload.get("cold_iterations_left", 0))
        counters = payload.get("counters", {})
        self._degradations = int(counters.get("degradations", 0))
        self._divergences = int(counters.get("divergences", 0))
        self._deltas_applied = int(counters.get("deltas_applied", 0))
        self._staleness = int(counters.get("staleness", 0))
        self._weight_epoch = int(payload.get("weight_epoch", 0))
        extension = payload.get("extension")
        if self._extension is not None and extension is not None:
            self._extension.restore(extension)

    # -- delta application ----------------------------------------------------

    def _apply_delta(self, iteration: int, delta: Delta) -> None:
        orch = self._orch
        if isinstance(delta, VolumeShift):
            orch.apply_volume_shift(delta.ug_id, delta.volume)
            self._volume_overrides[delta.ug_id] = delta.volume
        elif isinstance(delta, (PeeringDown, PeeringUp)):
            orch.set_peering_enabled(
                delta.peering_id, isinstance(delta, PeeringUp)
            )
        elif isinstance(delta, (PopDown, PopUp)):
            pop = self._scenario.deployment.pop(delta.pop_name)
            up = isinstance(delta, PopUp)
            for peering in self._scenario.deployment.peerings_at(pop):
                orch.set_peering_enabled(peering.peering_id, up)
        elif isinstance(delta, LinkWeightShift):
            # Tracked and journaled only: reachability is unchanged, and
            # PAINTER's advertisements do not encode IGP cost, so there is
            # nothing for the solve to react to (see _weight_epoch).
            self._weight_epoch = delta.epoch
        else:  # pragma: no cover - the vocabulary is closed
            raise ControllerError(f"unhandled delta type {type(delta)!r}")
        self._deltas_applied += 1
        METRICS.counter("controller.deltas_applied").add()
        document = delta_to_dict(delta)
        document["delta"] = document.pop("type")  # "type" reads badly in events
        self._journal.event("delta_applied", iteration=iteration, **document)

    # -- the supervised solve -------------------------------------------------

    def _solve_supervised(self, iteration: int) -> Optional[AdvertisementConfig]:
        """Warm (or breaker-forced cold) solve with watchdog + retries.

        Returns None when every attempt failed — the caller degrades to
        the last-known-good configuration.
        """
        cfg = self._cfg
        orch = self._orch
        if not cfg.warm_start or self._cold_left > 0:
            orch.forget_memo()  # next solve_warm runs (and records) cold
        delay = cfg.backoff_s
        for attempt in range(cfg.max_retries + 1):
            try:
                with _watchdog(cfg.iteration_timeout_s):
                    return orch.solve_warm()
            except Exception as exc:
                METRICS.counter("controller.retries").add()
                logger.warning(
                    "iteration %d solve attempt %d failed: %s",
                    iteration,
                    attempt + 1,
                    exc,
                )
                if attempt == cfg.max_retries:
                    return None
                if delay > 0:
                    time.sleep(delay)
                delay *= cfg.backoff_factor
        return None  # pragma: no cover - loop always returns

    def _verify_due(self, iteration: int) -> bool:
        cfg = self._cfg
        return (
            cfg.warm_start
            and cfg.verify_every > 0
            and iteration > 0
            and iteration % cfg.verify_every == 0
        )

    # -- crash injection ------------------------------------------------------

    def _maybe_crash(self, iteration: int, point: str) -> None:
        cfg = self._cfg
        if cfg.crash_at_seq is None or iteration != cfg.crash_at_seq:
            return
        if cfg.crash_point != point:
            return
        if point == "mid_journal":
            self._journal.tear()
        logger.critical("crash injection: SIGKILL at iteration %d (%s)", iteration, point)
        os.kill(os.getpid(), signal.SIGKILL)

    # -- the loop -------------------------------------------------------------

    def run(self) -> ControllerResult:
        cfg = self._cfg
        result = ControllerResult(
            checkpoint_dir=Path(cfg.checkpoint_dir),
            journal_path=cfg.resolved_journal_path,
        )
        checkpoint = self._store.latest()
        if checkpoint is not None:
            self._restore(checkpoint.payload)
            self._journal = DurableJournal.resume(
                cfg.resolved_journal_path, checkpoint.payload["journal_seq"]
            )
            result.resumed_from = checkpoint.seq
            next_iteration = checkpoint.seq + 1
            cursor = int(checkpoint.payload["cursor"])
            METRICS.counter("controller.resumes").add()
            logger.info(
                "resuming after iteration %d (cursor %d)", checkpoint.seq, cursor
            )
        else:
            self._journal = DurableJournal(
                cfg.resolved_journal_path,
                run_name=cfg.run_name,
                meta={
                    "scenario": self._scenario.name,
                    "prefix_budget": self._orch.prefix_budget,
                },
            ).start()
            self._journal.event(
                "controller_start",
                scenario=self._scenario.name,
                prefix_budget=self._orch.prefix_budget,
                delta_groups=len(self._groups),
            )
            next_iteration = 0
            cursor = 0

        journal_event_hook.append(self._journal.journal)
        try:
            iteration = next_iteration
            while True:
                if cfg.max_iterations is not None and iteration >= cfg.max_iterations:
                    break
                if iteration > 0 and cursor >= len(self._groups):
                    break  # the stream is drained (iteration 0 bootstraps)
                cursor = self._run_iteration(iteration, cursor, result)
                iteration += 1
                result.iterations_run += 1
        finally:
            journal_event_hook.remove(self._journal.journal)
            self._journal.close()

        result.final_config = self._current
        result.last_known_good = self._last_good
        result.degradations = self._degradations
        result.divergences = self._divergences
        result.deltas_applied = self._deltas_applied
        return result

    def _run_iteration(
        self, iteration: int, cursor: int, result: ControllerResult
    ) -> int:
        """One full ingest-solve-verify-apply-persist cycle; returns the
        advanced delta cursor."""
        cfg = self._cfg
        orch = self._orch
        journal = self._journal
        started = time.perf_counter()

        # 1. ingest
        if iteration > 0:
            at_s, bucket = self._groups[cursor]
            for delta in bucket:
                self._apply_delta(iteration, delta)
            cursor += 1
        METRICS.gauge("controller.dirty_peerings").set(len(orch.dirty_peerings))

        # 2. re-solve (supervised)
        forced_cold = not cfg.warm_start or self._cold_left > 0
        config = self._solve_supervised(iteration)
        mode = "degraded"
        if config is not None:
            stats = orch.last_warm_stats
            mode = stats.mode if not forced_cold else "cold"
            if self._cold_left > 0:
                self._cold_left -= 1

            # 3. differential guard / circuit breaker
            if self._verify_due(iteration) and stats.mode == "warm":
                cold = orch.solve_cold()
                METRICS.counter("controller.verifications").add()
                if cold != config:
                    self._divergences += 1
                    METRICS.counter("controller.divergences").add()
                    logger.error(
                        "warm solve diverged from cold at iteration %d; "
                        "breaker open for %d iterations",
                        iteration,
                        cfg.breaker_cooldown,
                    )
                    journal.event(
                        "controller_breaker_open",
                        iteration=iteration,
                        cooldown=cfg.breaker_cooldown,
                    )
                    orch.forget_memo()  # the memo lied; never replay it
                    self._cold_left = cfg.breaker_cooldown
                    config = cold  # the cold result is the trusted one

        if config is None:
            # graceful degradation: hold the last-known-good config
            self._degradations += 1
            self._staleness += 1
            METRICS.counter("controller.degradations").add()
            if self._last_good is None:
                raise ControllerError(
                    f"iteration {iteration} failed with no last-known-good "
                    "configuration to fall back to"
                )
            config = self._last_good
            journal.event(
                "controller_degraded",
                iteration=iteration,
                staleness=self._staleness,
            )
        else:
            self._staleness = 0
        METRICS.gauge("controller.staleness").set(self._staleness)

        # 4. apply through the Traffic Manager + optional measurement round
        changed = self._current is None or config != self._current
        if changed and cfg.install:
            installation = install_configuration(self._scenario, config)
            METRICS.counter("controller.installs").add()
            journal.event(
                "controller_install",
                iteration=iteration,
                prefixes=len(installation.prefixes),
            )
        self._current = config
        if mode != "degraded":
            if cfg.observe:
                orch.execute_and_observe(config, iteration=iteration)
            self._last_good = config
        if self._extension is not None:
            self._extension.after_iteration(iteration, config, self)
        realized = realized_benefit(self._scenario, config)
        journal.event(
            "controller_iteration",
            iteration=iteration,
            prefixes=config.prefix_count,
            pairs=config.pair_count,
            changed=changed,
            realized_benefit=realized,
        )

        # 5. persist: journal first (it vouches for nothing beyond itself),
        # then the checkpoint that vouches for the journal prefix.
        journal.event("controller_checkpoint", iteration=iteration)
        self._maybe_crash(iteration, "mid_journal")
        journal.sync()
        self._maybe_crash(iteration, "before_checkpoint")
        self._store.save(
            iteration, self._snapshot_payload(iteration, cursor, journal.last_seq)
        )
        self._maybe_crash(iteration, "after_checkpoint")

        elapsed = time.perf_counter() - started
        METRICS.counter("controller.iterations").add()
        METRICS.gauge("controller.reconverge_s").set(elapsed)
        stats = orch.last_warm_stats
        result.timeline.append(
            {
                "iteration": iteration,
                "mode": mode,
                "reconverge_s": elapsed,
                "reused_evals": stats.reused_evals if stats else 0,
                "fresh_evals": stats.fresh_evals if stats else 0,
                "patched_evals": stats.patched_evals if stats else 0,
                "realized_benefit": realized,
            }
        )
        logger.info(
            "iteration %d done (%s, %.3fs, %d prefixes / %d pairs)",
            iteration,
            mode,
            elapsed,
            config.prefix_count,
            config.pair_count,
        )
        return cursor
