"""Typed world deltas: the controller's input vocabulary.

A delta describes one observable change of the world at a point in time:
a user group's traffic volume moving, a peering session dropping or
returning, a whole PoP going dark or coming back.  Deltas are frozen
dataclasses with a stable JSON round-trip, so a stream can be replayed
byte-identically — the property every crash-recovery guarantee of
:mod:`repro.controller` is built on.

Streams come from three places:

* :func:`synthetic_deltas` — a seeded random workload for experiments
  and soak runs;
* :func:`deltas_from_fault_schedule` — :class:`repro.faults.PopOutage`
  windows translated into paired :class:`PopDown`/:class:`PopUp` deltas;
* :func:`load_deltas` — a JSON document written by :func:`save_deltas`
  (or by hand).

:func:`group_deltas` buckets a stream by timestamp; the controller
consumes one bucket per iteration.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Tuple, Union

from repro.io import atomic_write_text

PathLike = Union[str, Path]

#: Bump when the delta-stream document schema changes incompatibly.
DELTA_STREAM_VERSION = 1
_STREAM_KIND = "painter-delta-stream"


class DeltaError(ValueError):
    """Raised for malformed delta documents or streams."""


@dataclass(frozen=True)
class Delta:
    """Base class: one world change applied at ``at_s`` seconds."""

    at_s: float

    def __post_init__(self) -> None:
        if math.isnan(self.at_s) or self.at_s < 0:
            raise DeltaError("at_s must be a non-negative number")

    def describe(self) -> str:
        return f"{type(self).__name__}@{self.at_s:g}s"


@dataclass(frozen=True)
class VolumeShift(Delta):
    """One UG's traffic volume changes to an absolute new value."""

    ug_id: int = 0
    volume: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.ug_id < 0:
            raise DeltaError("ug_id must be non-negative")
        if math.isnan(self.volume) or self.volume < 0:
            raise DeltaError("volume must be a non-negative number")

    def describe(self) -> str:
        return f"VolumeShift@{self.at_s:g}s[ug {self.ug_id} -> {self.volume:g}]"


@dataclass(frozen=True)
class PeeringDown(Delta):
    """A peering session drops (administrative or failure)."""

    peering_id: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.peering_id < 0:
            raise DeltaError("peering_id must be non-negative")


@dataclass(frozen=True)
class PeeringUp(Delta):
    """A previously dropped peering session returns."""

    peering_id: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.peering_id < 0:
            raise DeltaError("peering_id must be non-negative")


@dataclass(frozen=True)
class PopDown(Delta):
    """A whole PoP (every peering at it) goes dark."""

    pop_name: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.pop_name:
            raise DeltaError("PopDown needs a pop_name")


@dataclass(frozen=True)
class PopUp(Delta):
    """A dark PoP comes back."""

    pop_name: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.pop_name:
            raise DeltaError("PopUp needs a pop_name")


@dataclass(frozen=True)
class LinkWeightShift(Delta):
    """The cloud's intra-domain link weights move to a new epoch.

    The epoch indexes a :class:`repro.egress.coexistence.LinkWeightEpochs`
    schedule; it shifts hot-potato egress costs (and the MEDs that mirror
    them) without changing reachability, so PAINTER's advertisements are
    unaffected while MED-steered ingress choices may flip.
    """

    epoch: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.epoch < 0:
            raise DeltaError("epoch must be non-negative")

    def describe(self) -> str:
        return f"LinkWeightShift@{self.at_s:g}s[epoch {self.epoch}]"


_DELTA_TYPES: Dict[str, type] = {
    "volume_shift": VolumeShift,
    "peering_down": PeeringDown,
    "peering_up": PeeringUp,
    "pop_down": PopDown,
    "pop_up": PopUp,
    "link_weight_shift": LinkWeightShift,
}
_TYPE_NAMES = {cls: name for name, cls in _DELTA_TYPES.items()}


def delta_to_dict(delta: Delta) -> Dict[str, Any]:
    """One delta as a plain JSON-ready dict (``type`` tag + fields)."""
    name = _TYPE_NAMES.get(type(delta))
    if name is None:
        raise DeltaError(f"unknown delta type {type(delta)!r}")
    document: Dict[str, Any] = {"type": name, "at_s": delta.at_s}
    if isinstance(delta, VolumeShift):
        document["ug_id"] = delta.ug_id
        document["volume"] = delta.volume
    elif isinstance(delta, (PeeringDown, PeeringUp)):
        document["peering_id"] = delta.peering_id
    elif isinstance(delta, LinkWeightShift):
        document["epoch"] = delta.epoch
    else:
        document["pop_name"] = delta.pop_name
    return document


def delta_from_dict(document: Dict[str, Any]) -> Delta:
    """Inverse of :func:`delta_to_dict`, with validation."""
    if not isinstance(document, dict):
        raise DeltaError(f"delta must be an object, got {type(document)!r}")
    name = document.get("type")
    cls = _DELTA_TYPES.get(name)
    if cls is None:
        raise DeltaError(f"unknown delta type {name!r}")
    fields = {k: v for k, v in document.items() if k != "type"}
    try:
        return cls(**fields)
    except (TypeError, DeltaError) as exc:
        raise DeltaError(f"malformed {name} delta: {exc}") from exc


def save_deltas(deltas: Sequence[Delta], path: PathLike) -> None:
    """Persist a delta stream (crash-safe, like every ``save_*``)."""
    document = {
        "kind": _STREAM_KIND,
        "version": DELTA_STREAM_VERSION,
        "deltas": [delta_to_dict(d) for d in deltas],
    }
    atomic_write_text(path, json.dumps(document, indent=2))


def load_deltas(path: PathLike) -> List[Delta]:
    document = json.loads(Path(path).read_text())
    if not isinstance(document, dict) or document.get("kind") != _STREAM_KIND:
        raise DeltaError(f"{path!s} is not a delta stream document")
    if document.get("version") != DELTA_STREAM_VERSION:
        raise DeltaError(
            f"unsupported delta stream version {document.get('version')!r}"
        )
    deltas = document.get("deltas")
    if not isinstance(deltas, list):
        raise DeltaError("delta stream 'deltas' must be a list")
    return [delta_from_dict(d) for d in deltas]


def group_deltas(
    deltas: Iterable[Delta],
) -> List[Tuple[float, List[Delta]]]:
    """Bucket a stream by timestamp (one bucket = one controller iteration).

    Within a bucket the input order is preserved, so the application
    order — which matters for repeated shifts of the same UG — is exactly
    the stream order.
    """
    ordered = sorted(deltas, key=lambda d: d.at_s)
    groups: List[Tuple[float, List[Delta]]] = []
    for delta in ordered:
        if groups and groups[-1][0] == delta.at_s:
            groups[-1][1].append(delta)
        else:
            groups.append((delta.at_s, [delta]))
    return groups


def synthetic_deltas(
    scenario,
    *,
    iterations: int = 8,
    seed: int = 0,
    interval_s: float = 60.0,
    volume_shifts_per_iteration: int = 2,
    peering_flap_prob: float = 0.25,
    pop_outage_prob: float = 0.1,
    outage_iterations: int = 2,
) -> List[Delta]:
    """A seeded, reproducible delta workload over ``scenario``.

    Each iteration carries a couple of UG volume shifts (log-uniform
    rescaling of the *initial* volume, so the stream is a pure function
    of the seed); occasionally a peering drops (returning
    ``outage_iterations`` later) or a whole PoP goes dark the same way.
    """
    if iterations < 1:
        raise ValueError("need at least one iteration")
    rng = random.Random(seed)
    initial_volumes = {ug.ug_id: ug.volume for ug in scenario.user_groups}
    ug_ids = sorted(initial_volumes)
    peering_ids = sorted(p.peering_id for p in scenario.deployment.peerings)
    pop_names = sorted(p.name for p in scenario.deployment.pops)
    deltas: List[Delta] = []
    down_peerings: set = set()
    down_pops: set = set()
    for i in range(iterations):
        at_s = (i + 1) * interval_s
        for _ in range(volume_shifts_per_iteration):
            ug_id = rng.choice(ug_ids)
            factor = math.exp(rng.uniform(math.log(0.2), math.log(5.0)))
            deltas.append(
                VolumeShift(
                    at_s=at_s,
                    ug_id=ug_id,
                    volume=initial_volumes[ug_id] * factor,
                )
            )
        if peering_ids and rng.random() < peering_flap_prob:
            candidates = [p for p in peering_ids if p not in down_peerings]
            if candidates:
                pid = rng.choice(candidates)
                down_peerings.add(pid)
                deltas.append(PeeringDown(at_s=at_s, peering_id=pid))
                up_at = at_s + outage_iterations * interval_s
                if up_at <= iterations * interval_s:
                    deltas.append(PeeringUp(at_s=up_at, peering_id=pid))
        if pop_names and rng.random() < pop_outage_prob:
            candidates = [p for p in pop_names if p not in down_pops]
            # Never darken the last healthy PoP: an all-dark deployment
            # has no candidate peerings at all.
            if len(candidates) > 1:
                name = rng.choice(candidates)
                down_pops.add(name)
                deltas.append(PopDown(at_s=at_s, pop_name=name))
                up_at = at_s + outage_iterations * interval_s
                if up_at <= iterations * interval_s:
                    deltas.append(PopUp(at_s=up_at, pop_name=name))
    return sorted(deltas, key=lambda d: d.at_s)


def deltas_from_fault_schedule(schedule, *, interval_s: float = 1.0) -> List[Delta]:
    """Translate a :class:`repro.faults.FaultSchedule` into deltas.

    Only whole-PoP events have a controller-level meaning today:
    :class:`repro.faults.PopOutage` becomes a :class:`PopDown` at its
    start and — when the outage heals — a :class:`PopUp` at its end.
    Other event types target layers below the controller (probe loss,
    latency spikes, worker crashes) and are skipped.  ``interval_s``
    exists for symmetry with :func:`synthetic_deltas` and scales
    nothing; timestamps come straight from the schedule.
    """
    from repro.faults.events import PopOutage

    deltas: List[Delta] = []
    for event in schedule.events:
        if not isinstance(event, PopOutage):
            continue
        deltas.append(PopDown(at_s=event.start_s, pop_name=event.pop_name))
        if not math.isinf(event.end_s):
            deltas.append(PopUp(at_s=event.end_s, pop_name=event.pop_name))
    return sorted(deltas, key=lambda d: d.at_s)


def link_weight_deltas(
    n_epochs: int, *, interval_s: float = 60.0
) -> List[Delta]:
    """One :class:`LinkWeightShift` per epoch after the first.

    Epoch 0 is the initial state (no delta); epoch ``k`` (k >= 1) lands at
    ``k * interval_s``.  A single-epoch schedule yields an empty stream —
    the frozen-epoch case.
    """
    if n_epochs < 1:
        raise DeltaError("need at least one epoch")
    return [
        LinkWeightShift(at_s=epoch * interval_s, epoch=epoch)
        for epoch in range(1, n_epochs)
    ]
