"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``     — describe a scenario preset (topology, UGs, benefit headroom);
* ``solve``    — run the Advertisement Orchestrator and print (or save) the
  configuration;
* ``failover`` — run the Fig. 10 failover simulation;
* ``chaos``    — run seeded random fault storms against every steering strategy;
* ``validate`` — traceroute-validate the policy-compliance inference (§3.1);
* ``perf``     — instrumented solve/learn: counters, timers, cache hit rates;
* ``tm-bench`` — drive Zipf-weighted UG flow arrivals through the batched
  Traffic Manager data plane and report per-step steering throughput;
* ``controller`` — run the continuous-operation controller daemon over a
  delta stream with crash-safe checkpointing and warm-start re-solve;
* ``soak``     — run a simulated day of diurnal load, flash crowds, and
  rolling regional outages through the composed system (controller +
  vector data plane) with per-UG SLO accounting (``repro.soak``);
* ``communities`` — BGP action-community steering comparator (benefit and
  best-ingress coverage vs PAINTER) plus the hot-potato link-weight-epoch
  coexistence scenario (``repro.steering.communities``);
* ``optimality`` — measure Algorithm 1's greedy-vs-ILP benefit gap with
  LP-bound soundness checks (``repro.optimality``);
* ``trace``    — render the per-phase time/benefit breakdown of a JSONL run
  journal written by ``--journal`` (on solve/chaos/tm-bench).

Experiments have their own entry point: ``python -m repro.experiments``.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Iterator, List, Optional

from repro.scenario import (
    Scenario,
    azure_scenario,
    mega_scenario,
    prototype_scenario,
    tiny_scenario,
)

_PRESETS = {
    "tiny": tiny_scenario,
    "prototype": prototype_scenario,
    "azure": azure_scenario,
    "mega": mega_scenario,
}


def _scenario_from(args: argparse.Namespace) -> Scenario:
    builder = _PRESETS[args.preset]
    kwargs = {"seed": args.seed}
    if args.ugs is not None:
        kwargs["n_ugs"] = args.ugs
    return builder(**kwargs)


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset", choices=sorted(_PRESETS), default="prototype",
        help="scenario preset (default: prototype)",
    )
    parser.add_argument("--seed", type=int, default=0, help="world seed")
    parser.add_argument("--ugs", type=int, default=None, help="user-group count")


@contextlib.contextmanager
def _maybe_journal(args: argparse.Namespace, run_name: str) -> Iterator[None]:
    """Trace the wrapped command into ``--journal PATH`` when requested.

    CLI journals include wall/CPU timings so ``repro trace`` can render a
    real time breakdown (library callers who need byte-stable journals use
    :func:`repro.telemetry.telemetry_session` directly with its default).
    """
    path = getattr(args, "journal", None)
    if not path:
        yield
        return
    from repro.telemetry import telemetry_session

    with telemetry_session(run_name, include_timings=True) as journal:
        yield
    journal.write(path)
    print(f"wrote run journal to {path} ({len(journal)} records)")


def cmd_info(args: argparse.Namespace) -> int:
    scenario = _scenario_from(args)
    print(scenario.describe())
    possible = scenario.total_possible_benefit()
    print(f"total possible benefit (volume-weighted ms): {possible:.2f}")
    stats = scenario.catalog.coverage_stats()
    print(
        f"policy-compliant ingresses per UG: "
        f"min {stats['min']:.0f} / mean {stats['mean']:.1f} / max {stats['max']:.0f}"
    )
    return 0


def cmd_solve(args: argparse.Namespace) -> int:
    from repro.core.cost import configuration_cost
    from repro.core.orchestrator import OrchestratorConfig, PainterOrchestrator

    scenario = _scenario_from(args)
    orchestrator = PainterOrchestrator(
        scenario,
        OrchestratorConfig(
            prefix_budget=args.budget,
            d_reuse_km=args.d_reuse,
            backend=args.backend,
            workers=args.workers,
            worker_timeout_s=args.worker_timeout,
        ),
    )
    try:
        with _maybe_journal(args, "solve"):
            result = orchestrator.learn(iterations=args.iterations)
    finally:
        orchestrator.close()
    config = result.final_config
    possible = scenario.total_possible_benefit()
    print(scenario.describe())
    for record in result.iterations:
        print(
            f"iter {record.iteration}: realized "
            f"{100 * record.realized_benefit / possible:.1f}% of possible "
            f"({record.new_preferences} preferences learned)"
        )
    print(f"final: {config}")
    cost = configuration_cost(config)
    print(
        f"cost: {cost.prefixes} /24s (~${cost.address_cost_usd:,.0f}), "
        f"{cost.announcements} announcements"
    )
    if args.output:
        from repro.io import save_config

        save_config(config, args.output)
        print(f"saved configuration to {args.output}")
    return 0


def cmd_failover(args: argparse.Namespace) -> int:
    from repro.experiments.fig10 import run_fig10

    print(run_fig10().render())
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments.chaos import run_chaos

    with _maybe_journal(args, "chaos"):
        result = run_chaos(
            storms=args.storms,
            duration_s=args.duration,
            seed=args.seed,
            intensity=args.intensity,
        )
    print(result.render())
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.measurement.traceroute import TracerouteConfig, validate_policy_compliance

    scenario = _scenario_from(args)
    report = validate_policy_compliance(
        scenario, TracerouteConfig(seed=args.seed, misattribution_prob=args.misattribution)
    )
    print(
        f"traceroutes: {report.total}, unresolvable: {report.unresolvable}, "
        f"violations: {report.violations} "
        f"({100 * report.violation_rate:.1f}% — paper observed 4%)"
    )
    return 0


#: Experiments cheap enough for the default `report` invocation.
_QUICK_EXPERIMENTS = (
    "fig3", "fig8", "fig10", "fig11a", "fig11b", "fig12", "chaos",
    "ext_congestion", "ext_multipath", "ext_ipv6", "ext_failover_sweep",
)


def cmd_audit(args: argparse.Namespace) -> int:
    from repro.audit import audit_scenario

    scenario = _scenario_from(args)
    report = audit_scenario(scenario)
    print(report.render())
    return 0 if report.passed else 1


def cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.reporting import run_and_report

    requested = args.experiments or list(_QUICK_EXPERIMENTS)
    markdown = run_and_report(requested, jobs=args.jobs)
    Path(args.output).write_text(markdown)
    print(f"wrote {args.output} covering: {', '.join(requested)}")
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    """Run an instrumented solve/learn and print the perf counters."""
    from repro.core.orchestrator import OrchestratorConfig, PainterOrchestrator
    from repro.perf import PERF

    PERF.reset()
    scenario = _scenario_from(args)
    orchestrator = PainterOrchestrator(
        scenario,
        OrchestratorConfig(
            prefix_budget=args.budget, d_reuse_km=args.d_reuse, backend=args.backend
        ),
    )
    if args.iterations > 0:
        orchestrator.learn(iterations=args.iterations)
    else:
        orchestrator.solve()
    print(scenario.describe())
    print()
    print(PERF.render())
    lazy = PERF.counter("orchestrator.marginal_evals").value
    naive = PERF.counter("orchestrator.naive_marginal_evals").value
    if naive:
        print()
        print(
            f"laziness: {lazy} marginal evaluations vs {naive} for a naive "
            f"full-re-evaluation greedy ({100 * lazy / naive:.1f}%)"
        )
    return 0


def cmd_tm_bench(args: argparse.Namespace) -> int:
    """Benchmark the Traffic Manager data plane under UG flow arrivals."""
    from repro.experiments.replay import ReplayConfig, run_traffic_replay
    from repro.perf import PERF

    PERF.reset()
    steps = args.steps
    arrivals = max(1, args.flows // steps)
    with _maybe_journal(args, "tm-bench"):
        replay = run_traffic_replay(
            ReplayConfig(
                preset=args.preset,
                seed=args.seed,
                arrivals_per_step=arrivals,
                steps=steps,
                prefix_budget=args.budget,
                plane=args.plane,
                fail_step=args.fail_step,
            )
        )
    print(replay.to_result().render())
    print()
    print(
        f"plane={args.plane}: {replay.total_admitted:,} flows admitted over "
        f"{steps} steps, peak {replay.peak_live_flows:,} concurrent, "
        f"min {replay.min_flows_per_s / 1e3:,.0f} kflows/s per step"
    )
    if replay.flows_remapped:
        print(
            f"failover re-mapped {replay.flows_remapped:,} flows off "
            f"{replay.failed_prefix}"
        )
    if args.show_perf:
        print()
        print(PERF.render())
    return 0


def cmd_controller(args: argparse.Namespace) -> int:
    """Run the continuous-operation controller daemon over a delta stream."""
    from repro.controller import (
        ControllerConfig,
        PainterController,
        load_deltas,
        synthetic_deltas,
    )
    from repro.core.orchestrator import OrchestratorConfig

    scenario = _scenario_from(args)
    if args.deltas:
        deltas = load_deltas(args.deltas)
    else:
        deltas = synthetic_deltas(
            scenario, iterations=args.synthetic, seed=args.delta_seed
        )
    controller = PainterController(
        scenario,
        OrchestratorConfig(prefix_budget=args.budget, d_reuse_km=args.d_reuse),
        ControllerConfig(
            checkpoint_dir=args.checkpoint_dir,
            journal_path=args.journal,
            checkpoint_keep=args.keep,
            warm_start=not args.cold,
            verify_every=args.verify_every,
            max_retries=args.max_retries,
            iteration_timeout_s=args.iteration_timeout,
            max_iterations=args.max_iterations,
            crash_at_seq=args.crash_at,
            crash_point=args.crash_point,
        ),
        deltas,
    )
    try:
        result = controller.run()
    finally:
        controller.close()
    if result.resumed_from is not None:
        print(f"resumed from checkpoint {result.resumed_from}")
    for entry in result.timeline:
        print(
            f"iter {entry['iteration']}: {entry['mode']} "
            f"({entry['reconverge_s'] * 1000:.1f} ms)"
        )
    print(
        f"ran {result.iterations_run} iterations, "
        f"{result.deltas_applied} deltas applied, "
        f"{result.degradations} degradations, {result.divergences} divergences"
    )
    if result.final_config is not None:
        print(f"final: {result.final_config}")
        if args.output:
            from repro.io import save_config

            save_config(result.final_config, args.output)
            print(f"saved configuration to {args.output}")
    print(f"checkpoints in {result.checkpoint_dir}, journal at {result.journal_path}")
    return 0


def cmd_soak(args: argparse.Namespace) -> int:
    """Run (or resume) a soak over a simulated day with SLO accounting."""
    from repro.soak import SoakConfig, run_soak

    cfg = SoakConfig(
        preset=args.preset,
        seed=args.seed,
        windows=args.windows,
        window_s=args.day / args.windows,
        arrivals_per_window=args.arrivals,
        flow_lifetime_windows=args.flow_lifetime,
        prefix_budget=args.budget,
        plane=args.plane,
        shifts_per_window=args.shifts,
        storm_regions=args.storm_regions,
        flash_crowds=args.flash_crowds,
        admit_cap=args.admit_cap,
        failover_budget=args.failover_budget,
        verify_every=args.verify_every,
        observe=args.observe,
        prom_path=args.prom,
        crash_at=args.crash_at,
        crash_point=args.crash_point,
        stop_after=args.stop_after,
    )
    result = run_soak(cfg, args.checkpoint_dir)
    if result.controller.resumed_from is not None:
        print(f"resumed from checkpoint {result.controller.resumed_from}")
    for row in result.ledger.window_rows:
        print(
            f"window {row['window']}: offered {row['offered']:,}, "
            f"served {row['served']:,}, unroutable {row['unroutable']:,}, "
            f"shed {row['shed']:,}, down UGs {row['down_ugs']}, "
            f"remaps {row['remaps']}"
        )
    summary = result.summary()
    p99 = summary["fleet_p99_ms"]
    print(
        f"{summary['windows']} windows over a {cfg.day_s:g}s simulated day: "
        f"{summary['offered']:,} flows offered, "
        f"fleet p99 {'n/a' if p99 is None else f'{p99:.1f} ms'}, "
        f"{summary['total_downtime_s']:g}s UG-downtime, "
        f"{summary['switches']} destination switches "
        f"({summary['budget_violations']} over budget)"
    )
    print(
        f"data plane ({cfg.plane}): {result.flows_per_s:,.0f} flows/s, "
        f"{result.flows_moved:,} flows failed over"
    )
    print(f"ledger fingerprint {result.ledger.fingerprint()}")
    if args.slo_out:
        result.write_slo_report(args.slo_out)
        print(f"wrote SLO report to {args.slo_out}")
    if args.report:
        from pathlib import Path

        from repro.experiments.harness import ExperimentResult
        from repro.reporting import result_to_markdown, soak_summary

        table = ExperimentResult(
            experiment_id="soak",
            title="Soak: simulated day with diurnal load, storms, SLO accounting",
            columns=[
                "window", "offered", "served", "unroutable", "shed",
                "down_ugs", "switches", "remaps", "accounting_errors",
            ],
        )
        for row in result.ledger.window_rows:
            table.add_row(*(row[str(c)] for c in table.columns))
        for note in result.notes:
            table.add_note(note)
        markdown = result_to_markdown(table) + "\n" + soak_summary(table)
        Path(args.report).write_text(markdown)
        print(f"wrote soak report to {args.report}")
    errors = summary["accounting_errors"]
    if errors:
        print(f"SLO ACCOUNTING ERRORS: {errors}", file=sys.stderr)
        return 1
    return 0


def cmd_communities(args: argparse.Namespace) -> int:
    """Community-steering comparator and hot-potato coexistence scenario."""
    import json
    from pathlib import Path

    from repro.egress.coexistence import evaluate_coexistence
    from repro.experiments.fig6 import painter_budget_configs
    from repro.experiments.hotpotato import run_hot_potato
    from repro.steering.communities import (
        communities_benefit,
        coverage_of_best_ingress,
        solve_communities,
    )

    scenario = _scenario_from(args)
    payload: dict = {"preset": args.preset, "seed": args.seed, "budget": args.budget}

    if args.check_frozen:
        # The CI gate: with a frozen (single-epoch) weight schedule, both
        # modes must show exactly zero oscillations and the PAINTER row must
        # be bit-identical to the additive coexistence evaluation.
        result = run_hot_potato(
            scenario=scenario, budget=args.budget, n_epochs=1, seed=args.seed
        )
        config = painter_budget_configs(scenario, [args.budget])[args.budget]
        expected = evaluate_coexistence(scenario, config).combined_gain
        painter_rows = [row for row in result.rows if row[0] == "painter"]
        oscillations = sum(row[2] for row in result.rows)
        actual = painter_rows[0][3]
        ok = oscillations == 0 and actual == expected
        payload["check_frozen"] = {
            "oscillations": oscillations,
            "painter_gain": actual,
            "coexistence_gain": expected,
            "bit_identical": actual == expected,
            "passed": ok,
        }
        print(
            f"frozen-epoch check: oscillations={oscillations}, "
            f"painter gain {actual!r} vs coexistence {expected!r} -> "
            f"{'OK' if ok else 'VIOLATION'}"
        )
        if args.json:
            Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
            print(f"wrote {args.json}")
        return 0 if ok else 1

    solution = solve_communities(scenario, args.budget)
    total_possible = scenario.total_possible_benefit()
    benefit = communities_benefit(scenario, solution.announcements)
    coverage = coverage_of_best_ingress(scenario, solution.announcements)
    print(scenario.describe())
    print(
        f"communities: {len(solution.announcements)} announcement groups "
        f"(budget {args.budget})"
    )
    print(
        f"benefit: {benefit:.2f} weighted ms "
        f"({100 * benefit / total_possible:.1f}% of possible), "
        f"best-ingress coverage {100 * coverage:.1f}% of volume"
    )
    payload["groups"] = len(solution.announcements)
    payload["benefit_frac"] = benefit / total_possible
    payload["coverage_frac"] = coverage

    result = run_hot_potato(
        scenario=scenario,
        budget=args.budget,
        n_epochs=args.epochs,
        amplitude=args.amplitude,
        seed=args.seed,
    )
    print()
    print(result.render())
    payload["hotpotato"] = {
        "columns": list(result.columns),
        "rows": [list(row) for row in result.rows],
        "notes": list(result.notes),
    }
    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


def cmd_optimality(args: argparse.Namespace) -> int:
    """Greedy-vs-ILP optimality gap and LP-bound soundness check."""
    from repro.experiments.optimality import run_greedy_gap
    from repro.optimality import DEFAULT_REL_TOL

    scenario = _scenario_from(args) if args.preset is not None else None
    try:
        result = run_greedy_gap(
            scenario=scenario,
            budgets=tuple(args.budget) if args.budget else (4, 8),
            backend=args.backend,
            time_limit_s=args.time_limit,
            run_orchestrator=not args.matrix_greedy,
        )
    except AssertionError as exc:
        print(f"SOUNDNESS VIOLATION: {exc}", file=sys.stderr)
        return 1
    print(result.render())
    if args.output:
        import json
        from pathlib import Path

        payload = {
            "experiment_id": result.experiment_id,
            "title": result.title,
            "columns": list(result.columns),
            "rows": [list(row) for row in result.rows],
            "notes": list(result.notes),
            "rel_tol": DEFAULT_REL_TOL,
        }
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote gap table to {args.output}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Render the per-phase breakdown of a run journal."""
    from repro.telemetry import journal_to_result, load_journal

    try:
        journal = load_journal(args.journal)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(journal_to_result(journal).render())
    if args.metrics:
        from repro.telemetry import METRICS

        print()
        print(METRICS.to_prometheus(), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="PAINTER reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="describe a scenario preset")
    _add_scenario_args(info)
    info.set_defaults(func=cmd_info)

    solve = sub.add_parser("solve", help="run the Advertisement Orchestrator")
    _add_scenario_args(solve)
    solve.add_argument("--budget", type=int, default=10, help="prefix budget")
    solve.add_argument("--iterations", type=int, default=3, help="learning iterations")
    solve.add_argument("--d-reuse", type=float, default=3000.0, help="D_reuse (km)")
    solve.add_argument(
        "--backend", type=str, default="auto",
        help="compute backend for marginal evaluation (auto/numpy/numba/cupy; "
        "all backends produce bit-identical results, unavailable ones fall "
        "back to numpy with a warning)",
    )
    solve.add_argument(
        "--workers", type=int, default=0,
        help="shard each solve across N fork workers (bit-identical results; "
        "0 = serial)",
    )
    solve.add_argument(
        "--worker-timeout", type=float, default=None,
        help="seconds to wait on a worker reply before breaking the pool "
        "and falling back serial (default: no timeout)",
    )
    solve.add_argument("--output", type=str, default=None, help="save config JSON here")
    solve.add_argument(
        "--journal", type=str, default=None,
        help="write a JSONL run journal here (render with `repro trace`)",
    )
    solve.set_defaults(func=cmd_solve)

    failover = sub.add_parser("failover", help="run the Fig. 10 failover simulation")
    failover.set_defaults(func=cmd_failover)

    chaos = sub.add_parser("chaos", help="run seeded random fault storms")
    chaos.add_argument("--storms", type=int, default=5, help="number of storms")
    chaos.add_argument("--duration", type=float, default=130.0, help="storm length (s)")
    chaos.add_argument("--seed", type=int, default=0, help="storm seed")
    chaos.add_argument(
        "--intensity", type=float, default=1.0,
        help="expected fault-event count multiplier",
    )
    chaos.add_argument(
        "--journal", type=str, default=None,
        help="write a JSONL run journal here (render with `repro trace`)",
    )
    chaos.set_defaults(func=cmd_chaos)

    validate = sub.add_parser("validate", help="traceroute-validate compliance inference")
    _add_scenario_args(validate)
    validate.add_argument(
        "--misattribution", type=float, default=0.015,
        help="hop IP-to-AS misattribution probability",
    )
    validate.set_defaults(func=cmd_validate)

    audit = sub.add_parser("audit", help="self-check a scenario's structural invariants")
    _add_scenario_args(audit)
    audit.set_defaults(func=cmd_audit)

    report = sub.add_parser("report", help="run experiments and write a Markdown report")
    report.add_argument(
        "experiments", nargs="*", help="experiment ids (default: the quick ones)"
    )
    report.add_argument("--output", type=str, default="report.md", help="output path")
    report.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the experiments (1 = serial)",
    )
    report.set_defaults(func=cmd_report)

    perf = sub.add_parser(
        "perf", help="run an instrumented solve/learn and print perf counters"
    )
    _add_scenario_args(perf)
    perf.add_argument("--budget", type=int, default=10, help="prefix budget")
    perf.add_argument(
        "--iterations", type=int, default=2,
        help="learning iterations (0 = a single solve pass)",
    )
    perf.add_argument("--d-reuse", type=float, default=3000.0, help="D_reuse (km)")
    perf.add_argument(
        "--backend", type=str, default="auto",
        help="compute backend for marginal evaluation (auto/numpy/numba/cupy)",
    )
    perf.set_defaults(func=cmd_perf)

    tm_bench = sub.add_parser(
        "tm-bench",
        help="benchmark the batched Traffic Manager data plane",
    )
    tm_bench.add_argument(
        "--preset", choices=sorted(_PRESETS), default="prototype",
        help="scenario preset (default: prototype)",
    )
    tm_bench.add_argument("--seed", type=int, default=0, help="world seed")
    tm_bench.add_argument(
        "--flows", type=int, default=1_000_000,
        help="total flow arrivals across the run (default: 1M)",
    )
    tm_bench.add_argument("--steps", type=int, default=5, help="measurement rounds")
    tm_bench.add_argument("--budget", type=int, default=4, help="prefix budget")
    tm_bench.add_argument(
        "--plane", choices=("vector", "scalar"), default="vector",
        help="data-plane implementation (default: vector)",
    )
    tm_bench.add_argument(
        "--fail-step", type=int, default=None,
        help="kill the hottest prefix at this step (0-based)",
    )
    tm_bench.add_argument(
        "--show-perf", action="store_true", help="print the perf registry after"
    )
    tm_bench.add_argument(
        "--journal", type=str, default=None,
        help="write a JSONL run journal here (render with `repro trace`)",
    )
    tm_bench.set_defaults(func=cmd_tm_bench)

    controller = sub.add_parser(
        "controller",
        help="run the continuous-operation controller daemon (crash-safe, "
        "warm-start re-solve)",
    )
    _add_scenario_args(controller)
    controller.add_argument("--budget", type=int, default=4, help="prefix budget")
    controller.add_argument("--d-reuse", type=float, default=3000.0, help="D_reuse (km)")
    controller.add_argument(
        "--checkpoint-dir", required=True,
        help="checkpoint directory (an existing checkpoint resumes the run)",
    )
    controller.add_argument(
        "--journal", type=str, default=None,
        help="journal path (default: <checkpoint-dir>/journal.jsonl)",
    )
    controller.add_argument(
        "--keep", type=int, default=3, help="checkpoints retained on disk"
    )
    controller.add_argument(
        "--deltas", type=str, default=None,
        help="delta stream JSON (from repro.controller.save_deltas)",
    )
    controller.add_argument(
        "--synthetic", type=int, default=8,
        help="iterations of seeded synthetic deltas when --deltas is absent",
    )
    controller.add_argument(
        "--delta-seed", type=int, default=0, help="synthetic delta stream seed"
    )
    controller.add_argument(
        "--cold", action="store_true",
        help="disable warm-starting (every iteration re-solves from scratch)",
    )
    controller.add_argument(
        "--verify-every", type=int, default=0,
        help="cold-verify the warm solver every N iterations (0 = never)",
    )
    controller.add_argument(
        "--max-retries", type=int, default=2,
        help="re-solve attempts before degrading to last-known-good",
    )
    controller.add_argument(
        "--iteration-timeout", type=float, default=None,
        help="SIGALRM watchdog seconds per solve attempt",
    )
    controller.add_argument(
        "--max-iterations", type=int, default=None, help="hard iteration cap"
    )
    controller.add_argument(
        "--output", type=str, default=None, help="save the final config JSON here"
    )
    controller.add_argument(
        "--crash-at", type=int, default=None,
        help="crash injection: SIGKILL self at this iteration (testing)",
    )
    controller.add_argument(
        "--crash-point", default="before_checkpoint",
        choices=("mid_journal", "before_checkpoint", "after_checkpoint"),
        help="where in the iteration the injected crash fires",
    )
    controller.set_defaults(func=cmd_controller)

    soak = sub.add_parser(
        "soak",
        help="run a simulated day of diurnal load + storms through the "
        "composed system with per-UG SLO accounting",
    )
    soak.add_argument(
        "--preset", choices=sorted(_PRESETS), default="tiny",
        help="scenario preset (default: tiny)",
    )
    soak.add_argument("--seed", type=int, default=0, help="world + load seed")
    soak.add_argument(
        "--windows", type=int, default=24,
        help="simulated windows (= controller iterations)",
    )
    soak.add_argument(
        "--day", type=float, default=86_400.0,
        help="simulated day length in seconds (split across windows)",
    )
    soak.add_argument(
        "--arrivals", type=int, default=10_000,
        help="base new-flow arrivals per window (diurnally scaled)",
    )
    soak.add_argument(
        "--flow-lifetime", type=int, default=2,
        help="windows a flow lives before ending (0 = never)",
    )
    soak.add_argument("--budget", type=int, default=4, help="prefix budget")
    soak.add_argument(
        "--plane", choices=("vector", "scalar"), default="vector",
        help="data-plane implementation (default: vector)",
    )
    soak.add_argument(
        "--shifts", type=int, default=8,
        help="top-mover VolumeShifts per window boundary",
    )
    soak.add_argument(
        "--storm-regions", type=int, default=1,
        help="regions hit by the rolling outage storm (0 = calm)",
    )
    soak.add_argument(
        "--flash-crowds", type=int, default=1, help="flash-crowd events"
    )
    soak.add_argument(
        "--admit-cap", type=int, default=None,
        help="per-window admission cap; overflow is shed",
    )
    soak.add_argument(
        "--failover-budget", type=int, default=8,
        help="destination switches per UG the SLO budget allows",
    )
    soak.add_argument(
        "--verify-every", type=int, default=0,
        help="cold-verify the warm solver every N iterations (0 = never)",
    )
    soak.add_argument(
        "--observe", action="store_true",
        help="run the orchestrator's measurement round each iteration",
    )
    soak.add_argument(
        "--checkpoint-dir", required=True,
        help="checkpoint directory (an existing checkpoint resumes the soak)",
    )
    soak.add_argument(
        "--slo-out", type=str, default=None,
        help="write the SLO ledger + digest JSON here",
    )
    soak.add_argument(
        "--report", type=str, default=None,
        help="write a Markdown SLO report here",
    )
    soak.add_argument(
        "--prom", type=str, default=None,
        help="write the Prometheus metrics textfile here every window",
    )
    soak.add_argument(
        "--stop-after", type=int, default=None,
        help="stop after N iterations (resume later from the checkpoint)",
    )
    soak.add_argument(
        "--crash-at", type=int, default=None,
        help="crash injection: SIGKILL self at this iteration (testing)",
    )
    soak.add_argument(
        "--crash-point", default="before_checkpoint",
        choices=("mid_journal", "before_checkpoint", "after_checkpoint"),
        help="where in the iteration the injected crash fires",
    )
    soak.set_defaults(func=cmd_soak)

    communities = sub.add_parser(
        "communities",
        help="community-steering comparator (benefit + best-ingress coverage) "
        "and the hot-potato link-weight-epoch scenario",
    )
    _add_scenario_args(communities)
    communities.add_argument(
        "--budget", type=int, default=8, help="announcement-group budget"
    )
    communities.add_argument(
        "--epochs", type=int, default=4,
        help="link-weight epochs for the hot-potato scenario",
    )
    communities.add_argument(
        "--amplitude", type=float, default=0.3,
        help="IGP weight swing amplitude per epoch (fraction)",
    )
    communities.add_argument(
        "--check-frozen", action="store_true",
        help="CI gate: verify a frozen (single-epoch) schedule yields zero "
        "oscillations and bit-identical PAINTER coexistence gain; exit 1 "
        "on violation",
    )
    communities.add_argument(
        "--json", type=str, default=None, help="write results JSON here"
    )
    communities.set_defaults(func=cmd_communities)

    optimality = sub.add_parser(
        "optimality",
        help="measure Algorithm 1's optimality gap against the exact ILP "
        "and LP upper bound",
    )
    optimality.add_argument(
        "--preset", choices=sorted(_PRESETS), default=None,
        help="sweep one preset only (default: the built-in size ladder)",
    )
    optimality.add_argument("--seed", type=int, default=0, help="world seed")
    optimality.add_argument("--ugs", type=int, default=None, help="user-group count")
    optimality.add_argument(
        "--budget", type=int, action="append", default=None,
        help="prefix budget to sweep (repeatable; default: 4 and 8)",
    )
    optimality.add_argument(
        "--backend", choices=("auto", "scipy", "pulp", "brute"), default="auto",
        help="ILP backend (default: auto — scipy, then pulp, then brute)",
    )
    optimality.add_argument(
        "--time-limit", type=float, default=120.0,
        help="per-ILP-solve time limit in seconds",
    )
    optimality.add_argument(
        "--matrix-greedy", action="store_true",
        help="use the fast matrix-level greedy mirror instead of running "
        "the full Algorithm-1 orchestrator",
    )
    optimality.add_argument(
        "--output", type=str, default=None, help="save the gap table JSON here"
    )
    optimality.set_defaults(func=cmd_optimality)

    trace = sub.add_parser(
        "trace", help="render the per-phase breakdown of a run journal"
    )
    trace.add_argument("journal", help="path to a JSONL journal from --journal")
    trace.add_argument(
        "--metrics", action="store_true",
        help="also dump the in-process metrics registry (Prometheus text)",
    )
    trace.set_defaults(func=cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
