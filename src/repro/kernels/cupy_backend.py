"""GPU kernels via cupy (optional dependency, explicit opt-in).

A faithful device-side transcription of the numpy reference expressions:
every operation is an elementwise IEEE-754 double op, so each returned
element is bit-identical to the reference (CUDA double arithmetic is
IEEE-conformant and cupy's ufuncs do not contract into FMAs for these
expressions).  Inputs are copied host→device per call and results back;
that only pays off on very large worlds, which is why ``"auto"`` never
selects cupy — pass ``backend="cupy"`` explicitly.

All reductions still happen on the host over the returned arrays, exactly
as with every other backend (see :mod:`repro.kernels.api`).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels.api import BackendUnavailable, ComputeBackend, register_backend

try:  # pragma: no cover - exercised only where cupy + a device exist
    import cupy

    HAVE_CUPY = True
except ImportError:  # pragma: no cover - CPU-only environments
    cupy = None
    HAVE_CUPY = False


class CupyBackend(ComputeBackend):
    """cupy-evaluated kernels with host↔device copies at the boundary."""

    name = "cupy"

    def __init__(self) -> None:
        if not HAVE_CUPY:
            raise BackendUnavailable("cupy is not installed")
        super().__init__()

    def warmup(self) -> None:  # pragma: no cover - needs a CUDA device
        """Touch the device and compile both elementwise kernels.

        Raises (→ recorded numpy fallback) when no CUDA runtime/device is
        usable even though cupy imports.
        """
        cupy.cuda.runtime.getDeviceCount()
        one = np.array([1.0])
        zero = np.array([0.0])
        self.initial_gains(one, one)
        self.refresh_contrib(one, one, one, one, zero, zero, one, one, 1.0)

    def initial_gains(
        self, base: np.ndarray, lat: np.ndarray
    ) -> np.ndarray:  # pragma: no cover - needs a CUDA device
        b = cupy.asarray(base, dtype=cupy.float64)
        l = cupy.asarray(lat, dtype=cupy.float64)
        return cupy.asnumpy(cupy.fmax(b - l, 0.0))

    def refresh_contrib(
        self,
        dist: np.ndarray,
        lat: np.ndarray,
        vol: np.ndarray,
        d0: np.ndarray,
        csum: np.ndarray,
        ccnt: np.ndarray,
        ob: np.ndarray,
        base: np.ndarray,
        d_reuse: float,
    ) -> Tuple[np.ndarray, np.ndarray]:  # pragma: no cover - needs a device
        cp = cupy
        dist_d = cp.asarray(dist, dtype=cp.float64)
        lat_d = cp.asarray(lat, dtype=cp.float64)
        vol_d = cp.asarray(vol, dtype=cp.float64)
        d0_d = cp.asarray(d0, dtype=cp.float64)
        csum_d = cp.asarray(csum, dtype=cp.float64)
        ccnt_d = cp.asarray(ccnt, dtype=cp.float64)
        ob_d = cp.asarray(ob, dtype=cp.float64)
        base_d = cp.asarray(base, dtype=cp.float64)
        shrink = (dist_d < d0_d) & cp.isfinite(d0_d)
        limit = cp.where(dist_d < d0_d, dist_d, d0_d) + d_reuse
        measurable = ~cp.isnan(lat_d)
        add = (dist_d <= limit) & measurable
        new_cnt = ccnt_d + add
        new_sum = csum_d + cp.where(add, lat_d, 0.0)
        new_p = new_sum / cp.maximum(new_cnt, 1)
        new_best = cp.where(new_cnt > 0, cp.minimum(base_d, new_p), ob_d)
        contrib = vol_d * (ob_d - new_best)
        contrib = cp.where(shrink, 0.0, contrib)
        return cp.asnumpy(contrib), cp.asnumpy(shrink)


register_backend("cupy", CupyBackend, probe=lambda: HAVE_CUPY)
