"""JIT-compiled kernels via numba ``@njit`` (optional dependency).

The jitted loops are scalar transcriptions of the numpy reference
expressions in :mod:`repro.kernels.numpy_backend`, compiled with
``fastmath=False`` so every operation is a plain IEEE-754 double op in the
same order numpy's ufuncs apply it — no FMA contraction, no reassociation.
That makes each output *element* bit-identical to the reference, and since
all reductions stay on the host (see :mod:`repro.kernels.api`), whole
solves are bit-identical too.

Scalar-equivalence notes (each line mirrors a reference ufunc):

* ``np.where(dist < d0, dist, d0)`` → ``di if di < d0i else d0i``;
* ``np.maximum(new_cnt, 1)`` → ``new_cnt if new_cnt > 1.0 else 1.0``
  (counts are non-negative integers stored as doubles, so the ``==``
  tie returns ``1.0`` either way);
* ``np.minimum(base, new_p)`` → ``bi if bi < new_p else new_p`` (neither
  operand is NaN on this path: latencies fold through the measurability
  mask before entering ``new_sum``);
* ``np.fmax(base - lat, 0.0)`` → ``g if g > 0.0 else 0.0`` (a NaN gain
  fails the comparison and yields the reference's ``0.0``).

Importing this module with numba missing raises
:class:`repro.kernels.api.BackendUnavailable` from the factory;
compilation failures surface in :meth:`NumbaBackend.warmup` where
``resolve_backend`` converts them into a recorded numpy fallback.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels.api import BackendUnavailable, ComputeBackend, register_backend

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the CI numpy-only matrix leg
    numba = None
    HAVE_NUMBA = False

_COMPILED = None


def _compile():
    """Build (once) and return the jitted kernel pair."""
    global _COMPILED
    if _COMPILED is not None:
        return _COMPILED
    if not HAVE_NUMBA:
        raise BackendUnavailable("numba is not installed")

    @numba.njit(cache=True, fastmath=False)
    def initial_gains(base, lat):  # pragma: no cover - jitted
        n = base.shape[0]
        out = np.empty(n, dtype=np.float64)
        for i in range(n):
            g = base[i] - lat[i]
            out[i] = g if g > 0.0 else 0.0
        return out

    @numba.njit(cache=True, fastmath=False)
    def refresh_contrib(
        dist, lat, vol, d0, csum, ccnt, ob, base, d_reuse
    ):  # pragma: no cover - jitted
        n = dist.shape[0]
        contrib = np.empty(n, dtype=np.float64)
        shrink = np.empty(n, dtype=np.bool_)
        for i in range(n):
            di = dist[i]
            d0i = d0[i]
            if di < d0i and np.isfinite(d0i):
                # Reuse window shrinks: the caller recomputes this row
                # exactly; the reference zeroes its contribution.
                shrink[i] = True
                contrib[i] = 0.0
                continue
            shrink[i] = False
            limit = (di if di < d0i else d0i) + d_reuse
            li = lat[i]
            add = di <= limit and not np.isnan(li)
            new_cnt = ccnt[i] + (1.0 if add else 0.0)
            new_sum = csum[i] + (li if add else 0.0)
            new_p = new_sum / (new_cnt if new_cnt > 1.0 else 1.0)
            if new_cnt > 0.0:
                bi = base[i]
                new_best = bi if bi < new_p else new_p
            else:
                new_best = ob[i]
            contrib[i] = vol[i] * (ob[i] - new_best)
        return contrib, shrink

    _COMPILED = (initial_gains, refresh_contrib)
    return _COMPILED


class NumbaBackend(ComputeBackend):
    """``@njit``-compiled kernels over the same shared-memory arrays."""

    name = "numba"

    def __init__(self) -> None:
        if not HAVE_NUMBA:
            raise BackendUnavailable("numba is not installed")
        super().__init__()
        self._initial_gains = None
        self._refresh_contrib = None

    def warmup(self) -> None:
        """Compile and exercise both kernels on tiny inputs.

        Runs inside ``resolve_backend``'s ``kernels.compile_s`` timer; any
        numba compilation or execution error propagates and becomes a
        recorded numpy fallback.
        """
        initial_gains, refresh_contrib = _compile()
        one = np.array([1.0])
        zero = np.array([0.0])
        initial_gains(one, one)
        refresh_contrib(one, one, one, one, zero, zero, one, one, 1.0)
        self._initial_gains = initial_gains
        self._refresh_contrib = refresh_contrib

    def _kernels(self):
        if self._refresh_contrib is None:
            self.warmup()
        return self._initial_gains, self._refresh_contrib

    def initial_gains(self, base: np.ndarray, lat: np.ndarray) -> np.ndarray:
        kernel = self._kernels()[0]
        return kernel(
            np.ascontiguousarray(base, dtype=np.float64),
            np.ascontiguousarray(lat, dtype=np.float64),
        )

    def refresh_contrib(
        self,
        dist: np.ndarray,
        lat: np.ndarray,
        vol: np.ndarray,
        d0: np.ndarray,
        csum: np.ndarray,
        ccnt: np.ndarray,
        ob: np.ndarray,
        base: np.ndarray,
        d_reuse: float,
    ) -> Tuple[np.ndarray, np.ndarray]:
        kernel = self._kernels()[1]
        c = np.ascontiguousarray
        return kernel(
            c(dist, dtype=np.float64),
            c(lat, dtype=np.float64),
            c(vol, dtype=np.float64),
            c(d0, dtype=np.float64),
            c(csum, dtype=np.float64),
            c(ccnt, dtype=np.float64),
            c(ob, dtype=np.float64),
            c(base, dtype=np.float64),
            float(d_reuse),
        )


register_backend("numba", NumbaBackend, probe=lambda: HAVE_NUMBA)
