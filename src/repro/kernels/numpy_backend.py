"""The numpy reference backend — the bit-exactness oracle.

Hosts the canonical elementwise kernels every other backend must
reproduce bit-for-bit.  ``refresh_contrib`` is the serial solver's
refresh-marginal vector expression (previously duplicated in
``repro.parallel.shard``, which now re-exports it from here);
``initial_gains`` is the initial-heap ``np.fmax(base - lat, 0.0)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels.api import ComputeBackend, register_backend


def initial_gains(base: np.ndarray, lat: np.ndarray) -> np.ndarray:
    """Initial-heap gain per affected UG row: ``max(0, base - lat)``.

    ``np.fmax`` (not ``maximum``) so ``nan`` latencies — unmeasurable
    ingresses — contribute exactly ``0.0``.
    """
    return np.fmax(base - lat, 0.0)


def refresh_contrib(
    dist: np.ndarray,
    lat: np.ndarray,
    vol: np.ndarray,
    d0: np.ndarray,
    csum: np.ndarray,
    ccnt: np.ndarray,
    ob: np.ndarray,
    base: np.ndarray,
    d_reuse: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """The serial refresh-marginal vector expression, row-for-row.

    Returns ``(contrib, shrink)``: per-row volume-weighted improvements
    (zeroed where the reuse window shrinks) and the shrink mask whose rows
    need the exact scalar recomputation.
    """
    shrink = (dist < d0) & np.isfinite(d0)
    limit = np.where(dist < d0, dist, d0) + d_reuse
    measurable = ~np.isnan(lat)
    add = (dist <= limit) & measurable
    new_cnt = ccnt + add
    new_sum = csum + np.where(add, lat, 0.0)
    new_p = new_sum / np.maximum(new_cnt, 1)
    new_best = np.where(new_cnt > 0, np.minimum(base, new_p), ob)
    contrib = vol * (ob - new_best)
    if shrink.any():
        contrib[shrink] = 0.0
    return contrib, shrink


class NumpyBackend(ComputeBackend):
    """Pure-numpy kernels; always available, always the reference."""

    name = "numpy"

    def initial_gains(self, base: np.ndarray, lat: np.ndarray) -> np.ndarray:
        return initial_gains(base, lat)

    def refresh_contrib(
        self,
        dist: np.ndarray,
        lat: np.ndarray,
        vol: np.ndarray,
        d0: np.ndarray,
        csum: np.ndarray,
        ccnt: np.ndarray,
        ob: np.ndarray,
        base: np.ndarray,
        d_reuse: float,
    ) -> Tuple[np.ndarray, np.ndarray]:
        return refresh_contrib(dist, lat, vol, d0, csum, ccnt, ob, base, d_reuse)


register_backend("numpy", NumpyBackend)
