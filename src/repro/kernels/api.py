"""The :class:`ComputeBackend` protocol and backend registry.

Algorithm 1's solve time is dominated by two elementwise kernels — the
initial-heap gain ``max(0, base - latency)`` and the fused refresh-marginal
pipeline (reuse-window test, kept-set mean update, best-latency improvement)
— evaluated over per-peering affected-UG arrays.  A :class:`ComputeBackend`
supplies exactly those kernels plus the dense latency/distance matrix
binding the evaluator and the parallel shard workers share.

Bit-exactness contract
----------------------

Backends compute **elementwise quantities only**.  Every floating-point
*reduction* (``contrib.sum()``, the initial ``vol @ gain`` dot product,
scalar shrink corrections, the learned-UG loop, warm-start volume patches)
stays on the host numpy path in canonical row order.  Elementwise IEEE-754
double operations are bit-identical across conforming implementations (no
FMA contraction, no fastmath), so every backend produces bit-identical
solve results by construction — the serial numpy solver remains the oracle
and the differential suites enforce the contract.

Registry & selection
--------------------

Backends register under a short name (``numpy``, ``numba``, ``cupy``) with
a cheap availability probe.  :func:`resolve_backend` implements the
selection policy:

* ``"auto"`` — best available backend (numba if importable, else numpy);
  a failed candidate is skipped silently, because auto is a preference,
  not a promise.
* an explicit name — resolved strictly; if the backend is unavailable or
  its JIT warmup fails, the numpy reference is returned instead and the
  degradation is *recorded*: ``kernels.fallbacks`` counter, a
  ``backend_fallback`` journal event, and a ``RuntimeWarning``.  A missing
  accelerator never crashes a solve.

Compilation time is accumulated in the ``kernels.compile_s`` timer so
bench artifacts can attribute wall time to compile vs execute.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Optional, Set, Tuple, Union

import numpy as np

from repro.perf import PERF
from repro.telemetry import emit_event


@dataclass(frozen=True)
class ScanContext:
    """Injected state for one :class:`repro.core.benefit.PrefixScan` session.

    Consolidates the loose ``learned_ug_ids=`` / ``table_source=`` keyword
    surface of ``BenefitEvaluator.begin_prefix_scan``: a parallel shard
    worker whose forked routing model is frozen at pool-creation time
    passes the authoritative learned set it received from the parent, and
    sources per-UG scan tables from the shared latency/distance matrices
    instead of re-deriving each entry from the latency oracle.
    """

    #: Overrides the routing model's live learned-UG set (``None`` = live).
    learned_ug_ids: Optional[Union[Set[int], FrozenSet[int]]] = None
    #: Overrides how per-UG scan tables are built (``None`` = evaluator
    #: default: the latency oracle + distance model).
    table_source: Optional[Callable] = None


class BackendUnavailable(RuntimeError):
    """The requested backend cannot run here (missing import, no device)."""


class ComputeBackend:
    """Elementwise marginal-evaluation kernels plus dense-matrix binding.

    Concrete backends override :meth:`initial_gains` and
    :meth:`refresh_contrib`; the latency/distance matrix binding (plain
    state shared by the evaluator, the orchestrator's vectorized
    affected-array build, and the parallel shard workers) is implemented
    here once.

    Instances are **per-evaluator**: a backend carries the bound dense
    matrices of exactly one evaluator, so the registry hands out fresh
    instances (see :func:`get_backend`), never singletons.
    """

    name: str = "abstract"

    def __init__(self) -> None:
        self._lat_matrix: Optional[np.ndarray] = None
        self._dist_matrix: Optional[np.ndarray] = None

    # -- dense matrix binding ------------------------------------------------
    # (consolidates the deprecated BenefitEvaluator.adopt_latency_matrix /
    # drop_latency_matrix surface)

    def bind_latency_matrix(
        self, lat: np.ndarray, dist: Optional[np.ndarray] = None
    ) -> None:
        """Attach the dense UG-row × peering-column matrices.

        ``lat`` is indexed ``[ug row, peering column]`` with UG rows in
        ``scenario.user_groups`` order and peering columns in deployment
        order.  Slot encoding: ``nan`` = not computed (falls back to the
        latency oracle), ``+inf`` = computed but unmeasurable (``None``),
        anything else = latency in ms.  ``dist`` (optional, same shape)
        carries great-circle UG→ingress distances for the large-world
        vectorized affected-array build.
        """
        if dist is not None and dist.shape != lat.shape:
            raise ValueError(
                f"distance matrix shape {dist.shape} != latency {lat.shape}"
            )
        self._lat_matrix = lat
        self._dist_matrix = dist

    def release_latency_matrix(self) -> None:
        """Detach the dense matrices (pool teardown / evaluator reset).

        Releasing never changes what the evaluator returns: unseen slots
        simply fall back to the deterministic latency source.
        """
        self._lat_matrix = None
        self._dist_matrix = None

    @property
    def latency_matrix(self) -> Optional[np.ndarray]:
        return self._lat_matrix

    @property
    def distance_matrix(self) -> Optional[np.ndarray]:
        return self._dist_matrix

    # -- lifecycle -----------------------------------------------------------

    def warmup(self) -> None:
        """Force ahead-of-time work (JIT compilation, device checks).

        Called once by :func:`resolve_backend` inside the
        ``kernels.compile_s`` timer; raising here triggers the numpy
        fallback for explicitly requested backends.
        """

    # -- elementwise kernels -------------------------------------------------

    def initial_gains(self, base: np.ndarray, lat: np.ndarray) -> np.ndarray:
        """Per-row initial-heap gain: ``max(0, base - lat)``, NaN → 0.

        ``lat`` uses ``nan`` for unmeasurable ingresses; those rows
        contribute zero (``np.fmax`` semantics).  The caller performs the
        ``vol @ gain`` reduction on the host.
        """
        raise NotImplementedError

    def refresh_contrib(
        self,
        dist: np.ndarray,
        lat: np.ndarray,
        vol: np.ndarray,
        d0: np.ndarray,
        csum: np.ndarray,
        ccnt: np.ndarray,
        ob: np.ndarray,
        base: np.ndarray,
        d_reuse: float,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The fused refresh-marginal vector expression, row-for-row.

        Returns ``(contrib, shrink)``: per-row volume-weighted
        improvements (zeroed where the reuse window shrinks) and the
        boolean shrink mask whose rows the caller recomputes exactly with
        the scalar scan.  The caller performs the ``contrib.sum()``
        reduction on the host.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class _BackendSpec:
    name: str
    factory: Callable[[], ComputeBackend]
    probe: Callable[[], bool]


_REGISTRY: Dict[str, _BackendSpec] = {}

#: Preference order ``resolve_backend("auto")`` walks.  cupy is excluded:
#: host↔device transfers only pay off on very large worlds, so the GPU
#: path is explicit opt-in.
AUTO_ORDER: Tuple[str, ...] = ("numba", "numpy")


def register_backend(
    name: str,
    factory: Callable[[], ComputeBackend],
    *,
    probe: Callable[[], bool] = lambda: True,
) -> None:
    """Register ``factory`` under ``name``.

    ``factory`` returns a *fresh* backend instance per call (instances are
    stateful — they carry one evaluator's bound matrices).  ``probe`` is a
    cheap availability check (an import test); it gates
    :func:`available_backends` without paying instantiation or JIT cost.
    """
    _REGISTRY[name] = _BackendSpec(name=name, factory=factory, probe=probe)


def registered_backends() -> Tuple[str, ...]:
    """Every registered backend name, available or not."""
    return tuple(sorted(_REGISTRY))


def available_backends() -> Tuple[str, ...]:
    """Registered backends whose availability probe passes."""
    return tuple(
        sorted(name for name, spec in _REGISTRY.items() if _probe_ok(spec))
    )


def _probe_ok(spec: _BackendSpec) -> bool:
    try:
        return bool(spec.probe())
    except Exception:  # pragma: no cover - defensive: probes should not raise
        return False


def get_backend(name: str) -> ComputeBackend:
    """A fresh instance of the named backend (no warmup, no fallback).

    Raises ``ValueError`` for names never registered and
    :class:`BackendUnavailable` when the backend's imports are missing —
    callers wanting graceful degradation use :func:`resolve_backend`.
    """
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ValueError(
            f"unknown compute backend {name!r}; registered: "
            f"{', '.join(registered_backends())}"
        )
    return spec.factory()


def _warmed(name: str) -> ComputeBackend:
    backend = get_backend(name)
    with PERF.timed("kernels.compile_s"):
        backend.warmup()
    return backend


def resolve_backend(name: str = "auto") -> ComputeBackend:
    """Resolve a backend name to a warmed-up instance (see module docs).

    ``"auto"`` picks the best available backend, skipping failures
    silently.  An explicit name that cannot be honored falls back to the
    numpy reference with a ``kernels.fallbacks`` count, a
    ``backend_fallback`` journal event, and a ``RuntimeWarning`` — never
    an exception (unknown names still raise ``ValueError``: that is a
    configuration typo, not a degraded environment).
    """
    if name == "auto":
        for candidate in AUTO_ORDER:
            spec = _REGISTRY.get(candidate)
            if spec is None or not _probe_ok(spec):
                continue
            try:
                return _warmed(candidate)
            except Exception:  # noqa: BLE001 - auto skips broken candidates
                continue
        return _warmed("numpy")
    if name == "numpy":
        return _warmed("numpy")
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown compute backend {name!r}; registered: "
            f"{', '.join(registered_backends())}"
        )
    try:
        return _warmed(name)
    except Exception as exc:  # noqa: BLE001 - degradation, never a crash
        PERF.counter("kernels.fallbacks").add()
        emit_event("backend_fallback", backend=name, reason=str(exc))
        warnings.warn(
            f"compute backend {name!r} unavailable ({exc}); "
            "falling back to the numpy reference backend",
            RuntimeWarning,
            stacklevel=2,
        )
        return _warmed("numpy")


def coerce_backend(
    backend: Union[str, ComputeBackend, None]
) -> ComputeBackend:
    """Normalize a config value to a backend instance.

    ``None`` means "the numpy reference, no resolution ceremony" — the
    default for directly constructed evaluators.  Strings go through
    :func:`resolve_backend`; instances pass through untouched.
    """
    if backend is None:
        return get_backend("numpy")
    if isinstance(backend, ComputeBackend):
        return backend
    if isinstance(backend, str):
        return resolve_backend(backend)
    raise TypeError(
        f"backend must be a name, a ComputeBackend, or None, not "
        f"{type(backend)!r}"
    )
