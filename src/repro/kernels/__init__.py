"""Pluggable compute backends for the marginal-evaluation hot loops.

Public surface::

    from repro.kernels import resolve_backend, ScanContext

    backend = resolve_backend("numba")      # numpy fallback if missing
    evaluator = BenefitEvaluator(scenario, model, backend=backend)

See :mod:`repro.kernels.api` for the bit-exactness contract (backends are
elementwise-only; every float reduction stays on the host numpy path) and
the selection/fallback policy, :mod:`repro.kernels.layout` for the
memory-budgeted dense-matrix planning the ``mega`` preset uses.

Importing this package registers the built-in backends: ``numpy`` (always
available — the reference and bit-exactness oracle), ``numba`` and
``cupy`` (optional dependencies, probed at registration).
"""

from repro.kernels.api import (
    AUTO_ORDER,
    BackendUnavailable,
    ComputeBackend,
    ScanContext,
    available_backends,
    coerce_backend,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
)
from repro.kernels.layout import (
    DEFAULT_CHUNK_BYTES,
    MatrixLayoutPlan,
    MemoryBudgetExceeded,
    plan_matrix_layout,
)
from repro.kernels.numpy_backend import NumpyBackend, initial_gains, refresh_contrib

# Optional backends register themselves on import; the modules import
# cleanly (and register an unavailable probe) when the dependency is
# missing, so `available_backends()` is always truthful.
from repro.kernels import numba_backend as _numba_backend  # noqa: F401
from repro.kernels import cupy_backend as _cupy_backend  # noqa: F401
from repro.kernels.numba_backend import NumbaBackend  # noqa: F401
from repro.kernels.cupy_backend import CupyBackend  # noqa: F401

__all__ = [
    "AUTO_ORDER",
    "BackendUnavailable",
    "ComputeBackend",
    "CupyBackend",
    "DEFAULT_CHUNK_BYTES",
    "MatrixLayoutPlan",
    "MemoryBudgetExceeded",
    "NumbaBackend",
    "NumpyBackend",
    "ScanContext",
    "available_backends",
    "coerce_backend",
    "get_backend",
    "initial_gains",
    "plan_matrix_layout",
    "refresh_contrib",
    "register_backend",
    "registered_backends",
    "resolve_backend",
]
