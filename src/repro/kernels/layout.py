"""Memory-budgeted dense-matrix layout planning for very large worlds.

The ``mega`` preset (100k+ UGs × ~2k peering columns) cannot afford the
evaluator's default per-UG Python-list latency rows (~hundreds of bytes
per slot once boxed); it materializes two dense float64 matrices —
latency and distance — and fills them in row chunks so transient Python
object churn stays bounded.  :func:`plan_matrix_layout` makes the layout
decisions explicit and testable: value/index dtypes, chunk height, exact
byte costs, and whether the plan fits a caller-supplied budget (the CI
peak-RSS gate is calibrated against these numbers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Default fill-chunk size: ~64 MiB of matrix rows per chunk keeps the
#: transient per-chunk Python overhead (boxed floats, oracle frames) small
#: relative to the matrices themselves.
DEFAULT_CHUNK_BYTES = 64 * 1024 * 1024


class MemoryBudgetExceeded(RuntimeError):
    """The planned dense matrices do not fit the caller's byte budget."""


@dataclass(frozen=True)
class MatrixLayoutPlan:
    """A concrete dtype/stride/chunk plan for the dense evaluator matrices."""

    n_rows: int
    n_cols: int
    #: Matrix element dtype — always float64: kernel bit-exactness is
    #: defined over IEEE doubles, so values never get narrowed.
    value_dtype: np.dtype
    #: Dtype for row-index (gather) arrays: int32 halves index memory when
    #: every row index fits, int64 otherwise.
    index_dtype: np.dtype
    #: Rows filled per chunk during materialization.
    chunk_rows: int
    #: Bytes of ONE dense matrix (latency or distance).
    matrix_bytes: int
    #: Bytes of both matrices together (latency + distance).
    total_bytes: int
    #: Optional budget the plan was checked against (bytes).
    budget_bytes: Optional[int] = None

    @property
    def fits_budget(self) -> bool:
        """True when no budget was given or the matrices fit inside it."""
        return self.budget_bytes is None or self.total_bytes <= self.budget_bytes

    def require_within_budget(self) -> "MatrixLayoutPlan":
        if not self.fits_budget:
            raise MemoryBudgetExceeded(
                f"dense matrices need {self.total_bytes / 2**20:.0f} MiB "
                f"(2 × {self.n_rows}×{self.n_cols} float64) but the budget "
                f"is {self.budget_bytes / 2**20:.0f} MiB"
            )
        return self

    @property
    def n_chunks(self) -> int:
        if self.n_rows == 0:
            return 0
        return -(-self.n_rows // self.chunk_rows)


def plan_matrix_layout(
    n_rows: int,
    n_cols: int,
    *,
    budget_bytes: Optional[int] = None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> MatrixLayoutPlan:
    """Choose dtypes and chunking for an ``n_rows × n_cols`` dense pair.

    Raises :class:`MemoryBudgetExceeded` immediately when a budget is
    given and the two float64 matrices cannot fit — better to refuse up
    front than to OOM mid-fill.
    """
    if n_rows < 0 or n_cols < 0:
        raise ValueError("matrix dimensions must be non-negative")
    if chunk_bytes < 1:
        raise ValueError("chunk_bytes must be positive")
    value_dtype = np.dtype(np.float64)
    row_bytes = n_cols * value_dtype.itemsize
    matrix_bytes = n_rows * row_bytes
    index_dtype = np.dtype(
        np.int32 if n_rows <= np.iinfo(np.int32).max else np.int64
    )
    if row_bytes == 0:
        chunk_rows = max(1, n_rows)
    else:
        chunk_rows = max(1, min(n_rows or 1, chunk_bytes // row_bytes or 1))
    return MatrixLayoutPlan(
        n_rows=n_rows,
        n_cols=n_cols,
        value_dtype=value_dtype,
        index_dtype=index_dtype,
        chunk_rows=chunk_rows,
        matrix_bytes=matrix_bytes,
        total_bytes=2 * matrix_bytes,
        budget_bytes=budget_bytes,
    ).require_within_budget()
