"""Egress-TE coexistence (§6): PAINTER composes with egress steering.

Large clouds already steer *egress* traffic (Edge Fabric, Espresso, CPR —
the paper's [58, 87, 110]); PAINTER "coexists with and acts independently of
these systems, improving end-to-end path latency".  This module makes the
claim checkable: it decomposes the RTT oracle into directional one-way
components, models an egress optimizer choosing the reverse path per UG, and
verifies that running both yields (approximately) additive improvement.

The decomposition keeps the invariant ``ingress_ms + egress_ms == rtt_ms``
*exactly* for the default (same-peering, symmetric-route) case, then lets
the egress optimizer pick a *different* peering for the reverse direction.

:class:`LinkWeightEpochs` extends the model with intra-cloud IGP link-weight
schedules (Balon & Leduc, arXiv:0803.2824): each epoch re-draws per-PoP cost
multipliers, shifting which exit is hot-potato-cheapest mid-run.  Epoch 0 is
always the identity, so single-epoch runs reduce bit-for-bit to the static
model — the frozen-epoch regression the hot-potato scenario is gated on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.core.advertisement import AdvertisementConfig
from repro.scenario import Scenario
from repro.topology.cloud import Peering
from repro.usergroups.usergroup import UserGroup
from repro.util import stable_rng


class CoexistenceError(RuntimeError):
    """An invariant of the directional model or egress optimizer was violated."""


@dataclass(frozen=True)
class DirectionalLatency:
    """One-way components for a (UG, peering) pair."""

    ingress_ms: float
    egress_ms: float

    @property
    def rtt_ms(self) -> float:
        return self.ingress_ms + self.egress_ms


@dataclass(frozen=True)
class LinkWeightEpochs:
    """Per-epoch intra-cloud link-weight multipliers, one draw per PoP.

    Epoch 0 is the identity (multiplier exactly 1.0 everywhere); later
    epochs re-draw a multiplier in ``[1 - amplitude, 1 + amplitude]`` per
    PoP, standing in for an IGP weight change that makes some exits cheaper
    and others dearer.  ``igp_med`` mirrors the same cost into the MED the
    cloud would send on sessions at that PoP — the channel through which
    IGP shifts leak into neighbors' ingress choices (hot-potato coupling).
    """

    n_epochs: int
    seed: int = 0
    amplitude: float = 0.3

    def __post_init__(self) -> None:
        if self.n_epochs < 1:
            raise ValueError("n_epochs must be >= 1")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")

    def multiplier(self, epoch: int, pop_name: str) -> float:
        if not 0 <= epoch < self.n_epochs:
            raise CoexistenceError(
                f"epoch {epoch} out of range [0, {self.n_epochs})"
            )
        if epoch == 0:
            return 1.0
        rng = stable_rng(self.seed, "igp", epoch, pop_name)
        return 1.0 + rng.uniform(-self.amplitude, self.amplitude)

    def igp_med(self, epoch: int, pop_name: str) -> int:
        """The MED the cloud advertises at this PoP: scaled epoch IGP cost."""
        return int(round(self.multiplier(epoch, pop_name) * 1000))


class DirectionalModel:
    """Splits the RTT oracle into asymmetric one-way components.

    Real forward/reverse paths differ (different intra-AS routes, different
    congestion); the split ratio is a stable hidden draw per (UG AS, peer
    AS), centered on 50/50.  With ``epochs`` set, ``split(..., epoch=k)``
    scales the egress leg by the epoch's per-PoP multiplier (the reverse
    path crosses the cloud's backbone, the forward leg does not).
    """

    def __init__(
        self,
        scenario: Scenario,
        seed: int = 0,
        asymmetry: float = 0.15,
        epochs: Optional[LinkWeightEpochs] = None,
    ) -> None:
        if not 0.0 <= asymmetry < 0.5:
            raise ValueError("asymmetry must be in [0, 0.5)")
        self._scenario = scenario
        self._seed = seed
        self._asymmetry = asymmetry
        self._epochs = epochs

    @property
    def epochs(self) -> Optional[LinkWeightEpochs]:
        return self._epochs

    def split(
        self, ug: UserGroup, peering: Peering, day: int = 0, epoch: int = 0
    ) -> DirectionalLatency:
        rtt = self._scenario.latency_model.latency_ms(ug, peering, day=day)
        rng = stable_rng(self._seed, "split", ug.asn, peering.peer_asn)
        ratio = 0.5 + rng.uniform(-self._asymmetry, self._asymmetry)
        # egress is derived by subtraction (not an independent rtt*(1-ratio)
        # product, which drifts from rtt by rounding); one compensation step
        # then an explicit check enforce the symmetric-case invariant.
        ingress = rtt * ratio
        egress = rtt - ingress
        if ingress + egress != rtt:
            ingress = rtt - egress
        if ingress + egress != rtt:
            raise CoexistenceError(
                f"directional split drifted from RTT for {ug} via "
                f"peering {peering.peering_id}: {ingress} + {egress} != {rtt}"
            )
        if epoch != 0:
            if self._epochs is None:
                raise CoexistenceError(
                    "split(epoch != 0) requires a LinkWeightEpochs schedule"
                )
            egress = egress * self._epochs.multiplier(epoch, peering.pop.name)
        return DirectionalLatency(ingress_ms=ingress, egress_ms=egress)


class EgressOptimizer:
    """A stand-in for Edge Fabric/Espresso: best egress peering per UG.

    The cloud may send return traffic via any peering whose PoP can reach
    the UG (we approximate the egress-feasible set with the same
    policy-compliant set — destination-based routing works both ways).
    """

    def __init__(self, scenario: Scenario, model: DirectionalModel) -> None:
        self._scenario = scenario
        self._model = model

    def best_egress(
        self,
        ug: UserGroup,
        day: int = 0,
        epoch: int = 0,
        restrict: Optional[Iterable[int]] = None,
    ) -> Tuple[Peering, float]:
        """The egress peering the optimizer picks, with its one-way latency.

        ``restrict`` replaces the candidate list with explicit peering ids
        (e.g. a policy proposal); if the resulting choice falls outside the
        UG's reachable set this raises :class:`CoexistenceError` rather
        than silently returning a peering no return path exists for.
        """
        if restrict is None:
            candidates: List[Peering] = self._scenario.catalog.ingresses(ug)
        else:
            deployment = self._scenario.deployment
            candidates = [
                deployment.peering(pid) for pid in sorted(frozenset(restrict))
            ]
        if not candidates:
            raise CoexistenceError(f"{ug} has no egress candidates")
        best = min(
            candidates,
            key=lambda p: (
                self._model.split(ug, p, day=day, epoch=epoch).egress_ms,
                p.peering_id,
            ),
        )
        if best.peering_id not in self._scenario.catalog.ingress_ids(ug):
            raise CoexistenceError(
                f"egress optimizer chose peering {best.peering_id} outside "
                f"the reachable set of {ug}"
            )
        return best, self._model.split(ug, best, day=day, epoch=epoch).egress_ms

    def best_egress_ms(self, ug: UserGroup, day: int = 0, epoch: int = 0) -> float:
        candidates = self._scenario.catalog.ingresses(ug)
        if not candidates:
            raise CoexistenceError(f"{ug} has no egress candidates")
        return min(
            self._model.split(ug, peering, day=day, epoch=epoch).egress_ms
            for peering in candidates
        )

    def default_egress_ms(self, ug: UserGroup, day: int = 0, epoch: int = 0) -> float:
        """Without egress TE: reverse traffic follows the anycast peering."""
        ingress = self._scenario.routing.anycast_ingress(ug)
        assert ingress is not None
        return self._model.split(ug, ingress, day=day, epoch=epoch).egress_ms


@dataclass(frozen=True)
class CoexistenceResult:
    """End-to-end latency under the four on/off combinations (weighted ms)."""

    neither: float
    painter_only: float
    egress_only: float
    both: float

    @property
    def painter_gain(self) -> float:
        return self.neither - self.painter_only

    @property
    def egress_gain(self) -> float:
        return self.neither - self.egress_only

    @property
    def combined_gain(self) -> float:
        return self.neither - self.both

    @property
    def additivity(self) -> float:
        """combined / (sum of individual); ~1.0 means independent systems."""
        individual = self.painter_gain + self.egress_gain
        if individual <= 0:
            return 1.0
        return self.combined_gain / individual


def painter_ingress_ms(
    scenario: Scenario,
    model: DirectionalModel,
    config: AdvertisementConfig,
    ug: UserGroup,
) -> float:
    """Best one-way ingress over PAINTER's prefixes (anycast fallback).

    Shared by :func:`evaluate_coexistence` and the hot-potato runner so the
    frozen-epoch differential compares identical arithmetic.
    """
    anycast = scenario.routing.anycast_ingress(ug)
    assert anycast is not None
    best = model.split(ug, anycast).ingress_ms
    for prefix in config.prefixes:
        advertised = config.peerings_for(prefix)
        ingress = scenario.routing.ingress_for(ug, advertised)
        if ingress is None:
            continue
        candidate = model.split(ug, ingress).ingress_ms
        if candidate < best:
            best = candidate
    return best


def evaluate_coexistence(
    scenario: Scenario,
    config: AdvertisementConfig,
    model: Optional[DirectionalModel] = None,
    epoch: int = 0,
) -> CoexistenceResult:
    """Volume-weighted end-to-end latency for each system combination."""
    model = model or DirectionalModel(scenario)
    optimizer = EgressOptimizer(scenario, model)

    neither = painter_only = egress_only = both = 0.0
    for ug in scenario.user_groups:
        anycast = scenario.routing.anycast_ingress(ug)
        assert anycast is not None
        default_in = model.split(ug, anycast).ingress_ms
        default_out = optimizer.default_egress_ms(ug, epoch=epoch)
        best_in = painter_ingress_ms(scenario, model, config, ug)
        best_out = optimizer.best_egress_ms(ug, epoch=epoch)
        neither += ug.volume * (default_in + default_out)
        painter_only += ug.volume * (best_in + default_out)
        egress_only += ug.volume * (default_in + best_out)
        both += ug.volume * (best_in + best_out)
    return CoexistenceResult(
        neither=neither, painter_only=painter_only, egress_only=egress_only, both=both
    )
