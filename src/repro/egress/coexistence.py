"""Egress-TE coexistence (§6): PAINTER composes with egress steering.

Large clouds already steer *egress* traffic (Edge Fabric, Espresso, CPR —
the paper's [58, 87, 110]); PAINTER "coexists with and acts independently of
these systems, improving end-to-end path latency".  This module makes the
claim checkable: it decomposes the RTT oracle into directional one-way
components, models an egress optimizer choosing the reverse path per UG, and
verifies that running both yields (approximately) additive improvement.

The decomposition keeps the invariant ``ingress_ms + egress_ms == rtt_ms``
for the default (same-peering, symmetric-route) case, then lets the egress
optimizer pick a *different* peering for the reverse direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.advertisement import AdvertisementConfig
from repro.scenario import Scenario
from repro.topology.cloud import Peering
from repro.usergroups.usergroup import UserGroup
from repro.util import stable_rng


@dataclass(frozen=True)
class DirectionalLatency:
    """One-way components for a (UG, peering) pair."""

    ingress_ms: float
    egress_ms: float

    @property
    def rtt_ms(self) -> float:
        return self.ingress_ms + self.egress_ms


class DirectionalModel:
    """Splits the RTT oracle into asymmetric one-way components.

    Real forward/reverse paths differ (different intra-AS routes, different
    congestion); the split ratio is a stable hidden draw per (UG AS, peer
    AS), centered on 50/50.
    """

    def __init__(self, scenario: Scenario, seed: int = 0, asymmetry: float = 0.15) -> None:
        if not 0.0 <= asymmetry < 0.5:
            raise ValueError("asymmetry must be in [0, 0.5)")
        self._scenario = scenario
        self._seed = seed
        self._asymmetry = asymmetry

    def split(self, ug: UserGroup, peering: Peering, day: int = 0) -> DirectionalLatency:
        rtt = self._scenario.latency_model.latency_ms(ug, peering, day=day)
        rng = stable_rng(self._seed, "split", ug.asn, peering.peer_asn)
        ratio = 0.5 + rng.uniform(-self._asymmetry, self._asymmetry)
        return DirectionalLatency(ingress_ms=rtt * ratio, egress_ms=rtt * (1.0 - ratio))


class EgressOptimizer:
    """A stand-in for Edge Fabric/Espresso: best egress peering per UG.

    The cloud may send return traffic via any peering whose PoP can reach
    the UG (we approximate the egress-feasible set with the same
    policy-compliant set — destination-based routing works both ways).
    """

    def __init__(self, scenario: Scenario, model: DirectionalModel) -> None:
        self._scenario = scenario
        self._model = model

    def best_egress_ms(self, ug: UserGroup, day: int = 0) -> float:
        candidates = self._scenario.catalog.ingresses(ug)
        if not candidates:
            raise RuntimeError(f"{ug} has no egress candidates")
        return min(
            self._model.split(ug, peering, day=day).egress_ms for peering in candidates
        )

    def default_egress_ms(self, ug: UserGroup, day: int = 0) -> float:
        """Without egress TE: reverse traffic follows the anycast peering."""
        ingress = self._scenario.routing.anycast_ingress(ug)
        assert ingress is not None
        return self._model.split(ug, ingress, day=day).egress_ms


@dataclass(frozen=True)
class CoexistenceResult:
    """End-to-end latency under the four on/off combinations (weighted ms)."""

    neither: float
    painter_only: float
    egress_only: float
    both: float

    @property
    def painter_gain(self) -> float:
        return self.neither - self.painter_only

    @property
    def egress_gain(self) -> float:
        return self.neither - self.egress_only

    @property
    def combined_gain(self) -> float:
        return self.neither - self.both

    @property
    def additivity(self) -> float:
        """combined / (sum of individual); ~1.0 means independent systems."""
        individual = self.painter_gain + self.egress_gain
        if individual <= 0:
            return 1.0
        return self.combined_gain / individual


def evaluate_coexistence(
    scenario: Scenario,
    config: AdvertisementConfig,
    model: Optional[DirectionalModel] = None,
) -> CoexistenceResult:
    """Volume-weighted end-to-end latency for each system combination."""
    model = model or DirectionalModel(scenario)
    optimizer = EgressOptimizer(scenario, model)

    def painter_ingress_ms(ug: UserGroup) -> float:
        """Best one-way ingress over PAINTER's prefixes (anycast fallback)."""
        anycast = scenario.routing.anycast_ingress(ug)
        assert anycast is not None
        best = model.split(ug, anycast).ingress_ms
        for prefix in config.prefixes:
            advertised = config.peerings_for(prefix)
            ingress = scenario.routing.ingress_for(ug, advertised)
            if ingress is None:
                continue
            candidate = model.split(ug, ingress).ingress_ms
            if candidate < best:
                best = candidate
        return best

    neither = painter_only = egress_only = both = 0.0
    for ug in scenario.user_groups:
        anycast = scenario.routing.anycast_ingress(ug)
        assert anycast is not None
        default_in = model.split(ug, anycast).ingress_ms
        default_out = optimizer.default_egress_ms(ug)
        best_in = painter_ingress_ms(ug)
        best_out = optimizer.best_egress_ms(ug)
        neither += ug.volume * (default_in + default_out)
        painter_only += ug.volume * (best_in + default_out)
        egress_only += ug.volume * (default_in + best_out)
        both += ug.volume * (best_in + best_out)
    return CoexistenceResult(
        neither=neither, painter_only=painter_only, egress_only=egress_only, both=both
    )
