"""Egress-direction substrate: coexistence with egress traffic engineering."""

from repro.egress.coexistence import (
    CoexistenceResult,
    DirectionalLatency,
    DirectionalModel,
    EgressOptimizer,
    evaluate_coexistence,
)

__all__ = [
    "CoexistenceResult",
    "DirectionalLatency",
    "DirectionalModel",
    "EgressOptimizer",
    "evaluate_coexistence",
]
