"""Egress-direction substrate: coexistence with egress traffic engineering."""

from repro.egress.coexistence import (
    CoexistenceError,
    CoexistenceResult,
    DirectionalLatency,
    DirectionalModel,
    EgressOptimizer,
    LinkWeightEpochs,
    evaluate_coexistence,
    painter_ingress_ms,
)

__all__ = [
    "CoexistenceError",
    "CoexistenceResult",
    "DirectionalLatency",
    "DirectionalModel",
    "EgressOptimizer",
    "LinkWeightEpochs",
    "evaluate_coexistence",
    "painter_ingress_ms",
]
