"""The full DNS resolution path: authoritative -> recursive -> client.

Fig. 10 charges DNS-based failover a flat TTL; reality is messier — a
client's effective failover time depends on where in the TTL window the
failure lands, the recursive resolver's cache, and client-side caching that
ignores TTLs outright (§2.2).  This module simulates the chain so the DNS
failover *distribution* can be derived instead of assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dns.records import ClientCache, DNSRecord
from repro.util import stable_rng


class AuthoritativeServer:
    """The cloud's authoritative DNS: hostname -> address, updatable.

    Steering via DNS means updating these mappings; the update is instant
    *here* but invisible to clients until caches expire.
    """

    def __init__(self, default_ttl_s: float = 60.0) -> None:
        if default_ttl_s <= 0:
            raise ValueError("ttl must be positive")
        self._default_ttl_s = default_ttl_s
        self._records: Dict[str, Tuple[str, float]] = {}
        self._update_times: Dict[str, float] = {}

    def set_record(self, hostname: str, address: str, time_s: float, ttl_s: Optional[float] = None) -> None:
        self._records[hostname] = (address, ttl_s or self._default_ttl_s)
        self._update_times[hostname] = time_s

    def query(self, hostname: str, time_s: float) -> DNSRecord:
        try:
            address, ttl_s = self._records[hostname]
        except KeyError:
            raise KeyError(f"no record for {hostname!r}") from None
        return DNSRecord(hostname=hostname, address=address, ttl_s=ttl_s, issued_at_s=time_s)

    def last_update_s(self, hostname: str) -> Optional[float]:
        return self._update_times.get(hostname)


class CachingResolver:
    """A recursive resolver with a straightforward TTL-honoring cache."""

    def __init__(self, authoritative: AuthoritativeServer) -> None:
        self._authoritative = authoritative
        self._cache: Dict[str, DNSRecord] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def resolve(self, hostname: str, time_s: float) -> DNSRecord:
        cached = self._cache.get(hostname)
        if cached is not None and cached.is_valid_at(time_s):
            self.cache_hits += 1
            # Downstream TTL is the *remaining* lifetime, as real resolvers
            # serve it.
            remaining = cached.expires_at_s - time_s
            return DNSRecord(
                hostname=hostname,
                address=cached.address,
                ttl_s=max(remaining, 1e-9),
                issued_at_s=time_s,
            )
        self.cache_misses += 1
        fresh = self._authoritative.query(hostname, time_s)
        self._cache[hostname] = fresh
        return fresh


@dataclass
class SimulatedClient:
    """A client with its own cache, optionally TTL-violating (§2.2)."""

    resolver: CachingResolver
    respect_ttl: bool = True
    #: Extra seconds a TTL-violating client keeps using a cached address.
    violation_extra_s: float = 0.0
    _cache: ClientCache = field(init=False)

    def __post_init__(self) -> None:
        self._cache = ClientCache(respect_ttl=self.respect_ttl)

    def lookup(self, hostname: str, time_s: float) -> str:
        cached = self._cache.lookup(hostname, time_s)
        if cached is not None:
            if self.respect_ttl or time_s < cached.expires_at_s + self.violation_extra_s:
                return cached.address
        record = self.resolver.resolve(hostname, time_s)
        self._cache.insert(record)
        return record.address


def failover_delay_s(
    client: SimulatedClient,
    authoritative: AuthoritativeServer,
    hostname: str,
    lookup_time_s: float,
    failure_time_s: float,
    new_address: str,
    probe_interval_s: float = 1.0,
    horizon_s: float = 3600.0,
) -> float:
    """Seconds after the failure until the client sees the new address.

    The client looked up the name at ``lookup_time_s``; the old address
    fails at ``failure_time_s`` and the authoritative record is updated at
    the same moment.  The client retries every ``probe_interval_s`` (a
    browser/app reconnect loop).
    """
    client.lookup(hostname, lookup_time_s)  # warm caches with the old record
    authoritative.set_record(hostname, new_address, time_s=failure_time_s)
    t = failure_time_s
    while t <= failure_time_s + horizon_s:
        if client.lookup(hostname, t) == new_address:
            return t - failure_time_s
        t += probe_interval_s
    return float("inf")


def failover_delay_distribution(
    ttl_s: float = 60.0,
    n_clients: int = 200,
    violator_fraction: float = 0.3,
    violation_extra_s: float = 900.0,
    seed: int = 0,
) -> List[float]:
    """Failover delays across a client population (the Fig. 10 DNS band).

    Clients looked the name up at uniformly random points in the TTL window;
    a fraction violate TTLs for an extra period, as measured in §2.2.
    """
    if not 0 <= violator_fraction <= 1:
        raise ValueError("violator_fraction must be in [0,1]")
    rng = stable_rng(seed, "dns-failover")
    delays: List[float] = []
    for index in range(n_clients):
        authoritative = AuthoritativeServer(default_ttl_s=ttl_s)
        authoritative.set_record("svc.example", "198.51.100.1", time_s=0.0)
        resolver = CachingResolver(authoritative)
        violates = rng.random() < violator_fraction
        client = SimulatedClient(
            resolver=resolver,
            respect_ttl=not violates,
            violation_extra_s=violation_extra_s if violates else 0.0,
        )
        lookup_time = rng.uniform(0.0, ttl_s)
        failure_time = ttl_s  # failure lands at the end of the first window
        delay = failover_delay_s(
            client,
            authoritative,
            "svc.example",
            lookup_time_s=lookup_time,
            failure_time_s=failure_time,
            new_address="198.51.100.2",
            horizon_s=ttl_s + violation_extra_s + 60.0,
        )
        delays.append(delay)
    return delays
