"""Synthetic residential traffic traces for the DNS/TTL analysis (Fig. 3).

The paper passively captured residential traffic, matched flows to the DNS
records that introduced their destination addresses, and measured how many
bytes were sent *after* the record's TTL expired.  We generate equivalent
synthetic traces: flows tied to records, with

* heavy-tailed flow durations (per-cloud profiles: one cloud dominated by
  long-lived conferencing/tunnel flows, two by shorter web-style flows);
* the paper's observed ~2:1 split between bytes late because the *flow
  outlived* the record versus because the client *reused a cached address*
  to start a new flow after expiry.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dns.records import DNSRecord


@dataclass(frozen=True)
class CloudProfile:
    """Traffic characteristics of one cloud's services in the trace."""

    name: str
    ttl_s: float
    #: Lognormal flow duration parameters (of seconds).
    duration_log_mean: float
    duration_log_sigma: float
    #: Probability a new flow reuses a cached (possibly expired) address.
    cached_start_prob: float
    #: How long after expiry cached addresses keep being used (mean, s).
    cache_lifetime_mean_s: float
    #: Mean bytes per flow.
    mean_flow_bytes: float = 1e6


#: Profiles tuned so the trace reproduces Fig. 3's shape: ~80% of Cloud A's
#: bytes are sent >= 5 minutes after record expiry; the other clouds see
#: ~20% of bytes at >= 1 minute.
CLOUD_PROFILES: Tuple[CloudProfile, ...] = (
    CloudProfile(
        name="cloud-a",
        ttl_s=60.0,
        duration_log_mean=math.log(1800.0),  # hour-scale conferencing/tunnels
        duration_log_sigma=1.1,
        cached_start_prob=0.33,
        cache_lifetime_mean_s=3600.0,
    ),
    CloudProfile(
        name="cloud-b",
        ttl_s=300.0,
        duration_log_mean=math.log(60.0),
        duration_log_sigma=1.2,
        cached_start_prob=0.15,
        cache_lifetime_mean_s=900.0,
    ),
    CloudProfile(
        name="cloud-c",
        ttl_s=600.0,
        duration_log_mean=math.log(90.0),
        duration_log_sigma=1.3,
        cached_start_prob=0.14,
        cache_lifetime_mean_s=600.0,
    ),
)


@dataclass(frozen=True)
class TraceFlow:
    """One flow matched to the DNS record that introduced its destination."""

    cloud: str
    record: DNSRecord
    start_s: float
    duration_s: float
    bytes_total: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.bytes_total < 0:
            raise ValueError("bytes must be non-negative")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    @property
    def started_after_expiry(self) -> bool:
        return self.start_s >= self.record.expires_at_s

    def bytes_after(self, offset_from_expiry_s: float) -> float:
        """Bytes sent after (record expiry + offset), at a constant rate."""
        threshold = self.record.expires_at_s + offset_from_expiry_s
        if threshold <= self.start_s:
            return self.bytes_total
        if threshold >= self.end_s:
            return 0.0
        return self.bytes_total * (self.end_s - threshold) / self.duration_s


def generate_trace(
    profile: CloudProfile,
    n_flows: int = 2000,
    seed: int = 0,
    capture_window_s: float = 3600.0,
) -> List[TraceFlow]:
    """Generate flows for one cloud over a capture window."""
    if n_flows < 1:
        raise ValueError("need at least one flow")
    rng = random.Random((profile.name, seed).__repr__())
    flows: List[TraceFlow] = []
    for index in range(n_flows):
        fetch_s = rng.uniform(0.0, capture_window_s)
        record = DNSRecord(
            hostname=f"svc.{profile.name}.example",
            address="203.0.113.10",
            ttl_s=profile.ttl_s,
            issued_at_s=fetch_s,
        )
        if rng.random() < profile.cached_start_prob:
            # Client reuses a cached address after the record expired.
            start_s = record.expires_at_s + rng.expovariate(
                1.0 / profile.cache_lifetime_mean_s
            )
        else:
            start_s = fetch_s + rng.uniform(0.0, profile.ttl_s)
        duration_s = rng.lognormvariate(
            profile.duration_log_mean, profile.duration_log_sigma
        )
        bytes_total = rng.expovariate(1.0 / profile.mean_flow_bytes)
        flows.append(
            TraceFlow(
                cloud=profile.name,
                record=record,
                start_s=start_s,
                duration_s=duration_s,
                bytes_total=bytes_total,
            )
        )
    return flows


def bytes_yet_to_be_sent_curve(
    flows: Sequence[TraceFlow], offsets_s: Sequence[float]
) -> List[Tuple[float, float]]:
    """Fig. 3's curve: fraction of all bytes sent after each expiry offset.

    ``offsets_s`` are relative to record expiration (negative = before).
    """
    total = sum(flow.bytes_total for flow in flows)
    if total <= 0:
        raise ValueError("trace carries no bytes")
    curve: List[Tuple[float, float]] = []
    for offset in offsets_s:
        late = sum(flow.bytes_after(offset) for flow in flows)
        curve.append((offset, late / total))
    return curve


def stale_traffic_fraction(flows: Sequence[TraceFlow], offset_s: float) -> float:
    """Fraction of bytes sent at least ``offset_s`` after record expiry."""
    return bytes_yet_to_be_sent_curve(flows, [offset_s])[0][1]


def extant_vs_cached_ratio(flows: Sequence[TraceFlow]) -> float:
    """Ratio of late bytes from flows that *outlived* their record to late
    bytes from flows *started* after expiry (paper observed roughly 2:1)."""
    extant = 0.0
    cached = 0.0
    for flow in flows:
        late = flow.bytes_after(0.0)
        if flow.started_after_expiry:
            cached += late
        else:
            extant += late
    if cached == 0:
        return math.inf
    return extant / cached
