"""DNS substrate: records, caches, resolvers, TTL-violation traffic traces."""

from repro.dns.records import ClientCache, DNSRecord, RecursiveResolver
from repro.dns.resolution import (
    AuthoritativeServer,
    CachingResolver,
    SimulatedClient,
    failover_delay_distribution,
    failover_delay_s,
)
from repro.dns.resolvers import ResolverAssignment, ResolverConfig
from repro.dns.trace import (
    CLOUD_PROFILES,
    CloudProfile,
    TraceFlow,
    bytes_yet_to_be_sent_curve,
    extant_vs_cached_ratio,
    generate_trace,
    stale_traffic_fraction,
)

__all__ = [
    "AuthoritativeServer",
    "CLOUD_PROFILES",
    "CachingResolver",
    "SimulatedClient",
    "failover_delay_distribution",
    "failover_delay_s",
    "ClientCache",
    "CloudProfile",
    "DNSRecord",
    "RecursiveResolver",
    "ResolverAssignment",
    "ResolverConfig",
    "TraceFlow",
    "bytes_yet_to_be_sent_curve",
    "extant_vs_cached_ratio",
    "generate_trace",
    "stale_traffic_fraction",
]
