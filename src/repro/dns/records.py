"""DNS records, client caches, and recursive resolvers.

The substrate behind two results: the Fig. 3 finding that most traffic to
some clouds is sent to addresses from *expired* DNS records, and the Fig. 9
comparison of DNS-based steering granularity against PAINTER's per-flow
control.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class DNSRecord:
    """An A record as delivered to a client."""

    hostname: str
    address: str
    ttl_s: float
    issued_at_s: float

    def __post_init__(self) -> None:
        if self.ttl_s <= 0:
            raise ValueError("ttl must be positive")

    @property
    def expires_at_s(self) -> float:
        return self.issued_at_s + self.ttl_s

    def is_valid_at(self, time_s: float) -> bool:
        return self.issued_at_s <= time_s < self.expires_at_s

    def age_at(self, time_s: float) -> float:
        return time_s - self.issued_at_s


class ClientCache:
    """A client-side address cache that may violate TTLs.

    The paper observes that clients "cache the IP addresses and start new
    flows after the TTLs expire"; :meth:`lookup` therefore returns expired
    records when ``respect_ttl`` is off, modeling OS/app-level caching.
    """

    def __init__(self, respect_ttl: bool = True) -> None:
        self._respect_ttl = respect_ttl
        self._records: Dict[str, DNSRecord] = {}

    def insert(self, record: DNSRecord) -> None:
        self._records[record.hostname] = record

    def lookup(self, hostname: str, time_s: float) -> Optional[DNSRecord]:
        record = self._records.get(hostname)
        if record is None or time_s < record.issued_at_s:
            return None
        if self._respect_ttl and not record.is_valid_at(time_s):
            return None
        return record

    def evict_expired(self, time_s: float) -> int:
        expired = [h for h, r in self._records.items() if not r.is_valid_at(time_s)]
        for hostname in expired:
            del self._records[hostname]
        return len(expired)


@dataclass
class RecursiveResolver:
    """A recursive resolver serving a population of user groups.

    ``supports_ecs`` marks EDNS0 Client Subnet support — per the paper, only
    ~72 networks worldwide (most significantly Google Public DNS) use ECS,
    which enables per-/24 instead of per-resolver steering.
    """

    resolver_id: int
    name: str
    ug_ids: List[int] = field(default_factory=list)
    supports_ecs: bool = False

    def serves(self, ug_id: int) -> bool:
        return ug_id in self.ug_ids

    @property
    def population(self) -> int:
        return len(self.ug_ids)
