"""Assigning user groups to recursive resolvers.

Fig. 9's DNS analyses need a resolver population: most UGs use a nearby ISP
resolver, a minority use a public ECS-capable resolver, and — critically for
Fig. 9b — some resolvers serve *geographically disparate* UGs, so no single
DNS answer suits all their clients.  The paper found such resolvers
correlated with the poorly-routed regions where PAINTER's benefit
concentrates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.dns.records import RecursiveResolver
from repro.scenario import Scenario
from repro.topology.geo import haversine_km
from repro.usergroups.usergroup import UserGroup


@dataclass(frozen=True)
class ResolverConfig:
    seed: int = 0
    #: Fraction of UGs whose clients use the public (ECS) resolver.
    public_resolver_fraction: float = 0.25
    #: Metro-cluster radius for local resolvers.
    local_radius_km: float = 1200.0
    #: Probability a UG is (mis)assigned to a resolver far from it.
    disparate_assignment_prob: float = 0.30
    #: Correlate disparate assignments with poorly-routed (high-improvement)
    #: UGs, per the paper's observation that "regions with poor routing ...
    #: correlated with regions that hosted LDNS serving geographically
    #: disparate users".
    benefit_correlated: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.public_resolver_fraction <= 1.0:
            raise ValueError("public_resolver_fraction must be in [0,1]")
        if not 0.0 <= self.disparate_assignment_prob <= 1.0:
            raise ValueError("disparate_assignment_prob must be in [0,1]")


class ResolverAssignment:
    """UG -> recursive resolver mapping for a scenario."""

    def __init__(self, scenario: Scenario, config: Optional[ResolverConfig] = None) -> None:
        self._config = config or ResolverConfig()
        self._scenario = scenario
        self._resolvers: List[RecursiveResolver] = []
        self._by_ug: Dict[int, RecursiveResolver] = {}
        self._build()

    def _build(self) -> None:
        cfg = self._config
        rng = random.Random(cfg.seed)
        ugs = self._scenario.user_groups

        public = RecursiveResolver(resolver_id=0, name="public-ecs", supports_ecs=True)
        self._resolvers.append(public)

        # Greedy metro clustering for local resolvers.
        clusters: List[List[UserGroup]] = []
        centers: List[UserGroup] = []
        for ug in ugs:
            placed = False
            for center, cluster in zip(centers, clusters):
                if haversine_km(ug.location, center.location) <= cfg.local_radius_km:
                    cluster.append(ug)
                    placed = True
                    break
            if not placed:
                centers.append(ug)
                clusters.append([ug])

        local_resolvers: List[RecursiveResolver] = []
        for index, center in enumerate(centers):
            local_resolvers.append(
                RecursiveResolver(
                    resolver_id=index + 1,
                    name=f"ldns-{center.metro.name}",
                )
            )
        self._resolvers.extend(local_resolvers)

        # Per-UG disparate-assignment probability, optionally amplified for
        # UGs with large potential improvement (poorly-routed regions).
        disparate_prob: Dict[int, float] = {}
        if cfg.benefit_correlated and ugs:
            improvements = {
                ug.ug_id: self._scenario.anycast_latency_ms(ug)
                - self._scenario.best_possible_latency_ms(ug)
                for ug in ugs
            }
            ranked = sorted(ugs, key=lambda ug: improvements[ug.ug_id])
            for rank, ug in enumerate(ranked):
                # Bottom third: 0.3x; middle: 1x; top third: 2.5x (capped).
                tercile = 3 * rank // max(1, len(ranked))
                factor = (0.3, 1.0, 2.5)[min(tercile, 2)]
                disparate_prob[ug.ug_id] = min(0.95, cfg.disparate_assignment_prob * factor)
        else:
            disparate_prob = {ug.ug_id: cfg.disparate_assignment_prob for ug in ugs}

        for center_idx, cluster in enumerate(clusters):
            for ug in cluster:
                if rng.random() < cfg.public_resolver_fraction:
                    resolver = public
                elif rng.random() < disparate_prob[ug.ug_id] and len(local_resolvers) > 1:
                    # A geographically disparate LDNS assignment.
                    other = rng.randrange(len(local_resolvers))
                    while other == center_idx and len(local_resolvers) > 1:
                        other = rng.randrange(len(local_resolvers))
                    resolver = local_resolvers[other]
                else:
                    resolver = local_resolvers[center_idx]
                resolver.ug_ids.append(ug.ug_id)
                self._by_ug[ug.ug_id] = resolver

    @property
    def resolvers(self) -> List[RecursiveResolver]:
        return list(self._resolvers)

    def resolver_for(self, ug: UserGroup) -> RecursiveResolver:
        try:
            return self._by_ug[ug.ug_id]
        except KeyError:
            raise KeyError(f"UG {ug.ug_id} has no resolver") from None

    def ugs_of(self, resolver: RecursiveResolver) -> List[UserGroup]:
        by_id = {ug.ug_id: ug for ug in self._scenario.user_groups}
        return [by_id[ug_id] for ug_id in resolver.ug_ids]

    def volume_of(self, resolver: RecursiveResolver) -> float:
        by_id = {ug.ug_id: ug for ug in self._scenario.user_groups}
        return sum(by_id[ug_id].volume for ug_id in resolver.ug_ids)
