"""A PECAN-style comparator (related work, §6).

PECAN [100] exposed path diversity by issuing multiple advertisements to a
*single* ISP and steering clients with DNS.  The paper argues this "does not
scale to networks like Azure with thousands of peerings": confining all
prefixes to one ISP caps the reachable diversity at that ISP's footprint,
and DNS steering forfeits per-flow control (Fig. 9b).  This module builds
the PECAN configuration so the claim can be measured.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.advertisement import AdvertisementConfig
from repro.core.benefit import realized_benefit
from repro.scenario import Scenario


def best_single_isp(scenario: Scenario) -> int:
    """The transit AS whose peerings alone could yield the most benefit."""
    deployment = scenario.deployment
    model = scenario.latency_model
    scores: Dict[int, float] = {}
    for peering in deployment.transit_peerings():
        scores.setdefault(peering.peer_asn, 0.0)
    for ug in scenario.user_groups:
        anycast = scenario.anycast_latency_ms(ug)
        best_per_asn: Dict[int, float] = {}
        for pid in scenario.catalog.ingress_ids(ug):
            peering = deployment.peering(pid)
            if peering.peer_asn not in scores:
                continue
            improvement = max(0.0, anycast - model.latency_ms(ug, peering))
            if improvement > best_per_asn.get(peering.peer_asn, 0.0):
                best_per_asn[peering.peer_asn] = improvement
        for asn, improvement in best_per_asn.items():
            scores[asn] += ug.volume * improvement
    if not scores:
        raise RuntimeError("deployment has no transit peerings")
    return max(scores, key=lambda asn: (scores[asn], -asn))


def pecan_config(scenario: Scenario, budget: int, isp_asn: Optional[int] = None) -> AdvertisementConfig:
    """PECAN: one prefix per PoP-peering of a single ISP.

    Each prefix is announced via one of the chosen ISP's peerings (its
    presence at one PoP), exposing that ISP's internal path diversity and
    nothing else.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    isp = isp_asn if isp_asn is not None else best_single_isp(scenario)
    peerings = scenario.deployment.peerings_with(isp)
    if not peerings:
        raise ValueError(f"AS{isp} has no peerings with the cloud")
    config = AdvertisementConfig()
    for prefix, peering in enumerate(peerings[:budget]):
        config.add(prefix, peering.peering_id)
    return config


def compare_pecan_to_painter(
    scenario: Scenario, budget: int, painter_config: AdvertisementConfig
) -> Tuple[float, float, int]:
    """(pecan benefit, painter benefit, pecan's ISP) at the same budget.

    Both are evaluated with ground-truth routing and per-flow selection —
    i.e., this isolates the *path exposure* gap; PECAN's additional DNS
    penalty stacks on top (Fig. 9b).
    """
    isp = best_single_isp(scenario)
    pecan = pecan_config(scenario, budget, isp_asn=isp)
    return (
        realized_benefit(scenario, pecan),
        realized_benefit(scenario, painter_config),
        isp,
    )
