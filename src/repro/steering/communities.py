"""Action-community inbound TE: a comparator to PAINTER's prefix steering.

Real operators do fine-grained ingress TE without extra prefixes by tagging
announcements with *action communities* (Shao et al., arXiv:1511.08336):
the cloud attaches a tag on a session and upstream configuration translates
it into AS-path prepending, selective announcement / no-export toward named
peers, or a MED value on the session.  This module models that vocabulary
on top of :mod:`repro.bgp`:

* actions compile to community strings carried transitively by
  :class:`repro.bgp.route.Route` (observability) and to their *effects* —
  a per-peer prepend map, an allowed-peer set, and per-peering MED offsets
  — which :class:`CommunityRouting` pushes through the same AS-level
  propagation and exit-policy oracle PAINTER's ground truth uses;
* :func:`solve_communities` searches, per UG, a small ladder of candidate
  announcements that steer its ingress toward its best peering, then
  groups UGs by announcement under a prefix budget — the communities
  analog of Algorithm 1's per-prefix greedy;
* MED values mirror the cloud's *intra-domain IGP cost* to each exit PoP
  (plus the TE offset), so when link-weight epochs shift
  (:class:`repro.egress.coexistence.LinkWeightEpochs`) the MED ordering —
  and with it the steered ingress — can flip.  PAINTER's plain prefix
  advertisements carry no IGP signal and hold their ingress; that contrast
  is the hot-potato coexistence scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.bgp.simulator import BGPSimulator
from repro.egress.coexistence import CoexistenceError, LinkWeightEpochs
from repro.scenario import Scenario
from repro.topology.builder import CLOUD_ASN
from repro.topology.cloud import Peering
from repro.usergroups.usergroup import UserGroup

#: Namespace of every community string this model emits.
COMMUNITY_NAMESPACE = "cloud"

#: Baseline MED when no link-weight schedule is in play (== the epoch-0
#: ``igp_med`` of every PoP, so static and frozen-epoch runs agree).
BASELINE_MED = 1000

#: MED offset that pins a peering as the cheapest session of its neighbor.
#: It is a *nudge* on the IGP-mirrored MED, not an absolute override:
#: decisive under the baseline link weights (every PoP's epoch-0 MED is
#: :data:`BASELINE_MED`, so the pinned session wins by exactly this margin)
#: but within reach of a large link-weight swing — the hot-potato exposure
#: the coexistence scenario measures.  An amplitude above ``MED_PIN/1000``
#: can flip a pinned ingress; PAINTER's untagged prefixes cannot flip.
MED_PIN = -200


@dataclass(frozen=True)
class PrependAction:
    """Prepend the origin ASN ``count`` times on sessions toward ``peer_asn``."""

    peer_asn: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("prepend count must be non-negative")

    def community(self) -> str:
        return f"{COMMUNITY_NAMESPACE}:prepend:{self.peer_asn}:{self.count}"


@dataclass(frozen=True)
class AnnounceToAction:
    """Announce the prefix *only* on sessions toward ``peer_asn``.

    Multiple announce actions union; none means announce everywhere.
    """

    peer_asn: int

    def community(self) -> str:
        return f"{COMMUNITY_NAMESPACE}:announce:{self.peer_asn}"


@dataclass(frozen=True)
class NoExportAction:
    """Suppress the announcement on sessions toward ``peer_asn``."""

    peer_asn: int

    def community(self) -> str:
        return f"{COMMUNITY_NAMESPACE}:no-export:{self.peer_asn}"


@dataclass(frozen=True)
class MedAction:
    """Add ``offset`` to the MED sent on the session of ``peering_id``.

    The effective MED a neighbor compares is the cloud's IGP cost toward the
    session's PoP plus this offset; lower wins.
    """

    peering_id: int
    offset: int

    def community(self) -> str:
        return f"{COMMUNITY_NAMESPACE}:med:{self.peering_id}:{self.offset}"


Action = Union[PrependAction, AnnounceToAction, NoExportAction, MedAction]


def parse_community(text: str) -> Action:
    """Inverse of ``action.community()``; raises ``ValueError`` on junk."""
    parts = text.split(":")
    if len(parts) < 3 or parts[0] != COMMUNITY_NAMESPACE:
        raise ValueError(f"not an action community: {text!r}")
    kind = parts[1]
    try:
        if kind == "prepend" and len(parts) == 4:
            return PrependAction(peer_asn=int(parts[2]), count=int(parts[3]))
        if kind == "announce" and len(parts) == 3:
            return AnnounceToAction(peer_asn=int(parts[2]))
        if kind == "no-export" and len(parts) == 3:
            return NoExportAction(peer_asn=int(parts[2]))
        if kind == "med" and len(parts) == 4:
            return MedAction(peering_id=int(parts[2]), offset=int(parts[3]))
    except ValueError as exc:
        raise ValueError(f"malformed action community: {text!r}") from exc
    raise ValueError(f"unknown action community: {text!r}")


@dataclass(frozen=True)
class CommunityAnnouncement:
    """One prefix's compiled action assignment (hashable, order-free).

    ``announce`` is the allowed peer-ASN set (``None`` = everyone);
    ``no_export`` subtracts from it; ``prepend`` and ``med`` are sorted
    (key, value) tuples so equal assignments hash equal.
    """

    announce: Optional[FrozenSet[int]] = None
    no_export: FrozenSet[int] = frozenset()
    prepend: Tuple[Tuple[int, int], ...] = ()
    med: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if tuple(sorted(dict(self.prepend).items())) != self.prepend:
            raise ValueError("prepend must be sorted unique (asn, count) pairs")
        if tuple(sorted(dict(self.med).items())) != self.med:
            raise ValueError("med must be sorted unique (peering_id, offset) pairs")
        if any(count < 0 for _, count in self.prepend):
            raise ValueError("prepend counts must be non-negative")

    @classmethod
    def from_actions(cls, actions: Iterable[Action]) -> "CommunityAnnouncement":
        announce: Optional[set] = None
        no_export: set = set()
        prepend: Dict[int, int] = {}
        med: Dict[int, int] = {}
        for action in actions:
            if isinstance(action, AnnounceToAction):
                announce = announce or set()
                announce.add(action.peer_asn)
            elif isinstance(action, NoExportAction):
                no_export.add(action.peer_asn)
            elif isinstance(action, PrependAction):
                prepend[action.peer_asn] = max(prepend.get(action.peer_asn, 0), action.count)
            elif isinstance(action, MedAction):
                med[action.peering_id] = med.get(action.peering_id, 0) + action.offset
            else:
                raise TypeError(f"not an action: {action!r}")
        return cls(
            announce=None if announce is None else frozenset(announce),
            no_export=frozenset(no_export),
            prepend=tuple(sorted(prepend.items())),
            med=tuple(sorted(med.items())),
        )

    def actions(self) -> Tuple[Action, ...]:
        out: List[Action] = []
        if self.announce is not None:
            out.extend(AnnounceToAction(asn) for asn in sorted(self.announce))
        out.extend(NoExportAction(asn) for asn in sorted(self.no_export))
        out.extend(PrependAction(asn, count) for asn, count in self.prepend)
        out.extend(MedAction(pid, offset) for pid, offset in self.med)
        return tuple(out)

    def communities(self) -> Tuple[str, ...]:
        return tuple(action.community() for action in self.actions())

    @classmethod
    def from_communities(cls, communities: Iterable[str]) -> "CommunityAnnouncement":
        return cls.from_actions(parse_community(text) for text in communities)

    def effective_peers(self, all_peer_asns: FrozenSet[int]) -> FrozenSet[int]:
        allowed = all_peer_asns if self.announce is None else (all_peer_asns & self.announce)
        return allowed - self.no_export

    def prepend_map(self) -> Dict[int, int]:
        return {asn: count for asn, count in self.prepend if count > 0}

    def med_map(self) -> Dict[int, int]:
        return dict(self.med)

    @property
    def is_noop(self) -> bool:
        """Equivalent to a plain, everywhere-announced, untagged prefix."""
        return (
            self.announce is None
            and not self.no_export
            and not self.prepend_map()
            and not self.med
        )


def compile_actions(actions: Iterable[Action]) -> CommunityAnnouncement:
    """Alias of :meth:`CommunityAnnouncement.from_actions`."""
    return CommunityAnnouncement.from_actions(actions)


#: The do-nothing assignment: identical to the anycast announcement.
NOOP = CommunityAnnouncement()


class CommunityRouting:
    """Where a UG's traffic enters under a community-tagged announcement.

    Reuses the ground-truth oracle's propagation caches and hidden exit
    state: a no-op announcement therefore takes the *identical* code and
    cache path as the plain anycast announcement — the bit-identity the
    differential tests pin.  MED ordering applies only when at least one
    candidate session of the entering AS carries an explicit MED offset;
    otherwise the entering AS keeps its (hot/cold-potato) exit policy.
    """

    def __init__(
        self, scenario: Scenario, epochs: Optional[LinkWeightEpochs] = None
    ) -> None:
        self._scenario = scenario
        self._routing = scenario.routing
        self._epochs = epochs
        deployment = scenario.deployment
        self._by_asn: Dict[int, List[Peering]] = {}
        for peering in deployment.peerings:
            self._by_asn.setdefault(peering.peer_asn, []).append(peering)
        self._all_asns = frozenset(self._by_asn)

    @property
    def epochs(self) -> Optional[LinkWeightEpochs]:
        return self._epochs

    @property
    def peer_asns(self) -> FrozenSet[int]:
        return self._all_asns

    def effective_med(self, peering: Peering, offset: int, epoch: int = 0) -> int:
        """IGP-mirrored MED on a session: epoch cost at its PoP + TE offset."""
        if self._epochs is None:
            base = BASELINE_MED
            if epoch != 0:
                raise CoexistenceError(
                    "epoch != 0 requires a LinkWeightEpochs schedule"
                )
        else:
            base = self._epochs.igp_med(epoch, peering.pop.name)
        return base + offset

    def ingress_for(
        self, ug: UserGroup, announcement: CommunityAnnouncement, epoch: int = 0
    ) -> Optional[Peering]:
        allowed = announcement.effective_peers(self._all_asns)
        if not allowed:
            return None
        entering = self._routing.entering_asn_for(
            ug, allowed, prepend=announcement.prepend_map()
        )
        if entering is None:
            return None
        candidates = self._by_asn[entering]
        meds = announcement.med_map()
        if meds and any(p.peering_id in meds for p in candidates):
            return min(
                candidates,
                key=lambda p: (
                    self.effective_med(p, meds.get(p.peering_id, 0), epoch=epoch),
                    p.peering_id,
                ),
            )
        return self._routing.choose_exit(ug, entering, candidates)

    def latency_for(
        self,
        ug: UserGroup,
        announcement: CommunityAnnouncement,
        day: int = 0,
        epoch: int = 0,
    ) -> Optional[float]:
        ingress = self.ingress_for(ug, announcement, epoch=epoch)
        if ingress is None:
            return None
        return self._scenario.latency_model.latency_ms(ug, ingress, day=day)

    def tagged_routes(self, announcement: CommunityAnnouncement, prefix: str = "prefix"):
        """AS-level routes with the announcement's community strings attached.

        The observability channel: every downstream AS sees the tags on its
        best route (communities are transitive here).  Uses a fresh
        simulator so tagged routes never pollute the shared caches.
        """
        sim = BGPSimulator(
            self._routing.topology.graph, CLOUD_ASN, tie_break_seed=self._routing.seed
        )
        allowed = sorted(announcement.effective_peers(self._all_asns))
        tags = announcement.communities()
        return sim.propagate(
            prefix,
            allowed,
            prepend=announcement.prepend_map() or None,
            communities={asn: tags for asn in allowed},
        )


@dataclass(frozen=True)
class CommunitiesSolution:
    """Ranked announcement groups from one max-budget solve.

    ``announcements[:k]`` is the budget-``k`` assignment (nested by
    construction, like PAINTER's prefix subsets), and ``target_volume``
    records each group's volume-weighted improvement score at solve time.
    """

    announcements: Tuple[CommunityAnnouncement, ...]
    target_volume: Tuple[float, ...] = field(default=())

    def at_budget(self, budget: int) -> Tuple[CommunityAnnouncement, ...]:
        if budget < 1:
            raise ValueError("budget must be >= 1")
        return self.announcements[:budget]


def _candidate_ladder(target: Peering) -> Tuple[CommunityAnnouncement, ...]:
    """Announcements that try to steer a UG toward ``target``, strongest last.

    The ladder spans the action vocabulary: MED-pin only (keeps the AS-level
    route), selective-announce (forces the entering AS), both combined, and
    a softer prepend-based deterrent that preserves reachability elsewhere.
    """
    med_pin = ((target.peering_id, MED_PIN),)
    return (
        CommunityAnnouncement(med=med_pin),
        CommunityAnnouncement(announce=frozenset({target.peer_asn})),
        CommunityAnnouncement(announce=frozenset({target.peer_asn}), med=med_pin),
    )


def _prepend_ladder(
    target: Peering, other_asns: Sequence[int], counts: Tuple[int, ...] = (3, 6)
) -> Tuple[CommunityAnnouncement, ...]:
    """Prepend-based variants: deter every other peer AS, MED-pin the target."""
    med_pin = ((target.peering_id, MED_PIN),)
    return tuple(
        CommunityAnnouncement(
            prepend=tuple(sorted((asn, count) for asn in other_asns)),
            med=med_pin,
        )
        for count in counts
    )


def best_target_peering(scenario: Scenario, ug: UserGroup, day: int = 0) -> Optional[Peering]:
    """The policy-compliant peering with the lowest true latency for ``ug``."""
    best: Optional[Peering] = None
    best_latency = float("inf")
    # catalog.ingresses is sorted by peering id, so ties keep the lowest id.
    for peering in scenario.catalog.ingresses(ug):
        latency = scenario.latency_model.latency_ms(ug, peering, day=day)
        if latency < best_latency:
            best = peering
            best_latency = latency
    return best


def solve_communities(
    scenario: Scenario,
    budget: int,
    epochs: Optional[LinkWeightEpochs] = None,
    max_prepend_fanout: int = 12,
) -> CommunitiesSolution:
    """Search per-UG action assignments, then group under the prefix budget.

    For each UG: find its best policy-compliant peering, evaluate the
    candidate-announcement ladder through :class:`CommunityRouting`, keep
    the announcement with the largest realized improvement over anycast.
    UGs wanting the same announcement share a prefix; groups are ranked by
    volume-weighted improvement and the top ``budget`` kept.  The ranking
    is computed once at max budget, so every smaller budget is a prefix of
    the same ranking (one solve yields the whole curve).
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    router = CommunityRouting(scenario, epochs=epochs)
    scores: Dict[CommunityAnnouncement, float] = {}
    for ug in scenario.user_groups:
        anycast = scenario.anycast_latency_ms(ug)
        target = best_target_peering(scenario, ug)
        if target is None:
            continue
        candidates = list(_candidate_ladder(target))
        other_asns = [
            asn for asn in sorted(router.peer_asns) if asn != target.peer_asn
        ]
        if 0 < len(other_asns) <= max_prepend_fanout:
            candidates.extend(_prepend_ladder(target, other_asns))
        best_ann: Optional[CommunityAnnouncement] = None
        best_improvement = 0.0
        for announcement in candidates:
            latency = router.latency_for(ug, announcement)
            if latency is None:
                continue
            improvement = anycast - latency
            if improvement > best_improvement:
                best_improvement = improvement
                best_ann = announcement
        if best_ann is not None:
            scores[best_ann] = scores.get(best_ann, 0.0) + ug.volume * best_improvement
    ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0].communities()))
    kept = ranked[:budget]
    return CommunitiesSolution(
        announcements=tuple(ann for ann, _ in kept),
        target_volume=tuple(score for _, score in kept),
    )


def communities_choices(
    scenario: Scenario,
    announcements: Sequence[CommunityAnnouncement],
    day: int = 0,
    epoch: int = 0,
    epochs: Optional[LinkWeightEpochs] = None,
) -> Dict[int, int]:
    """Each UG's best announcement index by ground-truth latency (or absent:
    the UG stays on anycast)."""
    router = CommunityRouting(scenario, epochs=epochs)
    choices: Dict[int, int] = {}
    for ug in scenario.user_groups:
        anycast = scenario.anycast_latency_ms(ug, day=day)
        best_latency = anycast
        best_index: Optional[int] = None
        for index, announcement in enumerate(announcements):
            latency = router.latency_for(ug, announcement, day=day, epoch=epoch)
            if latency is not None and latency < best_latency:
                best_latency = latency
                best_index = index
        if best_index is not None:
            choices[ug.ug_id] = best_index
    return choices


def communities_benefit(
    scenario: Scenario,
    announcements: Sequence[CommunityAnnouncement],
    day: int = 0,
    epoch: int = 0,
    epochs: Optional[LinkWeightEpochs] = None,
    choices: Optional[Mapping[int, int]] = None,
) -> float:
    """Eq. 1 with ground-truth improvements under community steering.

    Mirrors :func:`repro.core.benefit.realized_benefit`: per UG, the best
    announcement (or a pinned one via ``choices``) against the anycast
    fallback, floored at 0, volume-weighted, accumulated in UG order.
    """
    router = CommunityRouting(scenario, epochs=epochs)
    total = 0.0
    for ug in scenario.user_groups:
        anycast = scenario.anycast_latency_ms(ug, day=day)
        best = anycast
        if choices is not None:
            if ug.ug_id not in choices:
                continue  # pinned to anycast: zero improvement by definition
            pinned = announcements[choices[ug.ug_id]]
            latency = router.latency_for(ug, pinned, day=day, epoch=epoch)
            if latency is not None and latency < best:
                best = latency
        else:
            for announcement in announcements:
                latency = router.latency_for(ug, announcement, day=day, epoch=epoch)
                if latency is not None and latency < best:
                    best = latency
        total += ug.volume * (anycast - best)
    return total


def coverage_of_best_ingress(
    scenario: Scenario,
    announcements: Sequence[CommunityAnnouncement],
    epoch: int = 0,
    epochs: Optional[LinkWeightEpochs] = None,
) -> float:
    """Volume fraction of UGs some announcement lands on their best ingress."""
    router = CommunityRouting(scenario, epochs=epochs)
    covered = 0.0
    total = 0.0
    for ug in scenario.user_groups:
        total += ug.volume
        target = best_target_peering(scenario, ug)
        if target is None:
            continue
        for announcement in announcements:
            ingress = router.ingress_for(ug, announcement, epoch=epoch)
            if ingress is not None and ingress.peering_id == target.peering_id:
                covered += ug.volume
                break
    return covered / total if total > 0 else 0.0


def communities_budget_configs(
    scenario: Scenario,
    budgets: Sequence[int],
    epochs: Optional[LinkWeightEpochs] = None,
) -> Dict[int, Tuple[CommunityAnnouncement, ...]]:
    """Nested announcement sets per budget from one max-budget solve."""
    solution = solve_communities(scenario, max(budgets), epochs=epochs)
    return {budget: solution.at_budget(budget) for budget in budgets}
