"""SD-WAN multihoming comparator (§5.2.4).

An SD-WAN device selects among the enterprise's ISPs (plus a direct cloud
peering if one exists).  Paths and reachable PoPs are computed with the
paper's methodology: one path per ISP, whose ingress PoP is wherever that
ISP's clients ingress under the default (anycast) routing, "since routing is
destination-based".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.scenario import Scenario
from repro.usergroups.usergroup import UserGroup


@dataclass(frozen=True)
class SdwanView:
    """What an SD-WAN device at one UG can reach."""

    ug_id: int
    #: ISP ASNs selectable by the device (providers of the UG's AS).
    isp_asns: Tuple[int, ...]
    #: Whether the UG's AS peers directly with the cloud.
    has_direct_peering: bool
    #: Distinct ingress PoPs across the paths.
    pops: FrozenSet[str]
    #: AS-level paths, one per ISP (and the direct path if present); each is
    #: the tuple of intermediate ASNs (excludes the UG's AS and the cloud).
    paths: Tuple[Tuple[int, ...], ...]

    @property
    def path_count(self) -> int:
        return len(self.paths)


def sdwan_view(scenario: Scenario, ug: UserGroup) -> SdwanView:
    """Compute the SD-WAN path set for one UG."""
    graph = scenario.graph
    routing = scenario.routing
    deployment = scenario.deployment

    isp_asns = tuple(sorted(graph.providers(ug.asn))) if ug.asn in graph else ()
    has_direct = deployment.has_direct_peering_with(ug.asn)

    paths: List[Tuple[int, ...]] = []
    pops: Set[str] = set()

    for isp in isp_asns:
        # Traffic forced through this ISP reaches the cloud the way the
        # ISP's own clients do: take the ISP's default (anycast) AS path.
        isp_ug = UserGroup(
            ug_id=10_000_000 + isp,  # synthetic id; never collides with real UGs
            asn=isp,
            metro=graph.get_as(isp).home_metro or ug.metro,
            volume=0.0,
        )
        as_path = routing.default_as_path(isp_ug)
        if as_path is None:
            continue
        # Intermediate ASes: the ISP itself plus everything to the cloud
        # (exclusive).  as_path starts at the ISP's first hop... the path is
        # from the ISP's AS, so prepend the ISP.
        intermediates = (isp,) + tuple(a for a in as_path[:-1] if a != isp)
        paths.append(intermediates)
        ingress = routing.anycast_ingress(isp_ug)
        if ingress is not None:
            pops.add(ingress.pop.name)

    if has_direct:
        paths.append(())  # direct: no intermediate ASes
        for peering in deployment.peerings_with(ug.asn):
            pops.add(peering.pop.name)

    return SdwanView(
        ug_id=ug.ug_id,
        isp_asns=isp_asns,
        has_direct_peering=has_direct,
        pops=frozenset(pops),
        paths=tuple(paths),
    )


def sdwan_path_count(scenario: Scenario, ug: UserGroup) -> int:
    """Number of paths an SD-WAN device can select among for this UG."""
    return sdwan_view(scenario, ug).path_count
