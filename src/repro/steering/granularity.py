"""Traffic-control granularity analysis (Fig. 9a).

For each steering mechanism, what fraction of a PoP's ingress traffic moves
*together* when the mechanism acts?

* **BGP** — updating an announcement shifts all traffic of a
  (peering, user AS) pair at once (the paper's optimistic bound using
  community-targeted updates);
* **DNS** — changing an answer shifts all traffic directed by one recursive
  resolver;
* **PAINTER** — steers individual flows, so all traffic falls in the finest
  bucket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.dns.resolvers import ResolverAssignment
from repro.scenario import Scenario

#: Fig. 9a's precision buckets: fraction-of-PoP-traffic a single control
#: action moves, from finest to coarsest.
GRANULARITY_BUCKETS: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.0001),
    (0.0001, 0.001),
    (0.001, 0.01),
    (0.01, 0.1),
    (0.1, 1.0 + 1e-9),
)

BUCKET_LABELS: Tuple[str, ...] = (
    "P<=0.01%",
    "0.01%<=P<0.1%",
    "0.1%<=P<1%",
    "1%<=P<10%",
    "10%<=P<100%",
)


@dataclass(frozen=True)
class PopGranularity:
    """Per-PoP volume shares by control-unit size, for one mechanism."""

    pop_name: str
    mechanism: str
    #: Fraction of PoP volume in each :data:`GRANULARITY_BUCKETS` bucket.
    bucket_shares: Tuple[float, ...]

    def share_finer_than(self, fraction: float) -> float:
        """Volume share controlled at units smaller than ``fraction``."""
        total = 0.0
        for (low, high), share in zip(GRANULARITY_BUCKETS, self.bucket_shares):
            if high <= fraction:
                total += share
        return total


def _bucket_shares(unit_volumes: Sequence[float], pop_volume: float) -> Tuple[float, ...]:
    shares = [0.0] * len(GRANULARITY_BUCKETS)
    if pop_volume <= 0:
        return tuple(shares)
    for volume in unit_volumes:
        fraction = volume / pop_volume
        for index, (low, high) in enumerate(GRANULARITY_BUCKETS):
            if low <= fraction < high or (index == 0 and fraction <= low):
                shares[index] += fraction
                break
        else:  # fraction == 1.0 edge
            shares[-1] += fraction
    return tuple(shares)


class GranularityAnalysis:
    """Computes Fig. 9a's per-PoP granularity profile for each mechanism."""

    def __init__(self, scenario: Scenario, resolvers: ResolverAssignment) -> None:
        self._scenario = scenario
        self._resolvers = resolvers
        # Anycast ingress decides which PoP each UG's traffic arrives at.
        self._ingress_by_ug: Dict[int, Tuple[str, int]] = {}
        for ug in scenario.user_groups:
            peering = scenario.routing.anycast_ingress(ug)
            assert peering is not None
            self._ingress_by_ug[ug.ug_id] = (peering.pop.name, peering.peering_id)

    def pop_volumes(self) -> Dict[str, float]:
        volumes: Dict[str, float] = {}
        for ug in self._scenario.user_groups:
            pop_name, _pid = self._ingress_by_ug[ug.ug_id]
            volumes[pop_name] = volumes.get(pop_name, 0.0) + ug.volume
        return volumes

    def top_pops(self, count: int = 10) -> List[str]:
        volumes = self.pop_volumes()
        return sorted(volumes, key=lambda name: -volumes[name])[:count]

    def _units_bgp(self, pop_name: str) -> List[float]:
        """(peering, user AS) volumes at one PoP."""
        units: Dict[Tuple[int, int], float] = {}
        for ug in self._scenario.user_groups:
            name, pid = self._ingress_by_ug[ug.ug_id]
            if name != pop_name:
                continue
            key = (pid, ug.asn)
            units[key] = units.get(key, 0.0) + ug.volume
        return list(units.values())

    def _units_dns(self, pop_name: str) -> List[float]:
        """Per-resolver volumes at one PoP."""
        units: Dict[int, float] = {}
        for ug in self._scenario.user_groups:
            name, _pid = self._ingress_by_ug[ug.ug_id]
            if name != pop_name:
                continue
            resolver = self._resolvers.resolver_for(ug)
            units[resolver.resolver_id] = units.get(resolver.resolver_id, 0.0) + ug.volume
        return list(units.values())

    def _painter_shares(
        self, pop_name: str, pop_volume: float, flows_per_volume: float = 1e6
    ) -> Tuple[float, ...]:
        """Per-flow control: bucket each UG's volume by its *flow* size.

        A UG of volume v carries ~v*flows_per_volume concurrent flows, so a
        single control action moves v/n_flows of the PoP — computed directly
        instead of materializing the flows.
        """
        shares = [0.0] * len(GRANULARITY_BUCKETS)
        if pop_volume <= 0:
            return tuple(shares)
        for ug in self._scenario.user_groups:
            name, _pid = self._ingress_by_ug[ug.ug_id]
            if name != pop_name:
                continue
            n_flows = max(1, int(ug.volume * flows_per_volume))
            unit_fraction = (ug.volume / n_flows) / pop_volume
            for index, (low, high) in enumerate(GRANULARITY_BUCKETS):
                if unit_fraction < high or index == len(GRANULARITY_BUCKETS) - 1:
                    shares[index] += ug.volume / pop_volume
                    break
        return tuple(shares)

    def analyze_pop(self, pop_name: str) -> Dict[str, PopGranularity]:
        pop_volume = self.pop_volumes().get(pop_name, 0.0)
        result = {}
        for mechanism, units in (
            ("bgp", self._units_bgp(pop_name)),
            ("dns", self._units_dns(pop_name)),
        ):
            shares = _bucket_shares(units, pop_volume)
            result[mechanism] = PopGranularity(
                pop_name=pop_name, mechanism=mechanism, bucket_shares=shares
            )
        result["painter"] = PopGranularity(
            pop_name=pop_name,
            mechanism="painter",
            bucket_shares=self._painter_shares(pop_name, pop_volume),
        )
        return result

    def analyze_all(self) -> Dict[str, PopGranularity]:
        """The 'All' column: aggregate over every PoP, per mechanism."""
        total_volume = sum(self.pop_volumes().values())
        aggregated: Dict[str, List[float]] = {
            "bgp": [0.0] * len(GRANULARITY_BUCKETS),
            "dns": [0.0] * len(GRANULARITY_BUCKETS),
            "painter": [0.0] * len(GRANULARITY_BUCKETS),
        }
        for pop_name, volume in self.pop_volumes().items():
            per_pop = self.analyze_pop(pop_name)
            weight = volume / total_volume if total_volume else 0.0
            for mechanism, granularity in per_pop.items():
                for index, share in enumerate(granularity.bucket_shares):
                    aggregated[mechanism][index] += share * weight
        return {
            mechanism: PopGranularity(
                pop_name="all", mechanism=mechanism, bucket_shares=tuple(shares)
            )
            for mechanism, shares in aggregated.items()
        }
