"""A common contract over steering strategies, for conformance testing.

Every steering mechanism in this package answers the same question through
a different lens: *which ingress should each UG's traffic use?*  PAINTER
answers with prefix advertisements + per-flow selection, the communities
strategy with action-tagged announcements, PECAN with single-ISP prefixes,
DNS with resolver-granular answers, SD-WAN with ISP selection.  This module
normalizes them behind one interface so properties can be asserted over
*all* of them at once (and over strategies added later, for free):

* a strategy's raw chooser proposes a peering per UG (or ``None``);
* the harness applies the **anycast-fallback contract**: proposals outside
  the UG's policy-compliant candidate set, or worse than anycast on modeled
  latency, clamp to ``None`` (= stay on anycast).  This mirrors PAINTER's
  Traffic Manager, which always keeps anycast as a fallback destination.
  Mechanism-specific penalties (DNS's inability to fall back per flow,
  SD-WAN's limited path set) are measured by their dedicated analyses; the
  registry isolates *steering choice quality* under equal fallback rules.

The conformance properties every registered strategy then satisfies by
construction or by test (``tests/test_steering_communities.py``):

(a) every choice is in the UG's candidate set (or ``None``);
(b) choices are deterministic in ``(scenario, budget, seed)``;
(c) no UG is worse than anycast on modeled latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.scenario import Scenario


@dataclass(frozen=True)
class SteeringChoice:
    """One UG's final (contract-clamped) steering decision."""

    ug_id: int
    #: ``None`` means the UG stays on the anycast default.
    peering_id: Optional[int]
    #: Modeled latency of the final choice (anycast latency when ``None``).
    latency_ms: float


@dataclass(frozen=True)
class SteeringOutcome:
    """A strategy's decisions for every UG, in ``scenario.user_groups`` order."""

    strategy: str
    budget: int
    seed: int
    choices: Tuple[SteeringChoice, ...]

    def choice_of(self, ug_id: int) -> SteeringChoice:
        for choice in self.choices:
            if choice.ug_id == ug_id:
                return choice
        raise KeyError(f"no choice recorded for UG {ug_id}")


#: A raw chooser: (scenario, budget, seed) -> {ug_id: proposed peering or None}.
ChooserFn = Callable[[Scenario, int, int], Mapping[int, Optional[int]]]

_STRATEGIES: Dict[str, ChooserFn] = {}


def register_strategy(name: str) -> Callable[[ChooserFn], ChooserFn]:
    """Register a raw chooser under ``name`` (decorator)."""

    def wrap(fn: ChooserFn) -> ChooserFn:
        if name in _STRATEGIES:
            raise ValueError(f"strategy {name!r} already registered")
        _STRATEGIES[name] = fn
        return fn

    return wrap


def strategy_names() -> List[str]:
    return sorted(_STRATEGIES)


def run_strategy(
    name: str, scenario: Scenario, budget: int = 8, seed: int = 0
) -> SteeringOutcome:
    """Run a registered strategy and apply the anycast-fallback contract."""
    try:
        chooser = _STRATEGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown strategy {name!r}; registered: {strategy_names()}"
        ) from None
    raw = chooser(scenario, budget, seed)
    deployment = scenario.deployment
    model = scenario.latency_model
    choices: List[SteeringChoice] = []
    for ug in scenario.user_groups:
        anycast = scenario.anycast_latency_ms(ug)
        pid = raw.get(ug.ug_id)
        latency = anycast
        if pid is not None:
            if pid not in scenario.catalog.ingress_ids(ug):
                pid = None  # outside the candidate set: clamp to anycast
            else:
                proposed = model.latency_ms(ug, deployment.peering(pid))
                if proposed is None or proposed >= anycast:
                    pid = None  # no better than the fallback: stay on anycast
                else:
                    latency = proposed
        choices.append(SteeringChoice(ug_id=ug.ug_id, peering_id=pid, latency_ms=latency))
    return SteeringOutcome(
        strategy=name, budget=budget, seed=seed, choices=tuple(choices)
    )


# -- built-in strategy adapters ----------------------------------------------


@register_strategy("painter")
def _painter_chooser(
    scenario: Scenario, budget: int, seed: int
) -> Dict[int, Optional[int]]:
    from repro.experiments.fig6 import painter_budget_configs

    config = painter_budget_configs(scenario, [budget])[budget]
    routing = scenario.routing
    raw: Dict[int, Optional[int]] = {}
    for ug in scenario.user_groups:
        anycast = scenario.anycast_latency_ms(ug)
        best_pid: Optional[int] = None
        best_latency = anycast
        for prefix in config.prefixes:
            advertised = config.peerings_for(prefix)
            latency = routing.latency_for(ug, advertised)
            if latency is not None and latency < best_latency:
                ingress = routing.ingress_for(ug, advertised)
                assert ingress is not None
                best_latency = latency
                best_pid = ingress.peering_id
        raw[ug.ug_id] = best_pid
    return raw


@register_strategy("communities")
def _communities_chooser(
    scenario: Scenario, budget: int, seed: int
) -> Dict[int, Optional[int]]:
    from repro.steering.communities import CommunityRouting, solve_communities

    solution = solve_communities(scenario, budget)
    router = CommunityRouting(scenario)
    raw: Dict[int, Optional[int]] = {}
    for ug in scenario.user_groups:
        anycast = scenario.anycast_latency_ms(ug)
        best_pid: Optional[int] = None
        best_latency = anycast
        for announcement in solution.announcements:
            ingress = router.ingress_for(ug, announcement)
            if ingress is None:
                continue
            latency = scenario.latency_model.latency_ms(ug, ingress)
            if latency is not None and latency < best_latency:
                best_latency = latency
                best_pid = ingress.peering_id
        raw[ug.ug_id] = best_pid
    return raw


@register_strategy("pecan")
def _pecan_chooser(
    scenario: Scenario, budget: int, seed: int
) -> Dict[int, Optional[int]]:
    from repro.steering.pecan import pecan_config

    config = pecan_config(scenario, budget)
    routing = scenario.routing
    raw: Dict[int, Optional[int]] = {}
    for ug in scenario.user_groups:
        anycast = scenario.anycast_latency_ms(ug)
        best_pid: Optional[int] = None
        best_latency = anycast
        for prefix in config.prefixes:
            advertised = config.peerings_for(prefix)
            latency = routing.latency_for(ug, advertised)
            if latency is not None and latency < best_latency:
                ingress = routing.ingress_for(ug, advertised)
                assert ingress is not None
                best_latency = latency
                best_pid = ingress.peering_id
        raw[ug.ug_id] = best_pid
    return raw


@register_strategy("dns")
def _dns_chooser(
    scenario: Scenario, budget: int, seed: int
) -> Dict[int, Optional[int]]:
    from repro.dns.resolvers import ResolverAssignment, ResolverConfig
    from repro.experiments.fig6 import painter_budget_configs

    config = painter_budget_configs(scenario, [budget])[budget]
    resolvers = ResolverAssignment(scenario, ResolverConfig(seed=seed))
    routing = scenario.routing
    raw: Dict[int, Optional[int]] = {}

    def best_prefix_for(ugs) -> Optional[int]:
        """The shared answer: best aggregate prefix for the resolver's UGs."""
        best: Optional[int] = None
        best_total = 0.0
        for prefix in config.prefixes:
            advertised = config.peerings_for(prefix)
            total = 0.0
            for ug in ugs:
                latency = routing.latency_for(ug, advertised)
                if latency is None:
                    continue
                total += ug.volume * (scenario.anycast_latency_ms(ug) - latency)
            if total > best_total:
                best_total = total
                best = prefix
        return best

    for resolver in resolvers.resolvers:
        ugs = resolvers.ugs_of(resolver)
        if not ugs:
            continue
        if resolver.supports_ecs:
            # ECS: per-client-subnet answers, i.e. per-UG best prefix.
            for ug in ugs:
                anycast = scenario.anycast_latency_ms(ug)
                best_pid: Optional[int] = None
                best_latency = anycast
                for prefix in config.prefixes:
                    advertised = config.peerings_for(prefix)
                    latency = routing.latency_for(ug, advertised)
                    if latency is not None and latency < best_latency:
                        ingress = routing.ingress_for(ug, advertised)
                        assert ingress is not None
                        best_latency = latency
                        best_pid = ingress.peering_id
                raw[ug.ug_id] = best_pid
            continue
        prefix = best_prefix_for(ugs)
        for ug in ugs:
            if prefix is None:
                raw[ug.ug_id] = None
                continue
            ingress = routing.ingress_for(ug, config.peerings_for(prefix))
            raw[ug.ug_id] = None if ingress is None else ingress.peering_id
    return raw


@register_strategy("sdwan")
def _sdwan_chooser(
    scenario: Scenario, budget: int, seed: int
) -> Dict[int, Optional[int]]:
    from repro.steering.sdwan import sdwan_view
    from repro.usergroups.usergroup import UserGroup

    graph = scenario.graph
    routing = scenario.routing
    raw: Dict[int, Optional[int]] = {}
    for ug in scenario.user_groups:
        view = sdwan_view(scenario, ug)
        best_pid: Optional[int] = None
        best_latency = float("inf")
        for isp in view.isp_asns:
            isp_ug = UserGroup(
                ug_id=10_000_000 + isp,
                asn=isp,
                metro=graph.get_as(isp).home_metro or ug.metro,
                volume=0.0,
            )
            ingress = routing.anycast_ingress(isp_ug)
            if ingress is None:
                continue
            latency = scenario.latency_model.latency_ms(ug, ingress)
            if latency is not None and latency < best_latency:
                best_latency = latency
                best_pid = ingress.peering_id
        if view.has_direct_peering:
            for peering in scenario.deployment.peerings_with(ug.asn):
                latency = scenario.latency_model.latency_ms(ug, peering)
                if latency is not None and latency < best_latency:
                    best_latency = latency
                    best_pid = peering.peering_id
        raw[ug.ug_id] = best_pid
    return raw
