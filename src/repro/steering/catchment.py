"""Anycast catchment analysis (the paper's [32]/[54] context).

Under anycast, BGP — not the cloud — decides which PoP each UG's traffic
lands at; the resulting per-PoP *catchments* explain both anycast's appeal
(most users land somewhere close) and its pathologies (some users land an
ocean away — the paper's Fig. 1 problem, and the inflated tail PAINTER
fixes).  This analysis tabulates catchments from the ground-truth oracle and
measures that inflated tail directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.scenario import Scenario
from repro.topology.geo import haversine_km
from repro.usergroups.usergroup import UserGroup
from repro.util import percentile


@dataclass(frozen=True)
class CatchmentEntry:
    """One UG's anycast landing spot."""

    ug_id: int
    pop_name: str
    distance_km: float
    closest_pop_name: str
    closest_distance_km: float

    @property
    def inflation_km(self) -> float:
        """Extra distance versus the geographically closest PoP."""
        return self.distance_km - self.closest_distance_km

    @property
    def landed_at_closest(self) -> bool:
        return self.pop_name == self.closest_pop_name


class CatchmentAnalysis:
    """Per-PoP anycast catchments for a scenario."""

    def __init__(self, scenario: Scenario) -> None:
        self._scenario = scenario
        self._entries: List[CatchmentEntry] = []
        for ug in scenario.user_groups:
            ingress = scenario.routing.anycast_ingress(ug)
            assert ingress is not None
            closest = scenario.deployment.nearest_pop(ug.location)
            self._entries.append(
                CatchmentEntry(
                    ug_id=ug.ug_id,
                    pop_name=ingress.pop.name,
                    distance_km=haversine_km(ug.location, ingress.pop.location),
                    closest_pop_name=closest.name,
                    closest_distance_km=haversine_km(ug.location, closest.location),
                )
            )

    @property
    def entries(self) -> List[CatchmentEntry]:
        return list(self._entries)

    def catchment_sizes(self) -> Dict[str, int]:
        """UG count per PoP catchment."""
        sizes: Dict[str, int] = {}
        for entry in self._entries:
            sizes[entry.pop_name] = sizes.get(entry.pop_name, 0) + 1
        return sizes

    def catchment_volumes(self) -> Dict[str, float]:
        by_id = {ug.ug_id: ug for ug in self._scenario.user_groups}
        volumes: Dict[str, float] = {}
        for entry in self._entries:
            volumes[entry.pop_name] = (
                volumes.get(entry.pop_name, 0.0) + by_id[entry.ug_id].volume
            )
        return volumes

    def fraction_at_closest_pop(self) -> float:
        if not self._entries:
            return 0.0
        return sum(e.landed_at_closest for e in self._entries) / len(self._entries)

    def fraction_within_km(self, extra_km: float) -> float:
        """Share of UGs landing within ``extra_km`` of their closest PoP.

        Prior work found ~90% of a large CDN's traffic lands within 1,000 km
        of the closest possible PoP — with a heavy tail beyond it.
        """
        if not self._entries:
            return 0.0
        return sum(e.inflation_km <= extra_km for e in self._entries) / len(self._entries)

    def inflation_percentiles(
        self, fractions: Sequence[float] = (0.5, 0.9, 0.99)
    ) -> Dict[float, float]:
        values = sorted(e.inflation_km for e in self._entries)
        return {f: percentile(values, f) for f in fractions}

    def worst_entries(self, count: int = 5) -> List[CatchmentEntry]:
        """The Fig. 1 cases: UGs hauled farthest past their closest PoP."""
        return sorted(self._entries, key=lambda e: -e.inflation_km)[:count]
