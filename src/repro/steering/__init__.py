"""Steering-mechanism comparisons: granularity, DNS steering, SD-WAN,
action communities, and the cross-strategy conformance registry."""

from repro.steering.catchment import CatchmentAnalysis, CatchmentEntry
from repro.steering.communities import (
    AnnounceToAction,
    CommunitiesSolution,
    CommunityAnnouncement,
    CommunityRouting,
    MedAction,
    NoExportAction,
    PrependAction,
    communities_benefit,
    communities_budget_configs,
    communities_choices,
    compile_actions,
    coverage_of_best_ingress,
    parse_community,
    solve_communities,
)
from repro.steering.dns_steering import DnsSteeringResult, evaluate_dns_steering
from repro.steering.pecan import best_single_isp, compare_pecan_to_painter, pecan_config
from repro.steering.registry import (
    SteeringChoice,
    SteeringOutcome,
    register_strategy,
    run_strategy,
    strategy_names,
)
from repro.steering.granularity import (
    BUCKET_LABELS,
    GRANULARITY_BUCKETS,
    GranularityAnalysis,
    PopGranularity,
)
from repro.steering.resilience import (
    AvoidanceResult,
    ExposureComparison,
    PainterView,
    ResilienceAnalysis,
    fraction_fully_avoidable,
)
from repro.steering.sdwan import SdwanView, sdwan_path_count, sdwan_view

__all__ = [
    "AnnounceToAction",
    "AvoidanceResult",
    "CatchmentAnalysis",
    "CatchmentEntry",
    "BUCKET_LABELS",
    "CommunitiesSolution",
    "CommunityAnnouncement",
    "CommunityRouting",
    "DnsSteeringResult",
    "ExposureComparison",
    "GRANULARITY_BUCKETS",
    "GranularityAnalysis",
    "PainterView",
    "best_single_isp",
    "compare_pecan_to_painter",
    "pecan_config",
    "MedAction",
    "NoExportAction",
    "PopGranularity",
    "PrependAction",
    "ResilienceAnalysis",
    "SdwanView",
    "SteeringChoice",
    "SteeringOutcome",
    "communities_benefit",
    "communities_budget_configs",
    "communities_choices",
    "compile_actions",
    "coverage_of_best_ingress",
    "evaluate_dns_steering",
    "fraction_fully_avoidable",
    "parse_community",
    "register_strategy",
    "run_strategy",
    "sdwan_path_count",
    "sdwan_view",
    "solve_communities",
    "strategy_names",
]
