"""Steering-mechanism comparisons: granularity, DNS steering, SD-WAN."""

from repro.steering.catchment import CatchmentAnalysis, CatchmentEntry
from repro.steering.dns_steering import DnsSteeringResult, evaluate_dns_steering
from repro.steering.pecan import best_single_isp, compare_pecan_to_painter, pecan_config
from repro.steering.granularity import (
    BUCKET_LABELS,
    GRANULARITY_BUCKETS,
    GranularityAnalysis,
    PopGranularity,
)
from repro.steering.resilience import (
    AvoidanceResult,
    ExposureComparison,
    PainterView,
    ResilienceAnalysis,
    fraction_fully_avoidable,
)
from repro.steering.sdwan import SdwanView, sdwan_path_count, sdwan_view

__all__ = [
    "AvoidanceResult",
    "CatchmentAnalysis",
    "CatchmentEntry",
    "BUCKET_LABELS",
    "DnsSteeringResult",
    "ExposureComparison",
    "GRANULARITY_BUCKETS",
    "GranularityAnalysis",
    "PainterView",
    "best_single_isp",
    "compare_pecan_to_painter",
    "pecan_config",
    "PopGranularity",
    "ResilienceAnalysis",
    "SdwanView",
    "evaluate_dns_steering",
    "fraction_fully_avoidable",
    "sdwan_path_count",
    "sdwan_view",
]
