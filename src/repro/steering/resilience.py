"""Path exposure and resilience analysis (Fig. 11).

Fig. 11a compares how many paths and PoPs PAINTER exposes per UG against
SD-WAN multihoming.  PAINTER's path counts come in two flavors:

* **best policy-compliant** (lower bound): one path per policy-compliant
  peering at the UG's nearby PoPs — what the Advertisement Orchestrator can
  expose with plain advertisements;
* **all policy-compliant** (upper bound): additionally counting distinct
  first-hop ISPs able to carry the UG's traffic to each peering, modeling a
  hypothetical orchestrator that manipulates advertisement attributes
  (prepending etc.) to expose them.

Nearby PoPs follow the paper: the PoPs at which 90% of the UG's region's
traffic ingresses — excluding clearly high-latency options.

Fig. 11b measures, for each UG, the fraction of ASes on the *default*
(anycast) path that an alternate path can avoid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.scenario import Scenario
from repro.steering.sdwan import SdwanView, sdwan_view
from repro.topology.graph import transit_path_exists
from repro.usergroups.usergroup import UserGroup

#: Fraction of regional traffic whose ingress PoPs count as "nearby".
REGIONAL_COVERAGE = 0.90


@dataclass(frozen=True)
class PainterView:
    """PAINTER's exposable paths/PoPs for one UG."""

    ug_id: int
    nearby_pops: FrozenSet[str]
    best_paths: int
    all_paths: int
    pops: FrozenSet[str]


@dataclass(frozen=True)
class ExposureComparison:
    """Fig. 11a row for one UG."""

    ug_id: int
    painter_best_paths: int
    painter_all_paths: int
    painter_pops: int
    sdwan_paths: int
    sdwan_pops: int

    @property
    def best_paths_difference(self) -> int:
        return self.painter_best_paths - self.sdwan_paths

    @property
    def all_paths_difference(self) -> int:
        return self.painter_all_paths - self.sdwan_paths

    @property
    def pops_difference(self) -> int:
        return self.painter_pops - self.sdwan_pops


@dataclass(frozen=True)
class AvoidanceResult:
    """Fig. 11b row for one UG."""

    ug_id: int
    default_path_ases: Tuple[int, ...]
    painter_avoidable_fraction: float
    sdwan_avoidable_fraction: float


class ResilienceAnalysis:
    """Computes Fig. 11's comparisons over a scenario."""

    def __init__(self, scenario: Scenario) -> None:
        self._scenario = scenario
        self._regional_pops_cache: Dict[str, FrozenSet[str]] = {}
        self._reach_cache: Dict[Tuple[int, int], bool] = {}

    # -- nearby PoPs -------------------------------------------------------

    def regional_pops(self, region: str) -> FrozenSet[str]:
        """PoPs receiving 90% of the region's anycast traffic."""
        cached = self._regional_pops_cache.get(region)
        if cached is not None:
            return cached
        volumes: Dict[str, float] = {}
        total = 0.0
        for ug in self._scenario.user_groups:
            if ug.metro.region != region:
                continue
            ingress = self._scenario.routing.anycast_ingress(ug)
            if ingress is None:
                continue
            volumes[ingress.pop.name] = volumes.get(ingress.pop.name, 0.0) + ug.volume
            total += ug.volume
        chosen: Set[str] = set()
        covered = 0.0
        for pop_name in sorted(volumes, key=lambda name: -volumes[name]):
            if total > 0 and covered >= REGIONAL_COVERAGE * total:
                break
            chosen.add(pop_name)
            covered += volumes[pop_name]
        if not chosen:
            # Region hosts no (other) UGs: fall back to the nearest PoP.
            chosen = {self._nearest_pop_name(region)}
        result = frozenset(chosen)
        self._regional_pops_cache[region] = result
        return result

    def _nearest_pop_name(self, region: str) -> str:
        """The deployment PoP geographically nearest the region.

        The region is located by its world metros (or, failing that, by the
        scenario's UGs in it); the nearest PoP is the one minimizing the
        distance to any of those anchor points.
        """
        from repro.topology.geo import haversine_km, metros_in_region

        anchors = [metro.location for metro in metros_in_region(region)]
        if not anchors:
            anchors = [
                ug.location
                for ug in self._scenario.user_groups
                if ug.metro.region == region
            ]
        pops = self._scenario.deployment.pops
        if not anchors:
            return pops[0].name
        return min(
            pops,
            key=lambda pop: min(
                haversine_km(pop.location, anchor) for anchor in anchors
            ),
        ).name

    # -- PAINTER exposure ---------------------------------------------------

    def _isp_reaches(self, isp_asn: int, peer_asn: int) -> bool:
        key = (isp_asn, peer_asn)
        cached = self._reach_cache.get(key)
        if cached is None:
            if isp_asn == peer_asn:
                cached = True
            else:
                cached = transit_path_exists(self._scenario.graph, isp_asn, peer_asn)
            self._reach_cache[key] = cached
        return cached

    def painter_view(self, ug: UserGroup) -> PainterView:
        scenario = self._scenario
        nearby = self.regional_pops(ug.metro.region)
        compliant = scenario.catalog.ingresses(ug)
        at_nearby = [p for p in compliant if p.pop.name in nearby]
        providers = (
            scenario.graph.providers(ug.asn) if ug.asn in scenario.graph else []
        )
        best = len(at_nearby)
        all_paths = 0
        for peering in at_nearby:
            if peering.peer_asn == ug.asn:
                all_paths += 1  # the direct path
                continue
            usable_isps = sum(
                1 for isp in providers if self._isp_reaches(isp, peering.peer_asn)
            )
            all_paths += max(1, usable_isps)
        return PainterView(
            ug_id=ug.ug_id,
            nearby_pops=nearby,
            best_paths=best,
            all_paths=all_paths,
            pops=frozenset(p.pop.name for p in at_nearby),
        )

    def compare_exposure(self, ug: UserGroup) -> ExposureComparison:
        painter = self.painter_view(ug)
        sdwan = sdwan_view(self._scenario, ug)
        return ExposureComparison(
            ug_id=ug.ug_id,
            painter_best_paths=painter.best_paths,
            painter_all_paths=painter.all_paths,
            painter_pops=len(painter.pops),
            sdwan_paths=sdwan.path_count,
            sdwan_pops=len(sdwan.pops),
        )

    def compare_all(self) -> List[ExposureComparison]:
        return [self.compare_exposure(ug) for ug in self._scenario.user_groups]

    # -- Fig. 11b: avoiding default-path ASes ----------------------------------

    def _painter_alternate_paths(self, ug: UserGroup) -> List[Tuple[int, ...]]:
        """AS-level paths via each policy-compliant peering, advertised alone."""
        routing = self._scenario.routing
        paths: List[Tuple[int, ...]] = []
        for pid in sorted(self._scenario.catalog.ingress_ids(ug)):
            as_path = routing.as_path(ug, frozenset({pid}))
            if as_path is None:
                continue
            paths.append(tuple(a for a in as_path[:-1]))  # drop the cloud
        return paths

    def avoidance(self, ug: UserGroup) -> AvoidanceResult:
        routing = self._scenario.routing
        default = routing.default_as_path(ug)
        # Intermediate ASes: drop the cloud (last) and the UG's own access
        # ISP (first hop) — no ingress mechanism can route around the
        # enterprise's only ISP ("PAINTER cannot avoid ... problems due to an
        # enterprise's single ISP", §3.3), so the comparison is over the ASes
        # beyond it.
        default_intermediates: Tuple[int, ...] = (
            tuple(a for a in default[1:-1]) if default is not None else ()
        )

        def avoidable_fraction(alternates: Sequence[Tuple[int, ...]]) -> float:
            if not default_intermediates:
                return 1.0
            avoidable = 0
            for asn in default_intermediates:
                if any(asn not in path for path in alternates):
                    avoidable += 1
            return avoidable / len(default_intermediates)

        painter_paths = self._painter_alternate_paths(ug)
        sdwan = sdwan_view(self._scenario, ug)
        return AvoidanceResult(
            ug_id=ug.ug_id,
            default_path_ases=default_intermediates,
            painter_avoidable_fraction=avoidable_fraction(painter_paths),
            sdwan_avoidable_fraction=avoidable_fraction(sdwan.paths),
        )

    def avoidance_all(self) -> List[AvoidanceResult]:
        return [self.avoidance(ug) for ug in self._scenario.user_groups]


def fraction_fully_avoidable(results: Sequence[AvoidanceResult], painter: bool) -> float:
    """Fraction of UGs able to avoid *all* default-path ASes (Fig. 11b text)."""
    if not results:
        raise ValueError("no results")
    if painter:
        count = sum(1 for r in results if r.painter_avoidable_fraction >= 1.0)
    else:
        count = sum(1 for r in results if r.sdwan_avoidable_fraction >= 1.0)
    return count / len(results)
