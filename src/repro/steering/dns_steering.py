"""PAINTER with DNS-based client assignment (Fig. 9b).

"Using DNS, PAINTER maps each recursive resolver to the prefix with the best
overall benefit for traffic directed by that resolver. The prefix may be
optimal for some of the resolver's clients but not others."  ECS-capable
resolvers (Google Public DNS in practice) can map per client /24, i.e. per
UG here.  Comparing this against PAINTER's per-flow Traffic Manager isolates
the value of fine-grained steering: the paper finds DNS sacrifices roughly
half the benefit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.core.advertisement import AdvertisementConfig
from repro.core.benefit import BenefitEvaluator
from repro.dns.resolvers import ResolverAssignment
from repro.scenario import Scenario
from repro.usergroups.usergroup import UserGroup


@dataclass(frozen=True)
class DnsSteeringResult:
    """Benefit of one configuration under per-flow vs DNS steering."""

    painter_benefit: float
    dns_benefit: float
    #: resolver_id -> chosen prefix (non-ECS resolvers only).
    resolver_choices: Mapping[int, Optional[int]]

    @property
    def dns_fraction_of_painter(self) -> float:
        if self.painter_benefit <= 0:
            return 1.0
        return self.dns_benefit / self.painter_benefit


def _ug_improvement_for_prefix(
    evaluator: BenefitEvaluator,
    ug: UserGroup,
    config: AdvertisementConfig,
    prefix: Optional[int],
) -> float:
    """Improvement when the UG is pinned to one prefix (None = anycast).

    Unlike the Traffic Manager, a DNS-directed client cannot fall back to
    anycast per flow — it connects to whatever address the resolver handed
    out — so the improvement may be *negative* for clients the shared answer
    doesn't suit.  This asymmetry is exactly what Fig. 9b measures.
    """
    if prefix is None:
        return 0.0
    anycast = evaluator.scenario.anycast_latency_ms(ug)
    latency = evaluator.expected_prefix_latency(ug, config.peerings_for(prefix))
    if latency is None:
        return 0.0
    return anycast - latency


def _ug_realized_improvement_for_prefix(
    scenario: Scenario,
    ug: UserGroup,
    config: AdvertisementConfig,
    prefix: Optional[int],
) -> float:
    """Ground-truth improvement when pinned to one prefix (no floor)."""
    if prefix is None:
        return 0.0
    anycast = scenario.anycast_latency_ms(ug)
    latency = scenario.routing.latency_for(ug, config.peerings_for(prefix))
    if latency is None:
        return 0.0
    return anycast - latency


def evaluate_dns_steering(
    scenario: Scenario,
    config: AdvertisementConfig,
    resolvers: ResolverAssignment,
    evaluator: Optional[BenefitEvaluator] = None,
    realized: bool = True,
) -> DnsSteeringResult:
    """Compare per-flow steering against resolver-granular DNS steering.

    With ``realized`` (default) improvements come from the ground-truth
    oracle — each UG's traffic actually lands on one ingress per prefix,
    exposing the cost of handing diverse UGs the same answer.  With
    ``realized=False`` the routing model's expectations (Eq. 2) are used
    instead, which requires ``evaluator``.
    """
    if not realized and evaluator is None:
        raise ValueError("model-based evaluation requires an evaluator")

    def per_ug_best(ug: UserGroup) -> float:
        if realized:
            from repro.core.benefit import realized_improvement

            return realized_improvement(scenario, ug, config)
        assert evaluator is not None
        return evaluator.expected_improvement(ug, config)

    def per_ug_pinned(ug: UserGroup, prefix: Optional[int]) -> float:
        if realized:
            return _ug_realized_improvement_for_prefix(scenario, ug, config, prefix)
        assert evaluator is not None
        return _ug_improvement_for_prefix(evaluator, ug, config, prefix)

    painter_benefit = 0.0
    dns_benefit = 0.0
    resolver_choices: Dict[int, Optional[int]] = {}

    # PAINTER: each UG independently uses its best prefix (or anycast).
    for ug in scenario.user_groups:
        painter_benefit += ug.volume * per_ug_best(ug)

    # DNS: one prefix per (non-ECS) resolver, the best aggregate choice.
    for resolver in resolvers.resolvers:
        ugs = resolvers.ugs_of(resolver)
        if not ugs:
            continue
        if resolver.supports_ecs:
            # ECS steers per client subnet: equivalent to per-UG choice.
            for ug in ugs:
                dns_benefit += ug.volume * per_ug_best(ug)
            continue
        best_prefix: Optional[int] = None
        best_total = 0.0  # anycast-for-everyone scores zero
        for prefix in config.prefixes:
            total = sum(ug.volume * per_ug_pinned(ug, prefix) for ug in ugs)
            if total > best_total:
                best_total = total
                best_prefix = prefix
        resolver_choices[resolver.resolver_id] = best_prefix
        dns_benefit += best_total

    return DnsSteeringResult(
        painter_benefit=painter_benefit,
        dns_benefit=dns_benefit,
        resolver_choices=resolver_choices,
    )
