"""The Traffic Manager: TM-Edge, TM-PoP, tunnels, flows, failover.

Two data planes implement the same :class:`DataPlane` protocol:

* :class:`ScalarDataPlane` — the per-:class:`FlowEntry` reference;
* :class:`VectorFlowTable` — numpy struct-of-arrays columns, batched
  admit/forward/remap for millions of flows per step.
"""

from repro.traffic_manager.dataplane import (
    DataPlane,
    FlowBatch,
    ForwardResult,
    ScalarDataPlane,
    TM_SNAPSHOT_VERSION,
    VectorFlowTable,
    flow_key,
    plane_from_snapshot,
)
from repro.traffic_manager.failover import (
    AnycastEpoch,
    DowntimeEvent,
    FailoverConfig,
    FailoverResult,
    PathSpec,
    default_fig10_paths,
    run_failover,
)
from repro.traffic_manager.flows import FiveTuple, FlowEntry, FlowTable
from repro.traffic_manager.load_balancing import (
    DestinationLoad,
    LoadAwareSelector,
    effective_latency_ms,
    greedy_spread,
    proportional_spread,
)
from repro.traffic_manager.multipath import (
    MultipathConnection,
    Subflow,
    failover_comparison,
)
from repro.traffic_manager.selection import (
    LowestLatencySelector,
    SelectionPolicyConfig,
    SelectorBank,
)
from repro.traffic_manager.session import (
    EdgeSession,
    SessionFlow,
    SessionMetrics,
    constant_oracle,
    failing_oracle,
)
from repro.traffic_manager.tm_edge import TMEdge, TunnelState
from repro.traffic_manager.tm_pop import PrefixDirectory, TMPoP
from repro.traffic_manager.tunnel import (
    ENCAP_OVERHEAD_BYTES,
    NatBinding,
    NatExhaustedError,
    PORTS_PER_ADDRESS,
    Packet,
    TMPoPNat,
    decapsulate,
    encapsulate,
    overhead_fraction,
)

__all__ = [
    "AnycastEpoch",
    "DataPlane",
    "DestinationLoad",
    "DowntimeEvent",
    "ENCAP_OVERHEAD_BYTES",
    "FlowBatch",
    "ForwardResult",
    "LoadAwareSelector",
    "MultipathConnection",
    "ScalarDataPlane",
    "SelectorBank",
    "Subflow",
    "TM_SNAPSHOT_VERSION",
    "VectorFlowTable",
    "effective_latency_ms",
    "failover_comparison",
    "flow_key",
    "greedy_spread",
    "plane_from_snapshot",
    "proportional_spread",
    "EdgeSession",
    "FailoverConfig",
    "FailoverResult",
    "FiveTuple",
    "FlowEntry",
    "FlowTable",
    "LowestLatencySelector",
    "NatBinding",
    "NatExhaustedError",
    "PORTS_PER_ADDRESS",
    "Packet",
    "PathSpec",
    "PrefixDirectory",
    "SelectionPolicyConfig",
    "SessionFlow",
    "SessionMetrics",
    "constant_oracle",
    "failing_oracle",
    "TMEdge",
    "TMPoP",
    "TMPoPNat",
    "TunnelState",
    "decapsulate",
    "default_fig10_paths",
    "encapsulate",
    "overhead_fraction",
    "run_failover",
]
