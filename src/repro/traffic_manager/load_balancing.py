"""Load-aware destination selection.

PAINTER's stated goal includes mitigating *congestion*, not only path
inflation (§1, §3.1: "One could use PAINTER to optimize any function of
latency").  This selector spreads new flows across the exposed destinations
in proportion to headroom, instead of pinning everything to the single
lowest-latency tunnel: each destination has a capacity, utilization feeds
back into an effective latency (an M/M/1-style penalty), and new flows pick
the destination with the lowest effective latency.  Flow stickiness is
preserved — only *new* flows rebalance, per the Traffic Manager's immutable
flow mapping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional


@dataclass(frozen=True)
class DestinationLoad:
    """Capacity and current load of one destination prefix."""

    prefix: str
    capacity: float
    load: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if self.load < 0:
            raise ValueError("load must be non-negative")

    @property
    def utilization(self) -> float:
        return self.load / self.capacity


def effective_latency_ms(base_rtt_ms: float, utilization: float) -> float:
    """Queueing-inflated latency: base / (1 - utilization), inf at or past 1.

    The M/M/1 waiting-time blowup is a standard stand-in for congestion; the
    exact shape matters less than being convex and divergent at capacity.
    """
    if base_rtt_ms < 0:
        raise ValueError("base rtt must be non-negative")
    if utilization < 0:
        raise ValueError("utilization must be non-negative")
    if utilization >= 1.0:
        return math.inf
    return base_rtt_ms / (1.0 - utilization)


class LoadAwareSelector:
    """Assigns new flows to destinations by effective (congested) latency."""

    def __init__(self) -> None:
        self._destinations: Dict[str, DestinationLoad] = {}
        self._base_rtts: Dict[str, float] = {}

    def add_destination(self, prefix: str, capacity: float, base_rtt_ms: float) -> None:
        if prefix in self._destinations:
            raise ValueError(f"destination {prefix!r} already registered")
        self._destinations[prefix] = DestinationLoad(prefix=prefix, capacity=capacity)
        self._base_rtts[prefix] = base_rtt_ms

    def update_rtt(self, prefix: str, base_rtt_ms: float) -> None:
        if prefix not in self._destinations:
            raise KeyError(f"unknown destination {prefix!r}")
        self._base_rtts[prefix] = base_rtt_ms

    def effective_latencies(self) -> Dict[str, float]:
        return {
            prefix: effective_latency_ms(
                self._base_rtts[prefix], dest.utilization
            )
            for prefix, dest in self._destinations.items()
        }

    def assign_flow(self, demand: float = 1.0) -> Optional[str]:
        """Place a new flow of ``demand`` units; returns the chosen prefix.

        Returns ``None`` when every destination is saturated.
        """
        if demand <= 0:
            raise ValueError("demand must be positive")
        latencies = self.effective_latencies()
        candidates = [p for p, lat in latencies.items() if not math.isinf(lat)]
        if not candidates:
            return None
        chosen = min(candidates, key=lambda p: (latencies[p], p))
        dest = self._destinations[chosen]
        self._destinations[chosen] = DestinationLoad(
            prefix=chosen, capacity=dest.capacity, load=dest.load + demand
        )
        return chosen

    def release_flow(self, prefix: str, demand: float = 1.0) -> None:
        dest = self._destinations.get(prefix)
        if dest is None:
            raise KeyError(f"unknown destination {prefix!r}")
        self._destinations[prefix] = DestinationLoad(
            prefix=prefix, capacity=dest.capacity, load=max(0.0, dest.load - demand)
        )

    def add_load(self, prefix: str, amount: float) -> None:
        """Credit a batch placement (the bulk counterpart of assign_flow)."""
        dest = self._destinations.get(prefix)
        if dest is None:
            raise KeyError(f"unknown destination {prefix!r}")
        if amount < 0:
            raise ValueError("amount must be non-negative")
        self._destinations[prefix] = DestinationLoad(
            prefix=prefix, capacity=dest.capacity, load=dest.load + amount
        )

    def headrooms(self) -> Dict[str, float]:
        """Remaining capacity per destination (0 once saturated)."""
        return {
            prefix: max(0.0, dest.capacity - dest.load)
            for prefix, dest in self._destinations.items()
        }

    def utilizations(self) -> Mapping[str, float]:
        return {p: d.utilization for p, d in self._destinations.items()}

    def max_utilization(self) -> float:
        if not self._destinations:
            return 0.0
        return max(d.utilization for d in self._destinations.values())


def greedy_spread(
    selector: LoadAwareSelector, n_flows: int, demand: float = 1.0
) -> Dict[str, int]:
    """Assign a batch of flows; returns per-destination flow counts."""
    counts: Dict[str, int] = {}
    for _ in range(n_flows):
        chosen = selector.assign_flow(demand)
        if chosen is None:
            break
        counts[chosen] = counts.get(chosen, 0) + 1
    return counts


def proportional_spread(
    selector: LoadAwareSelector, n_flows: int, demand: float = 1.0
) -> Dict[str, int]:
    """Batched approximation of :func:`greedy_spread` in O(#destinations).

    Instead of re-evaluating effective latencies per flow, place the whole
    batch at once: split it across unsaturated destinations in proportion to
    remaining headroom (which is what the one-at-a-time greedy converges to
    for large batches), capped by each destination's capacity.  Flows that
    no destination can absorb are dropped, matching the greedy's early
    ``None`` stop.  Loads on the selector are updated with the placement.
    """
    if n_flows < 0:
        raise ValueError("flow count must be non-negative")
    if demand <= 0:
        raise ValueError("demand must be positive")
    counts: Dict[str, int] = {}
    remaining = n_flows
    # A destination may saturate mid-batch; loop until nothing more fits.
    while remaining > 0:
        headroom = selector.headrooms()
        fits = {p: int(h // demand) for p, h in headroom.items() if h >= demand}
        if not fits:
            break
        total_headroom = sum(headroom[p] for p in fits)
        placed_this_round = 0
        for prefix in sorted(fits):
            budget = remaining - placed_this_round
            if budget <= 0:
                break
            share = headroom[prefix] / total_headroom
            want = max(1, int(round(remaining * share)))
            take = min(want, fits[prefix], budget)
            if take <= 0:
                continue
            selector.add_load(prefix, take * demand)
            counts[prefix] = counts.get(prefix, 0) + take
            placed_this_round += take
        remaining -= placed_this_round
        if placed_this_round == 0:
            break
    return counts
