"""Multipath edge proxy: the MPTCP/MPQUIC variant of TM-Edge (§2.3, §3.2).

The paper situates TM-Edge in cloud-edge network stacks but notes "PAINTER
could use other edge presences such as MPTCP-enabled clients".  A multipath
client opens *subflows* over several exposed prefixes simultaneously, which
buys two things over single-path tunneling:

* **aggregate throughput** — demand splits across paths in proportion to
  their capacity (coupled congestion control approximated as water-filling);
* **zero-loss failover** — when a subflow's path dies, its traffic shifts to
  surviving subflows on the next scheduler decision instead of after a
  detection timeout.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Subflow:
    """One subflow over a destination prefix."""

    prefix: str
    rtt_ms: float
    capacity_mbps: float

    def __post_init__(self) -> None:
        if self.rtt_ms <= 0 and not math.isinf(self.rtt_ms):
            raise ValueError("rtt must be positive")
        if self.capacity_mbps < 0:
            raise ValueError("capacity must be non-negative")

    @property
    def is_up(self) -> bool:
        return not math.isinf(self.rtt_ms) and self.capacity_mbps > 0


class MultipathConnection:
    """A connection striped over several subflows."""

    def __init__(self, subflows: Sequence[Subflow]) -> None:
        if not subflows:
            raise ValueError("need at least one subflow")
        prefixes = [s.prefix for s in subflows]
        if len(prefixes) != len(set(prefixes)):
            raise ValueError("duplicate subflow prefixes")
        self._subflows: Dict[str, Subflow] = {s.prefix: s for s in subflows}

    @property
    def subflows(self) -> List[Subflow]:
        return list(self._subflows.values())

    def live_subflows(self) -> List[Subflow]:
        return [s for s in self._subflows.values() if s.is_up]

    def aggregate_capacity_mbps(self) -> float:
        return sum(s.capacity_mbps for s in self.live_subflows())

    def best_rtt_ms(self) -> float:
        live = self.live_subflows()
        if not live:
            return math.inf
        return min(s.rtt_ms for s in live)

    def schedule(self, demand_mbps: float) -> Dict[str, float]:
        """Split demand across live subflows, lowest-RTT first.

        Mirrors an MPTCP lowest-RTT-first scheduler: fill the fastest
        subflow to capacity, then spill to the next.  Returns per-prefix
        allocated Mbps (may sum to less than demand if capacity-limited).
        """
        if demand_mbps < 0:
            raise ValueError("demand must be non-negative")
        allocation: Dict[str, float] = {}
        remaining = demand_mbps
        for subflow in sorted(self.live_subflows(), key=lambda s: (s.rtt_ms, s.prefix)):
            if remaining <= 0:
                break
            take = min(remaining, subflow.capacity_mbps)
            if take > 0:
                allocation[subflow.prefix] = take
                remaining -= take
        return allocation

    def schedule_many(self, demands_mbps: Sequence[float]) -> List[Dict[str, float]]:
        """Vectorized :meth:`schedule` over a batch of demands.

        The per-demand allocation is identical to calling :meth:`schedule`
        in a loop (each demand sees the full subflow capacities — demands
        model alternative load levels, not concurrent connections), but the
        cumulative fill thresholds are precomputed once, so the per-demand
        work is a binary search instead of a sort.
        """
        ordered = sorted(self.live_subflows(), key=lambda s: (s.rtt_ms, s.prefix))
        demands = np.asarray(list(demands_mbps), dtype=np.float64)
        if np.any(demands < 0):
            raise ValueError("demand must be non-negative")
        if not ordered:
            return [{} for _ in range(len(demands))]
        caps = np.array([s.capacity_mbps for s in ordered], dtype=np.float64)
        # filled[i] = demand consumed before subflow i gets any traffic.
        filled = np.concatenate(([0.0], np.cumsum(caps)))
        # take[j, i] = Mbps placed on subflow i for demand j.
        take = np.clip(demands[:, None] - filled[None, :-1], 0.0, caps[None, :])
        return [
            {
                ordered[i].prefix: float(take[j, i])
                for i in range(len(ordered))
                if take[j, i] > 0
            }
            for j in range(len(demands))
        ]

    def fail_subflow(self, prefix: str) -> "MultipathConnection":
        """The connection after a path failure (subflow marked dead)."""
        if prefix not in self._subflows:
            raise KeyError(f"no subflow on {prefix!r}")
        updated = [
            Subflow(prefix=s.prefix, rtt_ms=math.inf, capacity_mbps=0.0)
            if s.prefix == prefix
            else s
            for s in self._subflows.values()
        ]
        return MultipathConnection(updated)

    def delivered_fraction(self, demand_mbps: float) -> float:
        """Fraction of demand the connection can carry right now."""
        if demand_mbps <= 0:
            return 1.0
        return sum(self.schedule(demand_mbps).values()) / demand_mbps


def failover_comparison(
    subflows: Sequence[Subflow],
    failed_prefix: str,
    demand_mbps: float,
    single_path_detection_ms: float,
) -> Tuple[float, float]:
    """(multipath outage ms, single-path outage ms) after a path failure.

    Multipath reschedules on the next RTT of a surviving subflow; a
    single-path tunnel is dark for the whole detection window.  If the
    remaining subflows cannot carry the demand, multipath still counts as
    recovered once rescheduled (degraded, not dark).
    """
    connection = MultipathConnection(subflows)
    after = connection.fail_subflow(failed_prefix)
    live = after.live_subflows()
    if not live:
        return (math.inf, math.inf)
    multipath_outage = min(s.rtt_ms for s in live)  # one scheduler RTT
    return (multipath_outage, single_path_detection_ms)
