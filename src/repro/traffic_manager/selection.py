"""Destination-selection policies for TM-Edge.

"Given a set of available destinations (prefixes), the Traffic Manager can
use different destination selection policies ... We follow high-level
lessons from prior work about how to select destinations to avoid
oscillations" (§3.2, citing Gao et al.'s route-control damping).  The
default policy is lowest-latency with hysteresis: switch only when another
destination has been meaningfully better for several consecutive rounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional


@dataclass(frozen=True)
class SelectionPolicyConfig:
    #: Required relative improvement before switching (anti-oscillation).
    switch_threshold: float = 0.05
    #: Consecutive rounds a challenger must win before a switch.
    stability_rounds: int = 3

    def __post_init__(self) -> None:
        if self.switch_threshold < 0:
            raise ValueError("switch_threshold must be non-negative")
        if self.stability_rounds < 1:
            raise ValueError("stability_rounds must be >= 1")


class LowestLatencySelector:
    """Hysteretic lowest-latency destination selection.

    Feed it one latency snapshot per measurement round via
    :meth:`update`; read the chosen destination from :attr:`current`.
    Unreachable destinations (``inf``) trigger an immediate switch — failover
    must not wait out the hysteresis.
    """

    def __init__(self, config: Optional[SelectionPolicyConfig] = None) -> None:
        self._config = config or SelectionPolicyConfig()
        self._current: Optional[str] = None
        self._challenger: Optional[str] = None
        self._challenger_rounds = 0
        self._switch_count = 0

    @property
    def current(self) -> Optional[str]:
        return self._current

    @property
    def switch_count(self) -> int:
        return self._switch_count

    def update(self, latencies_ms: Mapping[str, float]) -> Optional[str]:
        """Incorporate one measurement round; returns the (new) selection."""
        live = {name: lat for name, lat in latencies_ms.items() if not math.isinf(lat)}
        if not live:
            self._current = None
            self._challenger = None
            self._challenger_rounds = 0
            return None

        best = min(live, key=lambda name: (live[name], name))

        if self._current is None or self._current not in live:
            # First selection or current destination died: switch immediately.
            if self._current is not None:
                self._switch_count += 1
            self._current = best
            self._challenger = None
            self._challenger_rounds = 0
            return self._current

        current_latency = live[self._current]
        if best == self._current:
            self._challenger = None
            self._challenger_rounds = 0
            return self._current

        improvement = (current_latency - live[best]) / current_latency
        if improvement < self._config.switch_threshold:
            self._challenger = None
            self._challenger_rounds = 0
            return self._current

        if best == self._challenger:
            self._challenger_rounds += 1
        else:
            self._challenger = best
            self._challenger_rounds = 1

        if self._challenger_rounds >= self._config.stability_rounds:
            self._current = best
            self._challenger = None
            self._challenger_rounds = 0
            self._switch_count += 1
        return self._current
