"""Destination-selection policies for TM-Edge.

"Given a set of available destinations (prefixes), the Traffic Manager can
use different destination selection policies ... We follow high-level
lessons from prior work about how to select destinations to avoid
oscillations" (§3.2, citing Gao et al.'s route-control damping).  The
default policy is lowest-latency with hysteresis: switch only when another
destination has been meaningfully better for several consecutive rounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence


@dataclass(frozen=True)
class SelectionPolicyConfig:
    #: Required relative improvement before switching (anti-oscillation).
    switch_threshold: float = 0.05
    #: Consecutive rounds a challenger must win before a switch.
    stability_rounds: int = 3

    def __post_init__(self) -> None:
        if self.switch_threshold < 0:
            raise ValueError("switch_threshold must be non-negative")
        if self.stability_rounds < 1:
            raise ValueError("stability_rounds must be >= 1")


class LowestLatencySelector:
    """Hysteretic lowest-latency destination selection.

    Feed it one latency snapshot per measurement round via
    :meth:`update`; read the chosen destination from :attr:`current`.
    Unreachable destinations (``inf``) trigger an immediate switch — failover
    must not wait out the hysteresis.
    """

    def __init__(self, config: Optional[SelectionPolicyConfig] = None) -> None:
        self._config = config or SelectionPolicyConfig()
        self._current: Optional[str] = None
        self._challenger: Optional[str] = None
        self._challenger_rounds = 0
        self._switch_count = 0

    @property
    def current(self) -> Optional[str]:
        return self._current

    @property
    def switch_count(self) -> int:
        return self._switch_count

    def update(self, latencies_ms: Mapping[str, float]) -> Optional[str]:
        """Incorporate one measurement round; returns the (new) selection."""
        live = {name: lat for name, lat in latencies_ms.items() if not math.isinf(lat)}
        if not live:
            self._current = None
            self._challenger = None
            self._challenger_rounds = 0
            return None

        best = min(live, key=lambda name: (live[name], name))

        if self._current is None or self._current not in live:
            # First selection or current destination died: switch immediately.
            if self._current is not None:
                self._switch_count += 1
            self._current = best
            self._challenger = None
            self._challenger_rounds = 0
            return self._current

        current_latency = live[self._current]
        if best == self._current:
            self._challenger = None
            self._challenger_rounds = 0
            return self._current

        improvement = (current_latency - live[best]) / current_latency
        if improvement < self._config.switch_threshold:
            self._challenger = None
            self._challenger_rounds = 0
            return self._current

        if best == self._challenger:
            self._challenger_rounds += 1
        else:
            self._challenger = best
            self._challenger_rounds = 1

        if self._challenger_rounds >= self._config.stability_rounds:
            self._current = best
            self._challenger = None
            self._challenger_rounds = 0
            self._switch_count += 1
        return self._current

    # -- state transfer (TM-Edge snapshot protocol) --------------------------

    def to_snapshot(self) -> Dict[str, Any]:
        """Plain-data selector state (nested inside TM-Edge snapshots)."""
        return {
            "current": self._current,
            "challenger": self._challenger,
            "challenger_rounds": self._challenger_rounds,
            "switch_count": self._switch_count,
        }

    @classmethod
    def from_snapshot(
        cls,
        snapshot: Mapping[str, Any],
        config: Optional[SelectionPolicyConfig] = None,
    ) -> "LowestLatencySelector":
        selector = cls(config)
        selector._current = snapshot.get("current")
        selector._challenger = snapshot.get("challenger")
        selector._challenger_rounds = int(snapshot.get("challenger_rounds", 0))
        selector._switch_count = int(snapshot.get("switch_count", 0))
        return selector


class SelectorBank:
    """Many independent hysteretic selectors, keyed by integer service id.

    The replay/bench workloads steer hundreds of user groups at once; each
    gets its own :class:`LowestLatencySelector` (selection state must not
    bleed between services), but measurement rounds arrive as one latency
    matrix.  :meth:`update_matrix` feeds a whole round in a single call.
    """

    def __init__(self, config: Optional[SelectionPolicyConfig] = None) -> None:
        self._config = config or SelectionPolicyConfig()
        self._selectors: Dict[int, LowestLatencySelector] = {}

    def __len__(self) -> int:
        return len(self._selectors)

    def selector(self, service_id: int) -> LowestLatencySelector:
        selector = self._selectors.get(service_id)
        if selector is None:
            selector = self._selectors[service_id] = LowestLatencySelector(
                self._config
            )
        return selector

    def current(self, service_id: int) -> Optional[str]:
        selector = self._selectors.get(service_id)
        return None if selector is None else selector.current

    def selections(self) -> Dict[int, Optional[str]]:
        """Per-service current selections, in service-id order."""
        return {
            sid: selector.current
            for sid, selector in sorted(self._selectors.items())
        }

    def update_matrix(
        self,
        prefixes: Sequence[str],
        latencies_ms,
        service_ids: Optional[Sequence[int]] = None,
    ) -> Dict[int, Optional[str]]:
        """Feed one measurement round for many services at once.

        ``latencies_ms`` is an (n_services, n_prefixes) array-like; row *i*
        belongs to ``service_ids[i]`` (or service id *i* when omitted).
        Returns the resulting per-service selections.
        """
        results: Dict[int, Optional[str]] = {}
        names = list(prefixes)
        for i, row in enumerate(latencies_ms):
            sid = int(service_ids[i]) if service_ids is not None else i
            results[sid] = self.selector(sid).update(
                dict(zip(names, (float(v) for v in row)))
            )
        return results

    def to_snapshot(self) -> Dict[str, Any]:
        return {
            str(sid): selector.to_snapshot()
            for sid, selector in sorted(self._selectors.items())
        }

    @classmethod
    def from_snapshot(
        cls,
        snapshot: Mapping[str, Any],
        config: Optional[SelectionPolicyConfig] = None,
    ) -> "SelectorBank":
        bank = cls(config)
        for sid, state in snapshot.items():
            bank._selectors[int(sid)] = LowestLatencySelector.from_snapshot(
                state, bank._config
            )
        return bank
