"""RTT-timescale failover (the Fig. 10 experiment) under arbitrary faults.

Reproduces the prototype scenario of §5.2.3: an anycast prefix advertised at
two PoPs plus single-transit unicast prefixes at each, a PoP failure at
t = 60 s, and three reactions compared —

* **PAINTER** — the TM-Edge notices missing acknowledgments on its chosen
  tunnel within ~1.3 RTT and switches to the next-lowest-latency prefix;
* **anycast** — the prefix is unreachable while the withdrawal floods
  (~1 s), then suffers transient path-exploration inflation for ~15 s
  (modeled by :mod:`repro.bgp.convergence`);
* **DNS** — clients keep using the stale record until the TTL expires
  (~60 s).

The failure model is a :class:`repro.faults.FaultSchedule`: the legacy
single-PoP scenario is just ``FaultSchedule.single_pop_outage(pop, t)``
(what :class:`FailoverConfig` builds from its ``failed_pop`` /
``failure_time_s`` fields when no explicit schedule is given), but any
composition of outages, withdrawals, link flaps, latency spikes, and probe
loss runs through the same simulation — including back-to-back failures
the TM-Edge must survive repeatedly.
"""

from __future__ import annotations

import logging
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bgp.convergence import ConvergenceConfig, ConvergenceTrace, simulate_withdrawal
from repro.faults.schedule import FaultSchedule
from repro.simulation.events import EventLoop
from repro.telemetry import TRACER, emit_event
from repro.traffic_manager.dataplane import DataPlane, FlowBatch, VectorFlowTable
from repro.traffic_manager.selection import LowestLatencySelector, SelectionPolicyConfig


logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class PathSpec:
    """One destination prefix the TM-Edge can tunnel to."""

    prefix: str
    pop_name: str
    base_rtt_ms: float
    is_anycast: bool = False
    #: For the anycast path: RTT via the surviving PoP after reconvergence.
    backup_rtt_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.base_rtt_ms <= 0:
            raise ValueError("base_rtt_ms must be positive")
        if self.is_anycast and self.backup_rtt_ms is None:
            raise ValueError("anycast path needs a backup_rtt_ms")


@dataclass(frozen=True)
class FailoverConfig:
    duration_s: float = 130.0
    failure_time_s: float = 60.0
    failed_pop: str = "pop-a"
    #: Interval between data/keepalive packets on the active tunnel.
    packet_interval_ms: float = 5.0
    #: Interval between background probes of alternate tunnels.
    probe_interval_ms: float = 1000.0
    #: Missing-ack time (in RTTs) before the tunnel is declared down.
    detection_rtt_multiplier: float = 1.3
    #: TTL-bound failover time of the DNS alternative.
    dns_ttl_s: float = 60.0
    convergence: ConvergenceConfig = field(default_factory=ConvergenceConfig)
    seed: int = 0
    #: Arbitrary fault timeline; when ``None`` the legacy single-PoP outage
    #: (``failed_pop`` dies at ``failure_time_s``, forever) is used.
    schedule: Optional[FaultSchedule] = None
    #: Live flows pinned to the data plane during the run (0 = control-plane
    #: only).  With flows present, every selector switch re-maps them from
    #: the dead prefix to the new selection through the batched data plane.
    concurrent_flows: int = 0

    def fault_schedule(self) -> FaultSchedule:
        """The schedule actually simulated (explicit or legacy-derived)."""
        if self.schedule is not None:
            return self.schedule
        return FaultSchedule.single_pop_outage(self.failed_pop, self.failure_time_s)


@dataclass(frozen=True)
class DowntimeEvent:
    """One data-plane outage episode as the TM-Edge experienced it."""

    prefix: str
    detected_s: float
    recovered_s: Optional[float] = None

    @property
    def duration_ms(self) -> float:
        """Detection-to-recovery gap (``inf`` if never recovered)."""
        if self.recovered_s is None:
            return math.inf
        return (self.recovered_s - self.detected_s) * 1000.0


@dataclass(frozen=True)
class AnycastEpoch:
    """One dark window of an anycast path and its convergence trace."""

    start_s: float
    end_s: float
    trace: ConvergenceTrace


@dataclass
class FailoverResult:
    """Everything needed to regenerate Fig. 10 (and its chaos variants)."""

    config: FailoverConfig
    paths: Sequence[PathSpec]
    #: (time_s, active_prefix or None, observed rtt_ms or inf).
    timeline: List[Tuple[float, Optional[str], float]]
    convergence: ConvergenceTrace
    detection_time_s: Optional[float]
    recovery_time_s: Optional[float]
    #: Every outage episode, in order (the legacy fields mirror the first).
    downtime_events: List[DowntimeEvent] = field(default_factory=list)
    #: Per anycast prefix: dark windows and their convergence traces.
    anycast_epochs: Dict[str, List[AnycastEpoch]] = field(default_factory=dict)
    #: Total flows moved by data-plane re-mapping on selector switches.
    flows_remapped: int = 0
    #: (time_s, from_prefix, to_prefix, n_flows) per re-mapping event.
    remap_events: List[Tuple[float, str, str, int]] = field(default_factory=list)

    @property
    def painter_downtime_ms(self) -> float:
        """Data-plane gap between failure and the first delivered packet."""
        if self.recovery_time_s is None:
            return math.inf
        return (self.recovery_time_s - self.config.failure_time_s) * 1000.0

    @property
    def total_downtime_ms(self) -> float:
        """Summed detection-to-recovery gaps over every outage episode.

        Unrecovered episodes count until the end of the simulation — a
        chaos storm that leaves the TM-Edge dark is charged for it.
        """
        total = 0.0
        for event in self.downtime_events:
            end_s = (
                event.recovered_s
                if event.recovered_s is not None
                else self.config.duration_s
            )
            total += max(0.0, end_s - event.detected_s) * 1000.0
        return total

    @property
    def recovery_count(self) -> int:
        return sum(1 for e in self.downtime_events if e.recovered_s is not None)

    @property
    def anycast_loss_s(self) -> float:
        return self.convergence.loss_duration_s

    @property
    def anycast_reconvergence_s(self) -> float:
        return self.convergence.reconvergence_time_s - self.config.failure_time_s

    @property
    def dns_downtime_s(self) -> float:
        return self.config.dns_ttl_s

    def active_prefix_at(self, time_s: float) -> Optional[str]:
        active = None
        for t, prefix, _rtt in self.timeline:
            if t <= time_s:
                active = prefix
            else:
                break
        return active

    def bgp_update_series(self, bin_s: float = 1.0) -> List[Tuple[float, int]]:
        from repro.bgp.convergence import churn_series

        return churn_series(self.convergence, 0.0, self.config.duration_s, bin_s=bin_s)

    def path_latency_series(
        self, step_s: float = 0.5
    ) -> Dict[str, List[Tuple[float, float]]]:
        """Per-prefix latency series (inf while unreachable), for plotting."""
        oracle = _PathOracle(
            self.paths, self.config.fault_schedule(), self.anycast_epochs
        )
        series: Dict[str, List[Tuple[float, float]]] = {p.prefix: [] for p in self.paths}
        t = 0.0
        while t <= self.config.duration_s:
            for path in self.paths:
                series[path.prefix].append((t, oracle.rtt_ms(path, t)))
            t += step_s
        return series


class _PathOracle:
    """Ground-truth RTT of each path over time, under a fault schedule."""

    def __init__(
        self,
        paths: Sequence[PathSpec],
        schedule: FaultSchedule,
        anycast_epochs: Dict[str, List[AnycastEpoch]],
    ) -> None:
        self._paths: Dict[str, PathSpec] = {p.prefix: p for p in paths}
        self._schedule = schedule
        self._epochs = anycast_epochs

    def path(self, prefix: str) -> PathSpec:
        return self._paths[prefix]

    def rtt_ms(self, path: PathSpec, time_s: float) -> float:
        spike = self._schedule.latency_penalty_ms(path.pop_name, time_s)
        if path.is_anycast:
            epoch = self._epoch_at(path.prefix, time_s)
            if epoch is None:
                return path.base_rtt_ms + spike
            penalty = epoch.trace.latency_penalty_at(time_s)
            if math.isinf(penalty):
                return math.inf
            assert path.backup_rtt_ms is not None
            return path.backup_rtt_ms + penalty + spike
        if self._schedule.path_down(path.pop_name, path.prefix, time_s):
            return math.inf
        return path.base_rtt_ms + spike

    def _epoch_at(self, prefix: str, time_s: float) -> Optional[AnycastEpoch]:
        """The dark window governing the anycast prefix at ``time_s``.

        A window governs from its start until it heals; the convergence
        trace inside it decides reachability and inflation.  An infinite
        window (the legacy forever-outage) governs until the end of time.
        """
        for epoch in self._epochs.get(prefix, ()):
            if epoch.start_s <= time_s < epoch.end_s:
                return epoch
        return None


def _build_anycast_epochs(
    paths: Sequence[PathSpec], schedule: FaultSchedule, config: FailoverConfig
) -> Dict[str, List[AnycastEpoch]]:
    """One convergence trace per dark window of each anycast path.

    Every withdrawal of the anycast's primary PoP starts a fresh BGP
    convergence process (loss window, path exploration, settling).  The
    first epoch of the first anycast path is seeded with ``config.seed``
    so the default single-outage schedule reproduces the original Fig. 10
    trace bit-for-bit.
    """
    epochs: Dict[str, List[AnycastEpoch]] = {}
    anycast_paths = [p for p in paths if p.is_anycast]
    for path_idx, path in enumerate(anycast_paths):
        intervals = schedule.down_intervals(
            pop_name=path.pop_name, prefix=path.prefix
        )
        path_epochs: List[AnycastEpoch] = []
        for epoch_idx, (start_s, end_s) in enumerate(intervals):
            trace = simulate_withdrawal(
                start_s,
                config=config.convergence,
                seed=config.seed + 101 * path_idx + epoch_idx,
            )
            path_epochs.append(AnycastEpoch(start_s=start_s, end_s=end_s, trace=trace))
        epochs[path.prefix] = path_epochs
    return epochs


def run_failover(
    paths: Sequence[PathSpec],
    config: Optional[FailoverConfig] = None,
    data_plane: Optional[DataPlane] = None,
) -> FailoverResult:
    """Run the event-driven failover simulation under the fault schedule.

    With ``config.concurrent_flows > 0`` a data plane (a fresh
    :class:`VectorFlowTable` unless one is supplied) is pre-loaded with that
    many synthetic flows pinned to the initial selection; every selector
    switch then re-maps the flows off the abandoned prefix in one batched
    call — measuring the *data-plane* half of RTT-timescale failover, not
    just the detection logic.
    """
    config = config or FailoverConfig()
    if not paths:
        raise ValueError("need at least one path")
    if config.schedule is None and not any(
        p.pop_name == config.failed_pop for p in paths
    ):
        raise ValueError(f"no path touches the failed PoP {config.failed_pop!r}")

    schedule = config.fault_schedule()
    epochs = _build_anycast_epochs(paths, schedule, config)
    oracle = _PathOracle(paths, schedule, epochs)
    loop = EventLoop()
    probe_rng = random.Random(config.seed + 0x5EED)

    # Measured RTT per prefix, as the TM-Edge currently believes.
    measured: Dict[str, float] = {p.prefix: p.base_rtt_ms for p in paths}
    selector = LowestLatencySelector(SelectionPolicyConfig())
    selector.update(dict(measured))
    timeline_seed = selector.current
    state = {
        "last_ack_s": 0.0,
        "last_send_s": 0.0,
        "down_since_s": None,
    }
    downtimes: List[DowntimeEvent] = []
    timeline: List[Tuple[float, Optional[str], float]] = []
    by_prefix = {p.prefix: p for p in paths}
    if timeline_seed is not None:
        timeline.append((0.0, timeline_seed, measured[timeline_seed]))

    # -- data-plane flows pinned for the duration of the run ------------------
    plane = data_plane
    remap_events: List[Tuple[float, str, str, int]] = []
    remap_total = [0]
    if config.concurrent_flows > 0:
        if plane is None:
            plane = VectorFlowTable()
        if timeline_seed is not None:
            seed_batch = FlowBatch.synthesize(
                config.concurrent_flows, seed=config.seed
            )
            plane.admit(seed_batch, {0: timeline_seed}, 0.0)

    def switch_flows(old: Optional[str], new: Optional[str], now_s: float) -> None:
        """Re-pin every flow off ``old`` when the selection moves to ``new``."""
        if plane is None or old is None or new is None or old == new:
            return
        moved = plane.remap(old, new)
        if moved:
            remap_total[0] += moved
            remap_events.append((now_s, old, new, moved))
            emit_event(
                "failover_remap",
                time_s=now_s,
                dead_prefix=old,
                new_prefix=new,
                flows_moved=moved,
            )

    def active_path() -> Optional[PathSpec]:
        prefix = selector.current
        return None if prefix is None else by_prefix[prefix]

    def send_packet(loop: EventLoop) -> None:
        path = active_path()
        now = loop.now_s
        if path is not None:
            state["last_send_s"] = now
            rtt = oracle.rtt_ms(path, now)
            if math.isinf(rtt):
                # Packet lost; schedule the detection check.
                expected = measured.get(path.prefix, path.base_rtt_ms)
                if math.isinf(expected):
                    expected = path.base_rtt_ms
                deadline = now + config.detection_rtt_multiplier * expected / 1000.0
                loop.schedule_at(deadline, make_detection_check(path.prefix, now))
            else:
                delivered = now + rtt / 1000.0

                def on_ack(loop: EventLoop, prefix: str = path.prefix, rtt: float = rtt) -> None:
                    state["last_ack_s"] = loop.now_s
                    measured[prefix] = rtt
                    if state["down_since_s"] is not None:
                        sent_s = loop.now_s - rtt / 1000.0
                        if downtimes and downtimes[-1].recovered_s is None:
                            downtimes[-1] = DowntimeEvent(
                                prefix=downtimes[-1].prefix,
                                detected_s=downtimes[-1].detected_s,
                                recovered_s=sent_s,
                            )
                        state["down_since_s"] = None
                    timeline.append((loop.now_s, selector.current, rtt))

                loop.schedule_at(delivered, on_ack)
        if now + config.packet_interval_ms / 1000.0 <= config.duration_s:
            loop.schedule_in(config.packet_interval_ms / 1000.0, send_packet)

    def make_detection_check(prefix: str, sent_at_s: float) -> Callable[[EventLoop], None]:
        def check(loop: EventLoop) -> None:
            if selector.current != prefix:
                return  # already moved on
            if state["last_ack_s"] >= sent_at_s:
                return  # an ack arrived in the meantime
            # Declare the tunnel down and switch to the best alternate.
            if state["down_since_s"] is None:
                state["down_since_s"] = loop.now_s
                downtimes.append(DowntimeEvent(prefix=prefix, detected_s=loop.now_s))
                emit_event(
                    "downtime_detected", prefix=prefix, detected_s=loop.now_s
                )
                logger.info(
                    "tunnel %s declared down at t=%.3fs", prefix, loop.now_s
                )
            measured[prefix] = math.inf
            before = selector.current
            selector.update(dict(measured))
            switch_flows(before, selector.current, loop.now_s)
            timeline.append((loop.now_s, selector.current, math.inf))

        return check

    def probe_paths(loop: EventLoop) -> None:
        now = loop.now_s
        # Fold the previous round's probe results into the selection — this
        # is what lets the TM-Edge move *back* after a flap heals or find a
        # live tunnel after every path was briefly dark.
        previous = selector.current
        selector.update(dict(measured))
        if selector.current != previous:
            switch_flows(previous, selector.current, now)
            timeline.append(
                (now, selector.current, measured.get(selector.current or "", math.inf))
            )
        loss_rate = schedule.probe_loss_rate(now)
        for path in paths:
            if path.prefix == selector.current:
                continue  # active path is measured by data packets
            if loss_rate > 0 and probe_rng.random() < loss_rate:
                continue  # probe dropped by the fault schedule
            rtt = oracle.rtt_ms(path, now)

            def on_probe(loop: EventLoop, prefix: str = path.prefix, rtt: float = rtt) -> None:
                measured[prefix] = rtt

            if math.isinf(rtt):
                measured[path.prefix] = math.inf
            else:
                loop.schedule_at(now + rtt / 1000.0, on_probe)
        if now + config.probe_interval_ms / 1000.0 <= config.duration_s:
            loop.schedule_in(config.probe_interval_ms / 1000.0, probe_paths)

    loop.schedule_at(0.0, send_packet)
    loop.schedule_at(0.0, probe_paths)
    with TRACER.span(
        "failover.run", paths=len(paths), duration_s=config.duration_s,
        concurrent_flows=config.concurrent_flows,
    ) as run_span:
        loop.run_until(config.duration_s)
        run_span.tag("downtime_events", len(downtimes))
        run_span.tag("flows_remapped", remap_total[0])

    first_anycast = next((p.prefix for p in paths if p.is_anycast), None)
    first_epochs = epochs.get(first_anycast, []) if first_anycast else []
    convergence = (
        first_epochs[0].trace
        if first_epochs
        else ConvergenceTrace(withdrawal_time_s=config.failure_time_s, events=[])
    )

    return FailoverResult(
        config=config,
        paths=list(paths),
        timeline=timeline,
        convergence=convergence,
        detection_time_s=downtimes[0].detected_s if downtimes else None,
        recovery_time_s=downtimes[0].recovered_s if downtimes else None,
        downtime_events=downtimes,
        anycast_epochs=epochs,
        flows_remapped=remap_total[0],
        remap_events=remap_events,
    )


def default_fig10_paths() -> List[PathSpec]:
    """The paper's setup: anycast at two PoPs + one prefix per transit ISP."""
    return [
        PathSpec(
            prefix="1.1.1.0/24",
            pop_name="pop-a",
            base_rtt_ms=25.0,
            is_anycast=True,
            backup_rtt_ms=34.0,
        ),
        PathSpec(prefix="2.2.2.0/24", pop_name="pop-a", base_rtt_ms=20.0),
        PathSpec(prefix="4.4.4.0/24", pop_name="pop-a", base_rtt_ms=28.0),
        PathSpec(prefix="3.3.3.0/24", pop_name="pop-b", base_rtt_ms=30.0),
        PathSpec(prefix="5.5.5.0/24", pop_name="pop-b", base_rtt_ms=38.0),
    ]
