"""RTT-timescale failover (the Fig. 10 experiment).

Reproduces the prototype scenario of §5.2.3: an anycast prefix advertised at
two PoPs plus single-transit unicast prefixes at each, a PoP failure at
t = 60 s, and three reactions compared —

* **PAINTER** — the TM-Edge notices missing acknowledgments on its chosen
  tunnel within ~1.3 RTT and switches to the next-lowest-latency prefix;
* **anycast** — the prefix is unreachable while the withdrawal floods
  (~1 s), then suffers transient path-exploration inflation for ~15 s
  (modeled by :mod:`repro.bgp.convergence`);
* **DNS** — clients keep using the stale record until the TTL expires
  (~60 s).
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bgp.convergence import ConvergenceConfig, ConvergenceTrace, simulate_withdrawal
from repro.simulation.events import EventLoop
from repro.traffic_manager.selection import LowestLatencySelector, SelectionPolicyConfig


logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class PathSpec:
    """One destination prefix the TM-Edge can tunnel to."""

    prefix: str
    pop_name: str
    base_rtt_ms: float
    is_anycast: bool = False
    #: For the anycast path: RTT via the surviving PoP after reconvergence.
    backup_rtt_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.base_rtt_ms <= 0:
            raise ValueError("base_rtt_ms must be positive")
        if self.is_anycast and self.backup_rtt_ms is None:
            raise ValueError("anycast path needs a backup_rtt_ms")


@dataclass(frozen=True)
class FailoverConfig:
    duration_s: float = 130.0
    failure_time_s: float = 60.0
    failed_pop: str = "pop-a"
    #: Interval between data/keepalive packets on the active tunnel.
    packet_interval_ms: float = 5.0
    #: Interval between background probes of alternate tunnels.
    probe_interval_ms: float = 1000.0
    #: Missing-ack time (in RTTs) before the tunnel is declared down.
    detection_rtt_multiplier: float = 1.3
    #: TTL-bound failover time of the DNS alternative.
    dns_ttl_s: float = 60.0
    convergence: ConvergenceConfig = ConvergenceConfig()
    seed: int = 0


@dataclass
class FailoverResult:
    """Everything needed to regenerate Fig. 10."""

    config: FailoverConfig
    paths: Sequence[PathSpec]
    #: (time_s, active_prefix or None, observed rtt_ms or inf).
    timeline: List[Tuple[float, Optional[str], float]]
    convergence: ConvergenceTrace
    detection_time_s: Optional[float]
    recovery_time_s: Optional[float]

    @property
    def painter_downtime_ms(self) -> float:
        """Data-plane gap between failure and the first delivered packet."""
        if self.recovery_time_s is None:
            return math.inf
        return (self.recovery_time_s - self.config.failure_time_s) * 1000.0

    @property
    def anycast_loss_s(self) -> float:
        return self.convergence.loss_duration_s

    @property
    def anycast_reconvergence_s(self) -> float:
        return self.convergence.reconvergence_time_s - self.config.failure_time_s

    @property
    def dns_downtime_s(self) -> float:
        return self.config.dns_ttl_s

    def active_prefix_at(self, time_s: float) -> Optional[str]:
        active = None
        for t, prefix, _rtt in self.timeline:
            if t <= time_s:
                active = prefix
            else:
                break
        return active

    def bgp_update_series(self, bin_s: float = 1.0) -> List[Tuple[float, int]]:
        from repro.bgp.convergence import churn_series

        return churn_series(self.convergence, 0.0, self.config.duration_s, bin_s=bin_s)

    def path_latency_series(
        self, step_s: float = 0.5
    ) -> Dict[str, List[Tuple[float, float]]]:
        """Per-prefix latency series (inf while unreachable), for plotting."""
        oracle = _PathOracle(self.paths, self.config, self.convergence)
        series: Dict[str, List[Tuple[float, float]]] = {p.prefix: [] for p in self.paths}
        t = 0.0
        while t <= self.config.duration_s:
            for path in self.paths:
                series[path.prefix].append((t, oracle.rtt_ms(path, t)))
            t += step_s
        return series


class _PathOracle:
    """Ground-truth RTT of each path over time."""

    def __init__(
        self, paths: Sequence[PathSpec], config: FailoverConfig, trace: ConvergenceTrace
    ) -> None:
        self._config = config
        self._trace = trace

    def rtt_ms(self, path: PathSpec, time_s: float) -> float:
        cfg = self._config
        if time_s < cfg.failure_time_s:
            return path.base_rtt_ms
        if path.is_anycast:
            penalty = self._trace.latency_penalty_at(time_s)
            if math.isinf(penalty):
                return math.inf
            assert path.backup_rtt_ms is not None
            return path.backup_rtt_ms + penalty
        if path.pop_name == cfg.failed_pop:
            return math.inf
        return path.base_rtt_ms


def run_failover(
    paths: Sequence[PathSpec], config: Optional[FailoverConfig] = None
) -> FailoverResult:
    """Run the event-driven failover simulation."""
    config = config or FailoverConfig()
    if not paths:
        raise ValueError("need at least one path")
    if not any(p.pop_name == config.failed_pop for p in paths):
        raise ValueError(f"no path touches the failed PoP {config.failed_pop!r}")

    trace = simulate_withdrawal(
        config.failure_time_s, config=config.convergence, seed=config.seed
    )
    oracle = _PathOracle(paths, config, trace)
    loop = EventLoop()

    # Measured RTT per prefix, as the TM-Edge currently believes.
    measured: Dict[str, float] = {p.prefix: p.base_rtt_ms for p in paths}
    selector = LowestLatencySelector(SelectionPolicyConfig())
    selector.update(dict(measured))
    timeline_seed = selector.current
    state = {
        "last_ack_s": 0.0,
        "last_send_s": 0.0,
        "detection_time_s": None,
        "recovery_time_s": None,
        "down_since_s": None,
    }
    timeline: List[Tuple[float, Optional[str], float]] = []
    by_prefix = {p.prefix: p for p in paths}
    if timeline_seed is not None:
        timeline.append((0.0, timeline_seed, measured[timeline_seed]))

    def active_path() -> Optional[PathSpec]:
        prefix = selector.current
        return None if prefix is None else by_prefix[prefix]

    def send_packet(loop: EventLoop) -> None:
        path = active_path()
        now = loop.now_s
        if path is not None:
            state["last_send_s"] = now
            rtt = oracle.rtt_ms(path, now)
            if math.isinf(rtt):
                # Packet lost; schedule the detection check.
                expected = measured.get(path.prefix, path.base_rtt_ms)
                if math.isinf(expected):
                    expected = path.base_rtt_ms
                deadline = now + config.detection_rtt_multiplier * expected / 1000.0
                loop.schedule_at(deadline, make_detection_check(path.prefix, now))
            else:
                delivered = now + rtt / 1000.0

                def on_ack(loop: EventLoop, prefix: str = path.prefix, rtt: float = rtt) -> None:
                    state["last_ack_s"] = loop.now_s
                    measured[prefix] = rtt
                    if (
                        state["down_since_s"] is not None
                        and state["recovery_time_s"] is None
                    ):
                        state["recovery_time_s"] = loop.now_s - rtt / 1000.0
                    timeline.append((loop.now_s, selector.current, rtt))

                loop.schedule_at(delivered, on_ack)
        if now + config.packet_interval_ms / 1000.0 <= config.duration_s:
            loop.schedule_in(config.packet_interval_ms / 1000.0, send_packet)

    def make_detection_check(prefix: str, sent_at_s: float) -> Callable[[EventLoop], None]:
        def check(loop: EventLoop) -> None:
            if selector.current != prefix:
                return  # already moved on
            if state["last_ack_s"] >= sent_at_s:
                return  # an ack arrived in the meantime
            # Declare the tunnel down and switch to the best alternate.
            if state["detection_time_s"] is None:
                state["detection_time_s"] = loop.now_s
                state["down_since_s"] = loop.now_s
                logger.info(
                    "tunnel %s declared down at t=%.3fs", prefix, loop.now_s
                )
            measured[prefix] = math.inf
            selector.update(dict(measured))
            timeline.append((loop.now_s, selector.current, math.inf))

        return check

    def probe_paths(loop: EventLoop) -> None:
        now = loop.now_s
        for path in paths:
            if path.prefix == selector.current:
                continue  # active path is measured by data packets
            rtt = oracle.rtt_ms(path, now)

            def on_probe(loop: EventLoop, prefix: str = path.prefix, rtt: float = rtt) -> None:
                measured[prefix] = rtt

            if math.isinf(rtt):
                measured[path.prefix] = math.inf
            else:
                loop.schedule_at(now + rtt / 1000.0, on_probe)
        if now + config.probe_interval_ms / 1000.0 <= config.duration_s:
            loop.schedule_in(config.probe_interval_ms / 1000.0, probe_paths)

    loop.schedule_at(0.0, send_packet)
    loop.schedule_at(0.0, probe_paths)
    loop.run_until(config.duration_s)

    return FailoverResult(
        config=config,
        paths=list(paths),
        timeline=timeline,
        convergence=trace,
        detection_time_s=state["detection_time_s"],
        recovery_time_s=state["recovery_time_s"],
    )


def default_fig10_paths() -> List[PathSpec]:
    """The paper's setup: anycast at two PoPs + one prefix per transit ISP."""
    return [
        PathSpec(
            prefix="1.1.1.0/24",
            pop_name="pop-a",
            base_rtt_ms=25.0,
            is_anycast=True,
            backup_rtt_ms=34.0,
        ),
        PathSpec(prefix="2.2.2.0/24", pop_name="pop-a", base_rtt_ms=20.0),
        PathSpec(prefix="4.4.4.0/24", pop_name="pop-a", base_rtt_ms=28.0),
        PathSpec(prefix="3.3.3.0/24", pop_name="pop-b", base_rtt_ms=30.0),
        PathSpec(prefix="5.5.5.0/24", pop_name="pop-b", base_rtt_ms=38.0),
    ]
