"""Workload-driven TM-Edge simulation.

Drives a TM-Edge through a flow workload over simulated time: flows arrive
and get pinned to the then-best destination (immutable per flow, §3.2), the
edge re-measures its tunnels periodically, and paths may die mid-run.
Reports what an operator would ask about a steering deployment:

* where did flows and bytes actually go;
* what latency did flows experience (volume-weighted);
* how many flows were disrupted by a path failure (their pinned destination
  died under them — the cost of immutable mappings without a
  connection-handover system, which the paper accepts deliberately).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.simulation.events import EventLoop
from repro.traffic_manager.selection import LowestLatencySelector, SelectionPolicyConfig

#: rtt_ms(destination, time_s) -> latency, inf when the path is down.
PathOracle = Callable[[str, float], float]


@dataclass(frozen=True)
class SessionFlow:
    """One flow offered to the edge."""

    flow_id: int
    start_s: float
    duration_s: float
    bytes_total: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.bytes_total < 0:
            raise ValueError("bytes must be non-negative")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass
class SessionMetrics:
    """What happened during the run."""

    flows_offered: int = 0
    flows_steered: int = 0
    flows_unroutable: int = 0
    flows_disrupted: int = 0
    #: Flows moved to a live destination by failover re-mapping instead of
    #: being dropped (only with ``EdgeSession(remap_on_failure=True)``).
    flows_remapped: int = 0
    bytes_by_destination: Dict[str, float] = field(default_factory=dict)
    latency_weighted_bytes: float = 0.0
    total_bytes: float = 0.0

    @property
    def mean_latency_ms(self) -> float:
        if self.total_bytes <= 0:
            return 0.0
        return self.latency_weighted_bytes / self.total_bytes

    @property
    def disruption_rate(self) -> float:
        if self.flows_steered == 0:
            return 0.0
        return self.flows_disrupted / self.flows_steered


class EdgeSession:
    """Runs a flow workload against a set of measured destinations."""

    def __init__(
        self,
        destinations: Sequence[str],
        oracle: PathOracle,
        measure_interval_s: float = 1.0,
        selection: Optional[SelectionPolicyConfig] = None,
        remap_on_failure: bool = False,
    ) -> None:
        if not destinations:
            raise ValueError("need at least one destination")
        if measure_interval_s <= 0:
            raise ValueError("measure interval must be positive")
        self._destinations = list(dict.fromkeys(destinations))
        self._oracle = oracle
        self._measure_interval_s = measure_interval_s
        self._selector = LowestLatencySelector(selection or SelectionPolicyConfig())
        self._remap_on_failure = remap_on_failure

    def run(self, flows: Sequence[SessionFlow], duration_s: float) -> SessionMetrics:
        """Simulate the workload; returns the collected metrics."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        loop = EventLoop()
        metrics = SessionMetrics()
        #: flow_id -> (destination, flow); flows live here while active.
        active: Dict[int, Tuple[str, SessionFlow]] = {}

        def measure(loop: EventLoop) -> None:
            rtts = {
                dest: self._oracle(dest, loop.now_s) for dest in self._destinations
            }
            previous = {
                dest for dest, rtt in rtts.items() if math.isinf(rtt)
            }
            replacement = self._selector.update(rtts)
            # Flows pinned to a destination that just died are disrupted —
            # unless RTT-timescale failover re-mapping is enabled, in which
            # case they move wholesale to the live selection instead.
            for flow_id, (dest, flow) in list(active.items()):
                if dest in previous:
                    if self._remap_on_failure and replacement is not None:
                        metrics.flows_remapped += 1
                        active[flow_id] = (replacement, flow)
                    else:
                        metrics.flows_disrupted += 1
                        del active[flow_id]
            if loop.now_s + self._measure_interval_s <= duration_s:
                loop.schedule_in(self._measure_interval_s, measure)

        def admit(flow: SessionFlow) -> Callable[[EventLoop], None]:
            def _admit(loop: EventLoop) -> None:
                metrics.flows_offered += 1
                destination = self._selector.current
                if destination is None:
                    metrics.flows_unroutable += 1
                    return
                rtt = self._oracle(destination, loop.now_s)
                if math.isinf(rtt):
                    metrics.flows_unroutable += 1
                    return
                metrics.flows_steered += 1
                active[flow.flow_id] = (destination, flow)
                metrics.bytes_by_destination[destination] = (
                    metrics.bytes_by_destination.get(destination, 0.0) + flow.bytes_total
                )
                metrics.total_bytes += flow.bytes_total
                metrics.latency_weighted_bytes += flow.bytes_total * rtt
                loop.schedule_at(min(flow.end_s, duration_s), finish(flow.flow_id))

            return _admit

        def finish(flow_id: int) -> Callable[[EventLoop], None]:
            def _finish(loop: EventLoop) -> None:
                active.pop(flow_id, None)

            return _finish

        loop.schedule_at(0.0, measure)
        for flow in flows:
            if flow.start_s <= duration_s:
                loop.schedule_at(flow.start_s, admit(flow))
        loop.run_until(duration_s)
        return metrics


def constant_oracle(rtts: Mapping[str, float]) -> PathOracle:
    """A time-invariant oracle from a destination->RTT table."""

    def oracle(destination: str, _time_s: float) -> float:
        try:
            return rtts[destination]
        except KeyError:
            raise KeyError(f"unknown destination {destination!r}") from None

    return oracle


def failing_oracle(
    rtts: Mapping[str, float], failures: Mapping[str, float]
) -> PathOracle:
    """An oracle where ``failures[dest]`` marks the time a path dies."""
    base = constant_oracle(rtts)

    def oracle(destination: str, time_s: float) -> float:
        failed_at = failures.get(destination)
        if failed_at is not None and time_s >= failed_at:
            return math.inf
        return base(destination, time_s)

    return oracle
