"""TM-PoP: the cloud-side Traffic Manager node at a PoP.

TM-PoPs "relay traffic destined to many prefixes to appropriate cloud
services" (Fig. 4): they terminate tunnels from TM-Edges, NAT client traffic
(Appendix D), and answer TM-Edge queries about which services they can
serve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro.topology.cloud import PoP
from repro.traffic_manager.tunnel import Packet, TMPoPNat


@dataclass
class TMPoP:
    """A Traffic Manager node integrated with a PoP front-end."""

    name: str
    pop: PoP
    nat: TMPoPNat
    #: Services reachable from this PoP ("available PoPs may vary depending
    #: on the service since each service may only be served from certain
    #: PoPs or regions", §3.2).
    services: Set[str] = field(default_factory=set)
    #: Ingress prefixes whose traffic lands at this TM-PoP.
    ingress_prefixes: Set[str] = field(default_factory=set)
    #: Cumulative flows relayed through this TM-PoP (batched path).
    relayed_flows: int = 0
    #: Cumulative payload bytes relayed through this TM-PoP (batched path).
    relayed_bytes: float = 0.0

    def serves(self, service: str) -> bool:
        return service in self.services

    def add_service(self, service: str) -> None:
        self.services.add(service)

    def attach_prefix(self, prefix: str) -> None:
        self.ingress_prefixes.add(prefix)

    def detach_prefix(self, prefix: str) -> None:
        self.ingress_prefixes.discard(prefix)

    def handle_ingress(self, packet: Packet) -> Packet:
        """Decapsulate + NAT a tunneled client packet toward the service."""
        return self.nat.ingress(packet)

    def handle_service_reply(self, packet: Packet) -> Packet:
        """NAT-restore and re-encapsulate a service reply toward TM-Edge."""
        return self.nat.egress(packet)

    def ingest_batch(self, n_flows: int, n_bytes: float) -> None:
        """Account one relayed batch (the aggregate NAT/relay fast path).

        The batched data plane hands TM-PoPs pre-aggregated totals per step
        rather than per-packet calls; counters feed experiment reporting.
        """
        if n_flows < 0 or n_bytes < 0:
            raise ValueError("batch totals must be non-negative")
        self.relayed_flows += int(n_flows)
        self.relayed_bytes += float(n_bytes)


class PrefixDirectory:
    """The Azure service TM-Edges query to resolve available destinations.

    Maintains prefix -> TM-PoP mappings, which "is difficult to compute
    apriori, as prefixes may be advertised via multiple peerings at multiple
    PoPs" (§3.2) — so TM-Edges learn the mapping by establishing tunnels and
    identifying the TM-PoP at the far end; this directory models the
    control-channel announcement of *available* prefixes per service.
    """

    def __init__(self) -> None:
        self._pops: Dict[str, TMPoP] = {}

    def register(self, tm_pop: TMPoP) -> None:
        if tm_pop.name in self._pops:
            raise ValueError(f"TM-PoP {tm_pop.name!r} already registered")
        self._pops[tm_pop.name] = tm_pop

    def pops(self) -> List[TMPoP]:
        return list(self._pops.values())

    def get(self, name: str) -> TMPoP:
        try:
            return self._pops[name]
        except KeyError:
            raise KeyError(f"unknown TM-PoP {name!r}") from None

    def prefixes_for_service(self, service: str) -> FrozenSet[str]:
        """All ingress prefixes leading to a TM-PoP that serves ``service``."""
        result: Set[str] = set()
        for tm_pop in self._pops.values():
            if tm_pop.serves(service):
                result |= tm_pop.ingress_prefixes
        return frozenset(result)

    def pop_for_prefix(self, prefix: str) -> Optional[TMPoP]:
        """The TM-PoP behind a prefix (identified by tunnel establishment)."""
        for tm_pop in self._pops.values():
            if prefix in tm_pop.ingress_prefixes:
                return tm_pop
        return None

    def relay_batch(
        self,
        flows_by_prefix: Dict[str, int],
        bytes_by_prefix: Optional[Dict[str, float]] = None,
    ) -> int:
        """Credit batched per-prefix flow/byte totals to the owning TM-PoPs.

        Takes the per-destination aggregates a data plane produces
        (``destinations()`` / ``bytes_by_destination()``) and fans them out
        to each prefix's TM-PoP counters.  Returns the number of flows that
        matched a registered prefix.
        """
        matched = 0
        for prefix, n_flows in flows_by_prefix.items():
            tm_pop = self.pop_for_prefix(prefix)
            if tm_pop is None:
                continue
            n_bytes = (bytes_by_prefix or {}).get(prefix, 0.0)
            tm_pop.ingest_batch(n_flows, n_bytes)
            matched += int(n_flows)
        return matched
