"""TM-Edge: the edge-proxy side of the Traffic Manager.

A TM-Edge lives in a cloud-edge network stack inside the enterprise.  It
resolves the available destination prefixes per service (§3.2), measures
them continuously, selects the best via a hysteretic policy, maps new flows
to the current selection (immutably, per flow), and tunnels packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional

from repro.traffic_manager.flows import FiveTuple, FlowEntry, FlowTable
from repro.traffic_manager.selection import LowestLatencySelector, SelectionPolicyConfig
from repro.traffic_manager.tm_pop import PrefixDirectory, TMPoP
from repro.traffic_manager.tunnel import Packet, encapsulate


@dataclass
class TunnelState:
    """One established tunnel from this edge to a destination prefix."""

    prefix: str
    tm_pop_name: str
    last_rtt_ms: float = float("inf")

    @property
    def is_up(self) -> bool:
        return self.last_rtt_ms != float("inf")


class TMEdge:
    """The edge proxy node: resolution, measurement, selection, mapping."""

    def __init__(
        self,
        edge_ip: str,
        directory: PrefixDirectory,
        selection: Optional[SelectionPolicyConfig] = None,
    ) -> None:
        self._edge_ip = edge_ip
        self._directory = directory
        self._tunnels: Dict[str, Dict[str, TunnelState]] = {}  # service -> prefix -> state
        self._selectors: Dict[str, LowestLatencySelector] = {}
        self._selection_config = selection or SelectionPolicyConfig()
        self._flows = FlowTable()

    @property
    def edge_ip(self) -> str:
        return self._edge_ip

    @property
    def flow_table(self) -> FlowTable:
        return self._flows

    # -- resolving available prefixes (§3.2) --------------------------------

    def resolve_service(self, service: str) -> FrozenSet[str]:
        """Query the directory, establish tunnels, learn prefix->PoP mapping."""
        prefixes = self._directory.prefixes_for_service(service)
        tunnels = self._tunnels.setdefault(service, {})
        for prefix in prefixes:
            if prefix in tunnels:
                continue
            tm_pop = self._directory.pop_for_prefix(prefix)
            if tm_pop is None:
                continue  # prefix announced but no TM-PoP behind it yet
            tunnels[prefix] = TunnelState(prefix=prefix, tm_pop_name=tm_pop.name)
        # Drop tunnels whose prefix is no longer available.
        for prefix in list(tunnels):
            if prefix not in prefixes:
                del tunnels[prefix]
        self._selectors.setdefault(service, LowestLatencySelector(self._selection_config))
        return frozenset(tunnels)

    def tunnel_map(self, service: str) -> Mapping[str, str]:
        """The learned destination-prefix -> TM-PoP mapping for a service."""
        return {
            prefix: state.tm_pop_name
            for prefix, state in self._tunnels.get(service, {}).items()
        }

    # -- measurement + selection -----------------------------------------------

    def record_measurements(self, service: str, rtts_ms: Mapping[str, float]) -> Optional[str]:
        """Feed one round of tunnel RTTs; returns the selected prefix."""
        tunnels = self._tunnels.get(service)
        if tunnels is None:
            raise KeyError(f"service {service!r} not resolved yet")
        for prefix, rtt in rtts_ms.items():
            if prefix in tunnels:
                tunnels[prefix].last_rtt_ms = rtt
        selector = self._selectors[service]
        return selector.update(
            {prefix: state.last_rtt_ms for prefix, state in tunnels.items()}
        )

    def selected_prefix(self, service: str) -> Optional[str]:
        selector = self._selectors.get(service)
        return None if selector is None else selector.current

    # -- flow handling ------------------------------------------------------------

    def admit_flow(self, service: str, five_tuple: FiveTuple, now_s: float) -> FlowEntry:
        """Map a *new* flow to the currently-best destination (immutable)."""
        existing = self._flows.lookup(five_tuple)
        if existing is not None:
            return existing
        selected = self.selected_prefix(service)
        if selected is None:
            raise RuntimeError(f"no live destination for service {service!r}")
        return self._flows.map_flow(five_tuple, selected, now_s)

    def forward(self, service: str, packet: Packet, five_tuple: FiveTuple, now_s: float) -> Packet:
        """Tunnel a client packet along its flow's pinned destination."""
        entry = self._flows.lookup(five_tuple)
        if entry is None:
            entry = self.admit_flow(service, five_tuple, now_s)
        entry.record_bytes(packet.payload_bytes)
        return encapsulate(packet, edge_ip=self._edge_ip, tunnel_dst_ip=_prefix_address(entry.destination_prefix))


def _prefix_address(prefix: str) -> str:
    """A representative destination address inside a /24 prefix."""
    base = prefix.split("/")[0]
    octets = base.split(".")
    octets[-1] = "1"
    return ".".join(octets)
