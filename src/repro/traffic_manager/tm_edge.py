"""TM-Edge: the edge-proxy side of the Traffic Manager.

A TM-Edge lives in a cloud-edge network stack inside the enterprise.  It
resolves the available destination prefixes per service (§3.2), measures
them continuously, selects the best via a hysteretic policy, maps new flows
to the current selection (immutably, per flow), and tunnels packets.

Two flow surfaces coexist:

* the historical **per-flow** path (:meth:`TMEdge.admit_flow`,
  :meth:`TMEdge.forward`) over the scalar :class:`FlowTable` — one
  :class:`FiveTuple` at a time, the reference semantics;
* the **batched** path (:meth:`TMEdge.forward_batch`,
  :meth:`TMEdge.admit_batch`, :meth:`TMEdge.end_batch`) over a pluggable
  :class:`repro.traffic_manager.dataplane.DataPlane` — by default a
  :class:`ScalarDataPlane` sharing this edge's flow table, or a
  :class:`VectorFlowTable` for million-flow workloads.

With ``remap_on_failover=True`` the edge re-pins flows off a tunnel the
moment a measurement round reports it dead (RTT-timescale failover, §5.2.3)
instead of leaving them pinned to a black hole.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Mapping, Optional

import numpy as np

from repro.perf import PERF
from repro.telemetry import TRACER, emit_event
from repro.traffic_manager.dataplane import (
    DataPlane,
    FlowBatch,
    ForwardResult,
    ScalarDataPlane,
    TM_SNAPSHOT_VERSION,
    plane_from_snapshot,
)
from repro.traffic_manager.flows import FiveTuple, FlowEntry, FlowTable
from repro.traffic_manager.selection import LowestLatencySelector, SelectionPolicyConfig
from repro.traffic_manager.tm_pop import PrefixDirectory, TMPoP
from repro.traffic_manager.tunnel import Packet, encapsulate


@dataclass
class TunnelState:
    """One established tunnel from this edge to a destination prefix."""

    prefix: str
    tm_pop_name: str
    last_rtt_ms: float = float("inf")

    @property
    def is_up(self) -> bool:
        return self.last_rtt_ms != float("inf")


class TMEdge:
    """The edge proxy node: resolution, measurement, selection, mapping."""

    def __init__(
        self,
        edge_ip: str,
        directory: PrefixDirectory,
        selection: Optional[SelectionPolicyConfig] = None,
        data_plane: Optional[DataPlane] = None,
        remap_on_failover: bool = False,
    ) -> None:
        self._edge_ip = edge_ip
        self._directory = directory
        self._tunnels: Dict[str, Dict[str, TunnelState]] = {}  # service -> prefix -> state
        self._selectors: Dict[str, LowestLatencySelector] = {}
        self._selection_config = selection or SelectionPolicyConfig()
        self._flows = FlowTable()
        self._plane: DataPlane = (
            data_plane if data_plane is not None else ScalarDataPlane(self._flows)
        )
        self._service_ids: Dict[str, int] = {}
        self._remap_on_failover = remap_on_failover
        self._flows_remapped = 0

    @property
    def edge_ip(self) -> str:
        return self._edge_ip

    @property
    def flow_table(self) -> FlowTable:
        return self._flows

    @property
    def data_plane(self) -> DataPlane:
        return self._plane

    @property
    def flows_remapped(self) -> int:
        """Total flows moved by failover re-mapping on this edge."""
        return self._flows_remapped

    def service_id(self, service: str) -> int:
        """Stable small integer for a service (assigned on first use)."""
        sid = self._service_ids.get(service)
        if sid is None:
            sid = len(self._service_ids)
            self._service_ids[service] = sid
        return sid

    # -- resolving available prefixes (§3.2) --------------------------------

    def resolve_service(self, service: str) -> FrozenSet[str]:
        """Query the directory, establish tunnels, learn prefix->PoP mapping."""
        prefixes = self._directory.prefixes_for_service(service)
        tunnels = self._tunnels.setdefault(service, {})
        for prefix in prefixes:
            if prefix in tunnels:
                continue
            tm_pop = self._directory.pop_for_prefix(prefix)
            if tm_pop is None:
                continue  # prefix announced but no TM-PoP behind it yet
            tunnels[prefix] = TunnelState(prefix=prefix, tm_pop_name=tm_pop.name)
        # Drop tunnels whose prefix is no longer available.
        for prefix in list(tunnels):
            if prefix not in prefixes:
                del tunnels[prefix]
        self._selectors.setdefault(service, LowestLatencySelector(self._selection_config))
        self.service_id(service)
        return frozenset(tunnels)

    def tunnel_map(self, service: str) -> Mapping[str, str]:
        """The learned destination-prefix -> TM-PoP mapping for a service."""
        return {
            prefix: state.tm_pop_name
            for prefix, state in self._tunnels.get(service, {}).items()
        }

    # -- measurement + selection -----------------------------------------------

    def record_measurements(self, service: str, rtts_ms: Mapping[str, float]) -> Optional[str]:
        """Feed one round of tunnel RTTs; returns the selected prefix.

        With ``remap_on_failover`` enabled, flows pinned to tunnels this
        round reports dead are re-pinned to the (new) selection in the same
        call — the data-plane half of RTT-timescale failover.
        """
        tunnels = self._tunnels.get(service)
        if tunnels is None:
            raise KeyError(f"service {service!r} not resolved yet")
        for prefix, rtt in rtts_ms.items():
            if prefix in tunnels:
                tunnels[prefix].last_rtt_ms = rtt
        selector = self._selectors[service]
        selected = selector.update(
            {prefix: state.last_rtt_ms for prefix, state in tunnels.items()}
        )
        if self._remap_on_failover and selected is not None:
            for prefix in sorted(tunnels):
                state = tunnels[prefix]
                if prefix != selected and not state.is_up:
                    with TRACER.span(
                        "tm_edge.remap_on_failover",
                        service=service, dead=prefix, selected=selected,
                    ) as span:
                        moved = self._plane.remap(prefix, selected)
                        span.tag("flows_moved", moved)
                    self._flows_remapped += moved
                    if moved:
                        emit_event(
                            "failover_remap",
                            service=service,
                            dead_prefix=prefix,
                            new_prefix=selected,
                            flows_moved=moved,
                        )
        return selected

    def selected_prefix(self, service: str) -> Optional[str]:
        selector = self._selectors.get(service)
        return None if selector is None else selector.current

    def selections_by_service_id(self) -> Dict[int, Optional[str]]:
        """Current per-service selections keyed by interned service id."""
        return {
            self._service_ids[service]: selector.current
            for service, selector in self._selectors.items()
            if service in self._service_ids
        }

    # -- flow handling (per-flow reference path) ----------------------------

    def admit_flow(self, service: str, five_tuple: FiveTuple, now_s: float) -> FlowEntry:
        """Map a *new* flow to the currently-best destination (immutable)."""
        existing = self._flows.lookup(five_tuple)
        if existing is not None:
            return existing
        selected = self.selected_prefix(service)
        if selected is None:
            raise RuntimeError(f"no live destination for service {service!r}")
        return self._flows.map_flow(
            five_tuple, selected, now_s, service_id=self.service_id(service)
        )

    def forward(self, service: str, packet: Packet, five_tuple: FiveTuple, now_s: float) -> Packet:
        """Tunnel a client packet along its flow's pinned destination."""
        entry = self._flows.lookup(five_tuple)
        if entry is None:
            entry = self.admit_flow(service, five_tuple, now_s)
        entry.record_bytes(packet.payload_bytes, now_s=now_s)
        return encapsulate(packet, edge_ip=self._edge_ip, tunnel_dst_ip=_prefix_address(entry.destination_prefix))

    # -- flow handling (batched path) ---------------------------------------

    def forward_batch(self, batch: FlowBatch, now_s: float) -> ForwardResult:
        """Steer one arrival/traffic batch through the data plane.

        Service ids in the batch are the ones :meth:`service_id` assigned;
        each flow is pinned (on first sight) to its service's current
        selection, existing flows accumulate bytes on their immutable
        mapping, and flows of services with no live destination are dropped.
        """
        with TRACER.span("tm_edge.forward_batch", flows=len(batch)):
            with PERF.timed("tm_edge.forward_batch"):
                return self._plane.forward(
                    batch, self.selections_by_service_id(), now_s
                )

    def admit_batch(self, batch: FlowBatch, now_s: float) -> ForwardResult:
        """Pin a batch of new flows without byte accounting."""
        with TRACER.span("tm_edge.admit_batch", flows=len(batch)):
            with PERF.timed("tm_edge.forward_batch"):
                return self._plane.admit(
                    batch, self.selections_by_service_id(), now_s
                )

    def end_batch(self, keys: np.ndarray) -> int:
        """Retire a batch of flows by key; unknown keys are tolerated."""
        return self._plane.end(keys)

    # -- state transfer ------------------------------------------------------

    def to_snapshot(self) -> Dict[str, Any]:
        """Versioned plain-data state (same convention as RoutingModel v2).

        Carries the tunnel tables, selector states, service-id interning,
        and the full data-plane snapshot, so an edge restored with
        :meth:`from_snapshot` steers exactly like the original.
        """
        return {
            "version": TM_SNAPSHOT_VERSION,
            "edge_ip": self._edge_ip,
            "selection": {
                "switch_threshold": self._selection_config.switch_threshold,
                "stability_rounds": self._selection_config.stability_rounds,
            },
            "remap_on_failover": self._remap_on_failover,
            "flows_remapped": self._flows_remapped,
            "services": dict(self._service_ids),
            "tunnels": {
                service: {
                    prefix: [state.tm_pop_name, state.last_rtt_ms]
                    for prefix, state in tunnels.items()
                }
                for service, tunnels in self._tunnels.items()
            },
            "selectors": {
                service: selector.to_snapshot()
                for service, selector in self._selectors.items()
            },
            "data_plane": self._plane.to_snapshot(),
        }

    @classmethod
    def from_snapshot(
        cls, snapshot: Mapping[str, Any], directory: PrefixDirectory
    ) -> "TMEdge":
        """Rebuild an edge from :meth:`to_snapshot` against a directory."""
        version = snapshot.get("version")
        if version != TM_SNAPSHOT_VERSION:
            raise ValueError(f"unsupported snapshot version {version!r}")
        selection = SelectionPolicyConfig(
            switch_threshold=snapshot["selection"]["switch_threshold"],
            stability_rounds=snapshot["selection"]["stability_rounds"],
        )
        plane = plane_from_snapshot(snapshot["data_plane"])
        edge = cls(
            edge_ip=snapshot["edge_ip"],
            directory=directory,
            selection=selection,
            data_plane=plane,
            remap_on_failover=bool(snapshot.get("remap_on_failover", False)),
        )
        if isinstance(plane, ScalarDataPlane):
            edge._flows = plane.table
        edge._flows_remapped = int(snapshot.get("flows_remapped", 0))
        edge._service_ids = {
            name: int(sid) for name, sid in snapshot.get("services", {}).items()
        }
        edge._tunnels = {
            service: {
                prefix: TunnelState(
                    prefix=prefix,
                    tm_pop_name=pop_name,
                    last_rtt_ms=float(rtt),
                )
                for prefix, (pop_name, rtt) in tunnels.items()
            }
            for service, tunnels in snapshot.get("tunnels", {}).items()
        }
        edge._selectors = {
            service: LowestLatencySelector.from_snapshot(state, selection)
            for service, state in snapshot.get("selectors", {}).items()
        }
        return edge


def _prefix_address(prefix: str) -> str:
    """A representative destination address inside a /24 prefix."""
    base = prefix.split("/")[0]
    octets = base.split(".")
    octets[-1] = "1"
    return ".".join(octets)
