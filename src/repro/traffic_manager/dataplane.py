"""Batched Traffic Manager data planes: scalar reference and vectorized.

The Traffic Manager steers each flow at 5-tuple granularity (§3.2), which
at the ROADMAP's "millions of users" scale means the per-flow state machine
must not cost one Python object and one dict lookup per flow.  This module
defines the batched data-plane contract and its two implementations:

* :class:`ScalarDataPlane` — the reference.  A thin adapter over the
  original :class:`repro.traffic_manager.flows.FlowTable` that replays a
  batch one flow at a time, exactly as the pre-vectorized TM-Edge did.
* :class:`VectorFlowTable` — the production path.  A struct-of-arrays
  table (numpy columns for hashed 5-tuple, service id, selected prefix id,
  bytes, created/last-seen timestamps) kept sorted by flow key, so a batch
  of a million admissions is a handful of ``searchsorted``/``insert``
  array operations instead of a million dict probes.

Both implement the same documented batch semantics (see
:class:`DataPlane`), so property tests can assert bit-identical steering
decisions, byte counters, and failover re-mappings on identical inputs.

Batch semantics (binding for every implementation):

* flows are identified by a 64-bit key (:func:`flow_key` hashes a
  :class:`~repro.traffic_manager.flows.FiveTuple`; synthetic workloads
  draw keys directly);
* a key already in the table keeps its pinned prefix — mappings are
  immutable for the flow's lifetime (§3.2) — and only accumulates bytes;
* a new key is pinned to its service's currently-selected prefix at
  *first occurrence within the batch*; later occurrences in the same
  batch join that decision;
* a new key whose service has no live selection is dropped (unroutable)
  for the whole batch — every occurrence counts as unroutable;
* :meth:`~DataPlane.remap` implements RTT-timescale failover: every flow
  pinned to a dead prefix moves to the replacement in one operation.

Batch counters/timers land in the shared :data:`repro.perf.PERF`
registry under ``tm.*`` names.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.perf import PERF
from repro.traffic_manager.flows import FiveTuple, FlowTable

try:  # Python 3.8+: typing.Protocol
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore

    def runtime_checkable(cls):  # type: ignore
        return cls


#: Version stamp of TM data-plane / TM-Edge snapshots (same versioned-dict
#: convention as :meth:`repro.core.routing_model.RoutingModel.snapshot_preferences`).
TM_SNAPSHOT_VERSION = 1


def flow_key(five_tuple: FiveTuple) -> int:
    """Deterministic 64-bit key for a transport 5-tuple.

    Python's builtin ``hash`` is salted per process; this must be stable
    across runs (snapshots carry keys) so it hashes the canonical text form.
    """
    text = (
        f"{five_tuple.proto}|{five_tuple.src_ip}|{five_tuple.src_port}"
        f"|{five_tuple.dst_ip}|{five_tuple.dst_port}"
    )
    return int.from_bytes(
        hashlib.blake2b(text.encode(), digest_size=8).digest(), "big"
    )


@dataclass(frozen=True)
class FlowBatch:
    """One struct-of-arrays batch of flow activity offered to a data plane.

    Columns (equal length): ``keys`` (uint64 hashed 5-tuples),
    ``service_ids`` (int32), ``payload_bytes`` (float64 bytes carried by
    this batch's packets per flow; zero for pure admissions).
    """

    keys: np.ndarray
    service_ids: np.ndarray
    payload_bytes: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "keys", np.ascontiguousarray(self.keys, dtype=np.uint64)
        )
        object.__setattr__(
            self,
            "service_ids",
            np.ascontiguousarray(self.service_ids, dtype=np.int32),
        )
        object.__setattr__(
            self,
            "payload_bytes",
            np.ascontiguousarray(self.payload_bytes, dtype=np.float64),
        )
        if not (
            len(self.keys) == len(self.service_ids) == len(self.payload_bytes)
        ):
            raise ValueError("FlowBatch columns must have equal length")
        if len(self.payload_bytes) and float(self.payload_bytes.min()) < 0:
            raise ValueError("payload bytes must be non-negative")

    def __len__(self) -> int:
        return len(self.keys)

    @classmethod
    def from_flows(
        cls,
        flows: Sequence[Tuple[FiveTuple, int, float]],
    ) -> "FlowBatch":
        """Build a batch from ``(five_tuple, service_id, bytes)`` triples."""
        keys = np.fromiter(
            (flow_key(ft) for ft, _sid, _b in flows),
            dtype=np.uint64,
            count=len(flows),
        )
        sids = np.fromiter(
            (sid for _ft, sid, _b in flows), dtype=np.int32, count=len(flows)
        )
        nbytes = np.fromiter(
            (b for _ft, _sid, b in flows), dtype=np.float64, count=len(flows)
        )
        return cls(keys=keys, service_ids=sids, payload_bytes=nbytes)

    @classmethod
    def synthesize(
        cls,
        n_flows: int,
        seed: int = 0,
        n_services: int = 1,
        service_weights: Optional[Sequence[float]] = None,
        mean_bytes: float = 1500.0,
    ) -> "FlowBatch":
        """A reproducible synthetic arrival batch (Zipf-able service mix).

        ``service_weights`` (e.g. UG traffic volumes) biases which service
        each flow belongs to; uniform when omitted.  Keys are drawn from the
        full 64-bit space — at a million flows the birthday collision odds
        are ~3e-8, and a collision merely merges two synthetic flows.
        """
        if n_flows < 0:
            raise ValueError("n_flows must be non-negative")
        if n_services < 1:
            raise ValueError("need at least one service")
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, 2**64, size=n_flows, dtype=np.uint64)
        if service_weights is not None:
            weights = np.asarray(service_weights, dtype=np.float64)
            if len(weights) != n_services:
                raise ValueError("service_weights length must equal n_services")
            weights = weights / weights.sum()
            sids = rng.choice(n_services, size=n_flows, p=weights).astype(np.int32)
        else:
            sids = rng.integers(0, n_services, size=n_flows, dtype=np.int32)
        nbytes = rng.exponential(mean_bytes, size=n_flows)
        return cls(keys=keys, service_ids=sids, payload_bytes=nbytes)


@dataclass(frozen=True)
class ForwardResult:
    """Outcome of one batched :meth:`DataPlane.forward` call.

    ``assignments`` holds, per input flow, the interned id of the prefix
    the flow is pinned to (``-1`` if dropped as unroutable); translate with
    :meth:`DataPlane.prefix_name`.
    """

    assignments: np.ndarray
    admitted: int
    existing: int
    unroutable: int
    bytes_recorded: float


@runtime_checkable
class DataPlane(Protocol):
    """The batched flow-steering contract both implementations honor."""

    def prefix_id(self, prefix: str) -> int:
        """Intern a destination prefix; stable id for the plane's lifetime."""
        ...

    def prefix_name(self, prefix_id: int) -> str:
        """Inverse of :meth:`prefix_id`."""
        ...

    def forward(
        self,
        batch: FlowBatch,
        selections: Mapping[int, Optional[str]],
        now_s: float,
    ) -> ForwardResult:
        """Admit-if-new, pin, and account bytes for a batch of flows."""
        ...

    def admit(
        self,
        batch: FlowBatch,
        selections: Mapping[int, Optional[str]],
        now_s: float,
    ) -> ForwardResult:
        """Pin new flows only (no byte accounting)."""
        ...

    def remap(self, from_prefix: str, to_prefix: str) -> int:
        """Failover: move every flow pinned to one prefix onto another."""
        ...

    def end(self, keys: np.ndarray) -> int:
        """Remove flows by key; unknown keys are tolerated.  Returns count."""
        ...

    def flow_count(self) -> int:
        """Live flows in the table."""
        ...

    def destinations(self) -> Dict[str, int]:
        """Live-flow count per destination prefix."""
        ...

    def bytes_by_destination(self) -> Dict[str, float]:
        """Accumulated bytes per destination prefix (live flows)."""
        ...

    def to_snapshot(self) -> Dict[str, Any]:
        """Versioned plain-data state (see ``TM_SNAPSHOT_VERSION``)."""
        ...


class _InternerMixin:
    """Shared prefix-string interning (id order is operation order)."""

    _prefix_names: List[str]
    _prefix_index: Dict[str, int]

    def _init_interner(self) -> None:
        self._prefix_names = []
        self._prefix_index = {}

    def prefix_id(self, prefix: str) -> int:
        pid = self._prefix_index.get(prefix)
        if pid is None:
            pid = len(self._prefix_names)
            self._prefix_names.append(prefix)
            self._prefix_index[prefix] = pid
        return pid

    def prefix_name(self, prefix_id: int) -> str:
        try:
            return self._prefix_names[prefix_id]
        except IndexError:
            raise KeyError(f"unknown prefix id {prefix_id}") from None

    def _selection_ids(
        self, selections: Mapping[int, Optional[str]]
    ) -> Dict[int, int]:
        """Interned per-service selections; sorted so both planes intern
        prefixes in the same order on identical inputs."""
        out: Dict[int, int] = {}
        for sid in sorted(selections):
            prefix = selections[sid]
            if prefix is not None:
                out[int(sid)] = self.prefix_id(prefix)
        return out


def _perf_stats():
    """The shared tm.* counters (acquired once per plane instance)."""
    return (
        PERF.counter("tm.flows_admitted"),
        PERF.counter("tm.flows_existing"),
        PERF.counter("tm.flows_unroutable"),
        PERF.counter("tm.flows_remapped"),
        PERF.counter("tm.flows_ended"),
        PERF.counter("tm.batches"),
        PERF.histogram("tm.batch_flows"),
    )


class ScalarDataPlane(_InternerMixin):
    """The reference data plane: one :class:`FlowTable` probe per flow.

    Wraps (and may share) a plain :class:`FlowTable`; batches are replayed
    flow by flow through the exact per-flow code path the original TM-Edge
    used, making this the semantic oracle the vectorized plane is
    property-tested against.  Keys in the table are the integer flow keys.
    """

    kind = "scalar"

    def __init__(self, table: Optional[FlowTable] = None) -> None:
        self._table = table if table is not None else FlowTable()
        self._init_interner()
        (
            self._c_admitted,
            self._c_existing,
            self._c_unroutable,
            self._c_remapped,
            self._c_ended,
            self._c_batches,
            self._h_batch,
        ) = _perf_stats()

    @property
    def table(self) -> FlowTable:
        return self._table

    def forward(
        self,
        batch: FlowBatch,
        selections: Mapping[int, Optional[str]],
        now_s: float,
    ) -> ForwardResult:
        with PERF.timed("tm.forward.scalar"):
            return self._forward(batch, selections, now_s, record_bytes=True)

    def admit(
        self,
        batch: FlowBatch,
        selections: Mapping[int, Optional[str]],
        now_s: float,
    ) -> ForwardResult:
        with PERF.timed("tm.forward.scalar"):
            return self._forward(batch, selections, now_s, record_bytes=False)

    def _forward(
        self,
        batch: FlowBatch,
        selections: Mapping[int, Optional[str]],
        now_s: float,
        record_bytes: bool,
    ) -> ForwardResult:
        sel = self._selection_ids(selections)
        table = self._table
        out = np.full(len(batch), -1, dtype=np.int32)
        admitted = existing = unroutable = 0
        bytes_recorded = 0.0
        dropped: set = set()
        for i, (key, sid, nbytes) in enumerate(
            zip(
                batch.keys.tolist(),
                batch.service_ids.tolist(),
                batch.payload_bytes.tolist(),
            )
        ):
            entry = table.lookup(key)
            if entry is None:
                if key in dropped:
                    unroutable += 1
                    continue
                pid = sel.get(sid, -1)
                if pid < 0:
                    dropped.add(key)
                    unroutable += 1
                    continue
                entry = table.map_flow(
                    key, self._prefix_names[pid], now_s, service_id=sid
                )
                admitted += 1
            else:
                pid = self._prefix_index[entry.destination_prefix]
                existing += 1
            if record_bytes and nbytes:
                entry.record_bytes(int(nbytes), now_s=now_s)
                bytes_recorded += int(nbytes)
            else:
                entry.last_seen_s = now_s
            out[i] = pid
        self._c_admitted.add(admitted)
        self._c_existing.add(existing)
        self._c_unroutable.add(unroutable)
        self._c_batches.add()
        self._h_batch.observe(len(batch))
        return ForwardResult(
            assignments=out,
            admitted=admitted,
            existing=existing,
            unroutable=unroutable,
            bytes_recorded=bytes_recorded,
        )

    def remap(self, from_prefix: str, to_prefix: str) -> int:
        self.prefix_id(from_prefix)
        self.prefix_id(to_prefix)
        moved = self._table.remap_flows(from_prefix, to_prefix)
        self._c_remapped.add(moved)
        return moved

    def end(self, keys: np.ndarray) -> int:
        ended = 0
        for key in np.asarray(keys, dtype=np.uint64).tolist():
            if self._table.end_flow(key) is not None:
                ended += 1
        self._c_ended.add(ended)
        return ended

    def flow_count(self) -> int:
        return len(self._table)

    def destinations(self) -> Dict[str, int]:
        return self._table.destinations()

    def bytes_by_destination(self) -> Dict[str, float]:
        return self._table.bytes_by_destination()

    def to_snapshot(self) -> Dict[str, Any]:
        return {
            "version": TM_SNAPSHOT_VERSION,
            "kind": self.kind,
            "prefixes": list(self._prefix_names),
            "flows": {
                int(key): [
                    entry.service_id,
                    self._prefix_index[entry.destination_prefix],
                    entry.bytes_sent,
                    entry.created_at_s,
                    entry.last_seen_s,
                ]
                for key, entry in self._table.items()
            },
        }

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "ScalarDataPlane":
        _check_snapshot(snapshot, "scalar")
        plane = cls()
        for name in snapshot["prefixes"]:
            plane.prefix_id(name)
        for key, (sid, pid, nbytes, created, last_seen) in snapshot[
            "flows"
        ].items():
            entry = plane._table.map_flow(
                int(key),
                plane._prefix_names[int(pid)],
                float(created),
                service_id=int(sid),
            )
            entry.bytes_sent = int(nbytes)
            entry.last_seen_s = float(last_seen)
        return plane


class VectorFlowTable(_InternerMixin):
    """Struct-of-arrays flow table: the million-flow data plane.

    Columns are parallel numpy arrays kept sorted by flow key, so a batch
    lookup is one ``searchsorted`` and a batch admission one merged
    ``insert`` per column — O((n + m) log n) for the whole batch with no
    per-flow Python work.
    """

    kind = "vector"

    _COLUMNS = ("service", "prefix", "bytes", "created", "last_seen")

    def __init__(self) -> None:
        self._keys = np.empty(0, dtype=np.uint64)
        self._service = np.empty(0, dtype=np.int32)
        self._prefix = np.empty(0, dtype=np.int32)
        self._bytes = np.empty(0, dtype=np.float64)
        self._created = np.empty(0, dtype=np.float64)
        self._last_seen = np.empty(0, dtype=np.float64)
        self._init_interner()
        (
            self._c_admitted,
            self._c_existing,
            self._c_unroutable,
            self._c_remapped,
            self._c_ended,
            self._c_batches,
            self._h_batch,
        ) = _perf_stats()

    def __len__(self) -> int:
        return len(self._keys)

    def _locate(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(row, found) for a key array against the sorted table."""
        pos = np.searchsorted(self._keys, keys)
        if len(self._keys):
            in_range = pos < len(self._keys)
            rows = np.where(in_range, pos, 0)
            found = in_range & (self._keys[rows] == keys)
        else:
            rows = pos
            found = np.zeros(len(keys), dtype=bool)
        return rows, found

    def forward(
        self,
        batch: FlowBatch,
        selections: Mapping[int, Optional[str]],
        now_s: float,
    ) -> ForwardResult:
        with PERF.timed("tm.forward.vector"):
            return self._forward(batch, selections, now_s, record_bytes=True)

    def admit(
        self,
        batch: FlowBatch,
        selections: Mapping[int, Optional[str]],
        now_s: float,
    ) -> ForwardResult:
        with PERF.timed("tm.forward.vector"):
            return self._forward(batch, selections, now_s, record_bytes=False)

    def _forward(
        self,
        batch: FlowBatch,
        selections: Mapping[int, Optional[str]],
        now_s: float,
        record_bytes: bool,
    ) -> ForwardResult:
        sel = self._selection_ids(selections)
        n = len(batch)
        out = np.full(n, -1, dtype=np.int32)
        bytes_recorded = 0.0
        if n == 0:
            self._c_batches.add()
            self._h_batch.observe(0)
            return ForwardResult(out, 0, 0, 0, 0.0)

        # Per-service selection lookup array (-1 = no live destination).
        max_sid = int(batch.service_ids.max())
        if sel:
            max_sid = max(max_sid, max(sel))
        sel_arr = np.full(max_sid + 1, -1, dtype=np.int32)
        for sid, pid in sel.items():
            if sid <= max_sid:
                sel_arr[sid] = pid

        rows, found = self._locate(batch.keys)
        hit_rows = rows[found]
        if len(hit_rows):
            if record_bytes:
                np.add.at(
                    self._bytes,
                    hit_rows,
                    np.floor(batch.payload_bytes[found]),
                )
                bytes_recorded += float(
                    np.floor(batch.payload_bytes[found]).sum()
                )
            self._last_seen[hit_rows] = now_s
            out[np.nonzero(found)[0]] = self._prefix[hit_rows]
        existing = int(found.sum())

        miss = ~found
        admitted = 0
        unroutable = 0
        if miss.any():
            new_keys = batch.keys[miss]
            new_sids = batch.service_ids[miss]
            new_bytes = (
                np.floor(batch.payload_bytes[miss])
                if record_bytes
                else np.zeros(int(miss.sum()))
            )
            # First occurrence in batch order decides the flow's fate —
            # same rule the scalar reference applies flow by flow.
            uniq, first, inv = np.unique(
                new_keys, return_index=True, return_inverse=True
            )
            first_sid = np.clip(new_sids[first], 0, max_sid)
            pid_new = sel_arr[first_sid]
            routable = pid_new >= 0
            per_occurrence = pid_new[inv]
            out[np.nonzero(miss)[0]] = per_occurrence
            unroutable = int((per_occurrence < 0).sum())
            if routable.any():
                agg = np.zeros(len(uniq))
                np.add.at(agg, inv, new_bytes)
                create_keys = uniq[routable]
                insert_at = np.searchsorted(self._keys, create_keys)
                self._keys = np.insert(self._keys, insert_at, create_keys)
                self._service = np.insert(
                    self._service, insert_at, new_sids[first][routable]
                )
                self._prefix = np.insert(
                    self._prefix, insert_at, pid_new[routable]
                )
                self._bytes = np.insert(
                    self._bytes, insert_at, agg[routable]
                )
                self._created = np.insert(self._created, insert_at, now_s)
                self._last_seen = np.insert(self._last_seen, insert_at, now_s)
                admitted = int(routable.sum())
                bytes_recorded += float(agg[routable].sum())
                # Later in-batch occurrences of a just-admitted key find
                # the entry in the scalar reference (admit, then hit), so
                # they count as existing — only the first occurrence is an
                # admission.
                existing += int(routable[inv].sum()) - admitted

        self._c_admitted.add(admitted)
        self._c_existing.add(existing)
        self._c_unroutable.add(unroutable)
        self._c_batches.add()
        self._h_batch.observe(n)
        return ForwardResult(
            assignments=out,
            admitted=admitted,
            existing=existing,
            unroutable=unroutable,
            bytes_recorded=bytes_recorded,
        )

    def remap(self, from_prefix: str, to_prefix: str) -> int:
        with PERF.timed("tm.remap.vector"):
            from_id = self.prefix_id(from_prefix)
            to_id = self.prefix_id(to_prefix)
            mask = self._prefix == from_id
            moved = int(mask.sum())
            if moved:
                self._prefix[mask] = to_id
            self._c_remapped.add(moved)
            return moved

    def end(self, keys: np.ndarray) -> int:
        keys = np.asarray(keys, dtype=np.uint64)
        rows, found = self._locate(keys)
        doomed = np.unique(rows[found])
        if len(doomed):
            keep = np.ones(len(self._keys), dtype=bool)
            keep[doomed] = False
            self._keys = self._keys[keep]
            self._service = self._service[keep]
            self._prefix = self._prefix[keep]
            self._bytes = self._bytes[keep]
            self._created = self._created[keep]
            self._last_seen = self._last_seen[keep]
        ended = int(len(doomed))
        self._c_ended.add(ended)
        return ended

    def flow_count(self) -> int:
        return len(self._keys)

    def destinations(self) -> Dict[str, int]:
        if not len(self._keys):
            return {}
        counts = np.bincount(self._prefix, minlength=len(self._prefix_names))
        return {
            self._prefix_names[pid]: int(count)
            for pid, count in enumerate(counts)
            if count
        }

    def bytes_by_destination(self) -> Dict[str, float]:
        if not len(self._keys):
            return {}
        totals = np.bincount(
            self._prefix, weights=self._bytes, minlength=len(self._prefix_names)
        )
        counts = np.bincount(self._prefix, minlength=len(self._prefix_names))
        return {
            self._prefix_names[pid]: float(totals[pid])
            for pid in range(len(self._prefix_names))
            if counts[pid]
        }

    def to_packed_snapshot(self) -> Dict[str, Any]:
        """Compact snapshot: base64-packed columns instead of JSON lists.

        A million-flow table serializes to ~40 MB of JSON numbers via
        :meth:`to_snapshot`; the packed form is the raw column bytes
        (~37 bytes/flow), which is what rides inside controller
        checkpoints (:class:`repro.soak.SoakDriver`).  Same version
        stamp, distinct ``kind`` so :func:`plane_from_snapshot` callers
        can't confuse the two layouts.
        """
        import base64

        def pack(array: np.ndarray) -> Dict[str, str]:
            return {
                "dtype": str(array.dtype),
                "b64": base64.b64encode(
                    np.ascontiguousarray(array).tobytes()
                ).decode("ascii"),
            }

        return {
            "version": TM_SNAPSHOT_VERSION,
            "kind": "vector-packed",
            "prefixes": list(self._prefix_names),
            "columns": {
                "keys": pack(self._keys),
                "service": pack(self._service),
                "prefix": pack(self._prefix),
                "bytes": pack(self._bytes),
                "created": pack(self._created),
                "last_seen": pack(self._last_seen),
            },
        }

    @classmethod
    def from_packed_snapshot(
        cls, snapshot: Mapping[str, Any]
    ) -> "VectorFlowTable":
        """Inverse of :meth:`to_packed_snapshot` (exact bit round-trip)."""
        import base64

        _check_snapshot(snapshot, "vector-packed")
        plane = cls()
        for name in snapshot["prefixes"]:
            plane.prefix_id(name)
        columns = snapshot["columns"]

        def unpack(payload: Mapping[str, str]) -> np.ndarray:
            return np.frombuffer(
                base64.b64decode(payload["b64"]),
                dtype=np.dtype(payload["dtype"]),
            ).copy()

        plane._keys = unpack(columns["keys"])
        plane._service = unpack(columns["service"])
        plane._prefix = unpack(columns["prefix"])
        plane._bytes = unpack(columns["bytes"])
        plane._created = unpack(columns["created"])
        plane._last_seen = unpack(columns["last_seen"])
        lengths = {
            len(plane._keys),
            len(plane._service),
            len(plane._prefix),
            len(plane._bytes),
            len(plane._created),
            len(plane._last_seen),
        }
        if len(lengths) != 1:
            raise ValueError("packed snapshot columns have mismatched lengths")
        return plane

    def to_snapshot(self) -> Dict[str, Any]:
        return {
            "version": TM_SNAPSHOT_VERSION,
            "kind": self.kind,
            "prefixes": list(self._prefix_names),
            "columns": {
                "keys": self._keys.tolist(),
                "service": self._service.tolist(),
                "prefix": self._prefix.tolist(),
                "bytes": self._bytes.tolist(),
                "created": self._created.tolist(),
                "last_seen": self._last_seen.tolist(),
            },
        }

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "VectorFlowTable":
        _check_snapshot(snapshot, "vector")
        plane = cls()
        for name in snapshot["prefixes"]:
            plane.prefix_id(name)
        columns = snapshot["columns"]
        plane._keys = np.asarray(columns["keys"], dtype=np.uint64)
        plane._service = np.asarray(columns["service"], dtype=np.int32)
        plane._prefix = np.asarray(columns["prefix"], dtype=np.int32)
        plane._bytes = np.asarray(columns["bytes"], dtype=np.float64)
        plane._created = np.asarray(columns["created"], dtype=np.float64)
        plane._last_seen = np.asarray(columns["last_seen"], dtype=np.float64)
        if not (
            len(plane._keys)
            == len(plane._service)
            == len(plane._prefix)
            == len(plane._bytes)
            == len(plane._created)
            == len(plane._last_seen)
        ):
            raise ValueError("snapshot columns have mismatched lengths")
        order = np.argsort(plane._keys)
        if not np.array_equal(order, np.arange(len(order))):
            plane._keys = plane._keys[order]
            plane._service = plane._service[order]
            plane._prefix = plane._prefix[order]
            plane._bytes = plane._bytes[order]
            plane._created = plane._created[order]
            plane._last_seen = plane._last_seen[order]
        return plane


def _check_snapshot(snapshot: Mapping[str, Any], kind: str) -> None:
    version = snapshot.get("version")
    if version != TM_SNAPSHOT_VERSION:
        raise ValueError(f"unsupported snapshot version {version!r}")
    if snapshot.get("kind") != kind:
        raise ValueError(
            f"snapshot kind {snapshot.get('kind')!r} is not {kind!r}"
        )


def plane_from_snapshot(snapshot: Mapping[str, Any]) -> "DataPlane":
    """Rebuild whichever data plane a snapshot came from."""
    kind = snapshot.get("kind")
    if kind == "scalar":
        return ScalarDataPlane.from_snapshot(snapshot)
    if kind == "vector":
        return VectorFlowTable.from_snapshot(snapshot)
    if kind == "vector-packed":
        return VectorFlowTable.from_packed_snapshot(snapshot)
    raise ValueError(f"unknown data-plane kind {kind!r}")
