"""Flows and the TM-Edge flow table.

"Once the Traffic Manager maps a flow (5-tuple) to a TM-PoP, the mapping is
immutable for the lifetime of that flow" (§3.2) — this prevents loss of
connection state without a handover system.  New flows always go to the
currently-best destination; existing flows stay put.  The one sanctioned
exception is RTT-timescale failover (:meth:`FlowTable.remap_flows`): when a
destination dies, its flows are re-pinned wholesale to the replacement.

This is the *scalar* flow store — one entry object and one dict probe per
flow.  It remains the semantic reference; the batched million-flow path
lives in :mod:`repro.traffic_manager.dataplane`.  Keys may be
:class:`FiveTuple` objects or integer flow keys (see
:func:`repro.traffic_manager.dataplane.flow_key`); the table only requires
hashability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class FiveTuple:
    """Transport 5-tuple identifying a flow."""

    proto: str
    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int

    def __post_init__(self) -> None:
        if self.proto not in ("tcp", "udp"):
            raise ValueError(f"unsupported protocol {self.proto!r}")
        for port in (self.src_port, self.dst_port):
            if not 0 < port <= 65535:
                raise ValueError(f"invalid port {port}")


#: A flow identifier: the full 5-tuple, or its 64-bit hashed key.
FlowKey = Hashable


@dataclass
class FlowEntry:
    """A live flow pinned to a destination prefix."""

    five_tuple: FlowKey
    destination_prefix: str
    created_at_s: float
    bytes_sent: int = 0
    service_id: int = 0
    last_seen_s: float = field(default=-1.0)

    def __post_init__(self) -> None:
        if self.last_seen_s < 0:
            self.last_seen_s = self.created_at_s

    @property
    def key(self) -> FlowKey:
        """The flow's identifier (alias of the historical field name)."""
        return self.five_tuple

    def record_bytes(self, count: int, now_s: Optional[float] = None) -> None:
        if count < 0:
            raise ValueError("byte count must be non-negative")
        self.bytes_sent += count
        if now_s is not None:
            self.last_seen_s = now_s


class FlowTable:
    """Immutable-once-mapped flow-to-destination table.

    Per-destination flow counts are maintained incrementally, so
    :meth:`destinations` is O(#prefixes) rather than O(#flows) — and stays
    consistent with :meth:`flows_to` across :meth:`remap_flows` (the
    failover path mutates both the entries and the counts atomically).
    """

    def __init__(self) -> None:
        self._entries: Dict[FlowKey, FlowEntry] = {}
        self._dest_counts: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: FlowKey) -> bool:
        return key in self._entries

    def items(self) -> Iterator[Tuple[FlowKey, FlowEntry]]:
        return iter(self._entries.items())

    def lookup(self, key: FlowKey) -> Optional[FlowEntry]:
        return self._entries.get(key)

    def map_flow(
        self,
        key: FlowKey,
        destination_prefix: str,
        now_s: float,
        service_id: int = 0,
    ) -> FlowEntry:
        """Pin a new flow.  Re-mapping an existing flow is an error."""
        if key in self._entries:
            raise ValueError(f"flow {key} already mapped; mappings are immutable")
        entry = FlowEntry(
            five_tuple=key,
            destination_prefix=destination_prefix,
            created_at_s=now_s,
            service_id=service_id,
        )
        self._entries[key] = entry
        self._dest_counts[destination_prefix] = (
            self._dest_counts.get(destination_prefix, 0) + 1
        )
        return entry

    def end_flow(self, key: FlowKey) -> Optional[FlowEntry]:
        """Remove a flow; returns its entry, or ``None`` if unknown.

        An unknown 5-tuple is normal operation (a FIN retransmit, a flow
        that was never admitted because its service had no destination), so
        it is tolerated rather than raised on.
        """
        entry = self._entries.pop(key, None)
        if entry is not None:
            remaining = self._dest_counts.get(entry.destination_prefix, 0) - 1
            if remaining > 0:
                self._dest_counts[entry.destination_prefix] = remaining
            else:
                self._dest_counts.pop(entry.destination_prefix, None)
        return entry

    def remap_flows(self, from_prefix: str, to_prefix: str) -> int:
        """Failover re-mapping: move every flow off a dead destination.

        Returns the number of flows moved.  A no-op (0) when nothing is
        pinned to ``from_prefix`` or the two prefixes are equal.
        """
        if from_prefix == to_prefix:
            return 0
        moved = 0
        for entry in self._entries.values():
            if entry.destination_prefix == from_prefix:
                entry.destination_prefix = to_prefix
                moved += 1
        if moved:
            self._dest_counts.pop(from_prefix, None)
            self._dest_counts[to_prefix] = self._dest_counts.get(to_prefix, 0) + moved
        return moved

    def flows_to(self, destination_prefix: str) -> List[FlowEntry]:
        return [
            entry
            for entry in self._entries.values()
            if entry.destination_prefix == destination_prefix
        ]

    def destinations(self) -> Dict[str, int]:
        """Live-flow count per destination prefix (incrementally maintained)."""
        return dict(self._dest_counts)

    def bytes_by_destination(self) -> Dict[str, float]:
        """Accumulated bytes per destination prefix over live flows."""
        totals: Dict[str, float] = {}
        for entry in self._entries.values():
            totals[entry.destination_prefix] = (
                totals.get(entry.destination_prefix, 0.0) + entry.bytes_sent
            )
        return totals
