"""Flows and the TM-Edge flow table.

"Once the Traffic Manager maps a flow (5-tuple) to a TM-PoP, the mapping is
immutable for the lifetime of that flow" (§3.2) — this prevents loss of
connection state without a handover system.  New flows always go to the
currently-best destination; existing flows stay put.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class FiveTuple:
    """Transport 5-tuple identifying a flow."""

    proto: str
    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int

    def __post_init__(self) -> None:
        if self.proto not in ("tcp", "udp"):
            raise ValueError(f"unsupported protocol {self.proto!r}")
        for port in (self.src_port, self.dst_port):
            if not 0 < port <= 65535:
                raise ValueError(f"invalid port {port}")


@dataclass
class FlowEntry:
    """A live flow pinned to a destination prefix."""

    five_tuple: FiveTuple
    destination_prefix: str
    created_at_s: float
    bytes_sent: int = 0

    def record_bytes(self, count: int) -> None:
        if count < 0:
            raise ValueError("byte count must be non-negative")
        self.bytes_sent += count


class FlowTable:
    """Immutable-once-mapped flow-to-destination table."""

    def __init__(self) -> None:
        self._entries: Dict[FiveTuple, FlowEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, five_tuple: FiveTuple) -> bool:
        return five_tuple in self._entries

    def lookup(self, five_tuple: FiveTuple) -> Optional[FlowEntry]:
        return self._entries.get(five_tuple)

    def map_flow(
        self, five_tuple: FiveTuple, destination_prefix: str, now_s: float
    ) -> FlowEntry:
        """Pin a new flow.  Re-mapping an existing flow is an error."""
        if five_tuple in self._entries:
            raise ValueError(f"flow {five_tuple} already mapped; mappings are immutable")
        entry = FlowEntry(
            five_tuple=five_tuple,
            destination_prefix=destination_prefix,
            created_at_s=now_s,
        )
        self._entries[five_tuple] = entry
        return entry

    def end_flow(self, five_tuple: FiveTuple) -> FlowEntry:
        try:
            return self._entries.pop(five_tuple)
        except KeyError:
            raise KeyError(f"flow {five_tuple} not in table") from None

    def flows_to(self, destination_prefix: str) -> List[FlowEntry]:
        return [
            entry
            for entry in self._entries.values()
            if entry.destination_prefix == destination_prefix
        ]

    def destinations(self) -> Dict[str, int]:
        """Live-flow count per destination prefix."""
        counts: Dict[str, int] = {}
        for entry in self._entries.values():
            counts[entry.destination_prefix] = counts.get(entry.destination_prefix, 0) + 1
        return counts
