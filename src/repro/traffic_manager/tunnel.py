"""The Appendix D tunneling data plane: encapsulation, NAT, return path.

Models the six-step packet journey of Figure 13:

1. the client's packet reaches TM-Edge;
2. TM-Edge encapsulates it in UDP with the outer destination set to the
   chosen ingress prefix's address;
3. TM-PoP decapsulates and NATs it, storing (client IP, client port) in the
   "Known Flows" table keyed by the (TM-PoP IP, NAT port) it allocated;
4. the cloud service replies to the TM-PoP address;
5. TM-PoP restores the client address from the table, re-encapsulates, and
   sends the packet back to TM-Edge;
6. TM-Edge decapsulates and forwards to the client.

The NAT exists so return traffic flows back through the tunnel rather than
directly to the client.  Each TM-PoP address supports 65k concurrent
connections ("each TM-PoP has multiple IP addresses/NICs and so handles 65k
connections for each IP address").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.traffic_manager.flows import FiveTuple

#: UDP encapsulation overhead per packet (paper: ~16 bytes per 1400).
ENCAP_OVERHEAD_BYTES = 16

#: Ports per NAT address (ephemeral port space).
PORTS_PER_ADDRESS = 65_000


@dataclass(frozen=True)
class Packet:
    """A (possibly encapsulated) packet."""

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    proto: str
    payload_bytes: int
    inner: Optional["Packet"] = None

    @property
    def is_encapsulated(self) -> bool:
        return self.inner is not None

    @property
    def wire_bytes(self) -> int:
        if self.inner is not None:
            return self.inner.wire_bytes + ENCAP_OVERHEAD_BYTES
        return self.payload_bytes


class NatExhaustedError(RuntimeError):
    """All NAT addresses/ports on a TM-PoP are in use."""


@dataclass(frozen=True)
class NatBinding:
    """One Known-Flows entry: NAT endpoint -> original client endpoint."""

    nat_ip: str
    nat_port: int
    client_ip: str
    client_port: int
    edge_ip: str


class TMPoPNat:
    """The TM-PoP side of the tunnel: decapsulation, NAT, return path."""

    def __init__(self, nat_ips: List[str]) -> None:
        if not nat_ips:
            raise ValueError("a TM-PoP needs at least one NAT address")
        self._nat_ips = list(nat_ips)
        self._next_port: Dict[str, int] = {ip: 1024 for ip in nat_ips}
        self._bindings: Dict[Tuple[str, int], NatBinding] = {}
        self._by_client: Dict[Tuple[str, int, str], NatBinding] = {}

    @property
    def capacity(self) -> int:
        return len(self._nat_ips) * PORTS_PER_ADDRESS

    @property
    def active_bindings(self) -> int:
        return len(self._bindings)

    def _allocate(self, client_ip: str, client_port: int, edge_ip: str) -> NatBinding:
        key = (client_ip, client_port, edge_ip)
        existing = self._by_client.get(key)
        if existing is not None:
            return existing
        for nat_ip in self._nat_ips:
            port = self._next_port[nat_ip]
            if port >= 1024 + PORTS_PER_ADDRESS:
                continue
            self._next_port[nat_ip] = port + 1
            binding = NatBinding(
                nat_ip=nat_ip,
                nat_port=port,
                client_ip=client_ip,
                client_port=client_port,
                edge_ip=edge_ip,
            )
            self._bindings[(nat_ip, port)] = binding
            self._by_client[key] = binding
            return binding
        raise NatExhaustedError(f"all {self.capacity} NAT ports in use")

    def ingress(self, packet: Packet) -> Packet:
        """Steps 3-4: decapsulate an edge packet, NAT toward the service."""
        if not packet.is_encapsulated:
            raise ValueError("TM-PoP ingress expects an encapsulated packet")
        inner = packet.inner
        assert inner is not None
        binding = self._allocate(inner.src_ip, inner.src_port, packet.src_ip)
        return Packet(
            src_ip=binding.nat_ip,
            dst_ip=inner.dst_ip,
            src_port=binding.nat_port,
            dst_port=inner.dst_port,
            proto=inner.proto,
            payload_bytes=inner.payload_bytes,
        )

    def egress(self, packet: Packet) -> Packet:
        """Steps 4-5: match the service reply, restore client, re-encapsulate."""
        binding = self._bindings.get((packet.dst_ip, packet.dst_port))
        if binding is None:
            raise KeyError(
                f"no Known-Flows entry for {packet.dst_ip}:{packet.dst_port}"
            )
        restored = Packet(
            src_ip=packet.src_ip,
            dst_ip=binding.client_ip,
            src_port=packet.src_port,
            dst_port=binding.client_port,
            proto=packet.proto,
            payload_bytes=packet.payload_bytes,
        )
        return Packet(
            src_ip=binding.nat_ip,
            dst_ip=binding.edge_ip,
            src_port=binding.nat_port,
            dst_port=binding.client_port,
            proto="udp",
            payload_bytes=restored.payload_bytes,
            inner=restored,
        )


def encapsulate(packet: Packet, edge_ip: str, tunnel_dst_ip: str, tunnel_port: int = 4789) -> Packet:
    """Step 2: TM-Edge wraps a client packet toward the chosen ingress."""
    if packet.is_encapsulated:
        raise ValueError("packet is already encapsulated")
    return Packet(
        src_ip=edge_ip,
        dst_ip=tunnel_dst_ip,
        src_port=tunnel_port,
        dst_port=tunnel_port,
        proto="udp",
        payload_bytes=packet.payload_bytes,
        inner=packet,
    )


def decapsulate(packet: Packet) -> Packet:
    """Step 6: TM-Edge unwraps a return packet for the client."""
    if not packet.is_encapsulated:
        raise ValueError("packet is not encapsulated")
    inner = packet.inner
    assert inner is not None
    return inner


def overhead_fraction(payload_bytes: int = 1400) -> float:
    """Relative tunnel overhead (paper: ~16 bytes per 1400-byte packet)."""
    if payload_bytes <= 0:
        raise ValueError("payload must be positive")
    return ENCAP_OVERHEAD_BYTES / payload_bytes
