"""AS-level graph with business relationships and customer-cone computation.

The graph is the substrate for both the BGP simulator (route export follows
Gao-Rexford rules over these relationships) and the orchestrator's
policy-compliance inference, which mirrors the paper: derive customer cones
ProbLink-style from relationships, then call an ingress policy-compliant for
a UG when the UG's AS is in the cone of the peer owning that ingress (§3.1).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.topology.asn import AutonomousSystem, Relationship


class TopologyError(Exception):
    """Raised for structurally invalid topologies."""


class ASGraph:
    """Directed-relationship AS graph.

    Relationships are stored from each AS's perspective; adding a
    provider->customer edge automatically records the inverse.  Peering links
    are symmetric.
    """

    def __init__(self) -> None:
        self._ases: Dict[int, AutonomousSystem] = {}
        self._neighbors: Dict[int, Dict[int, Relationship]] = {}
        self._cone_cache: Dict[int, FrozenSet[int]] = {}

    # -- construction ------------------------------------------------------

    def add_as(self, asys: AutonomousSystem) -> None:
        existing = self._ases.get(asys.asn)
        if existing is not None and existing != asys:
            raise TopologyError(f"ASN {asys.asn} already registered as {existing}")
        self._ases[asys.asn] = asys
        self._neighbors.setdefault(asys.asn, {})

    def add_provider_customer(self, provider: int, customer: int) -> None:
        """Record that ``provider`` sells transit to ``customer``."""
        self._add_link(provider, customer, Relationship.CUSTOMER)

    def add_peering_link(self, a: int, b: int) -> None:
        """Record a settlement-free peering between two ASes."""
        self._add_link(a, b, Relationship.PEER)

    def _add_link(self, a: int, b: int, rel_of_b_to_a: Relationship) -> None:
        if a == b:
            raise TopologyError(f"self-link on ASN {a}")
        for asn in (a, b):
            if asn not in self._ases:
                raise TopologyError(f"ASN {asn} not registered; add_as() first")
        existing = self._neighbors[a].get(b)
        if existing is not None and existing is not rel_of_b_to_a:
            raise TopologyError(
                f"conflicting relationship between AS{a} and AS{b}: "
                f"{existing.value} vs {rel_of_b_to_a.value}"
            )
        self._neighbors[a][b] = rel_of_b_to_a
        self._neighbors[b][a] = rel_of_b_to_a.inverse()
        self._cone_cache.clear()

    # -- lookups -----------------------------------------------------------

    def __contains__(self, asn: int) -> bool:
        return asn in self._ases

    def __len__(self) -> int:
        return len(self._ases)

    def __iter__(self) -> Iterator[int]:
        return iter(self._ases)

    def get_as(self, asn: int) -> AutonomousSystem:
        try:
            return self._ases[asn]
        except KeyError:
            raise KeyError(f"unknown ASN {asn}") from None

    def all_ases(self) -> List[AutonomousSystem]:
        return list(self._ases.values())

    def relationship(self, asn: int, neighbor: int) -> Optional[Relationship]:
        """Relationship of ``neighbor`` from ``asn``'s perspective, if any."""
        return self._neighbors.get(asn, {}).get(neighbor)

    def neighbors(self, asn: int) -> Dict[int, Relationship]:
        if asn not in self._ases:
            raise KeyError(f"unknown ASN {asn}")
        return dict(self._neighbors[asn])

    def customers(self, asn: int) -> List[int]:
        return self._neighbors_of_kind(asn, Relationship.CUSTOMER)

    def providers(self, asn: int) -> List[int]:
        return self._neighbors_of_kind(asn, Relationship.PROVIDER)

    def peers(self, asn: int) -> List[int]:
        return self._neighbors_of_kind(asn, Relationship.PEER)

    def _neighbors_of_kind(self, asn: int, kind: Relationship) -> List[int]:
        if asn not in self._ases:
            raise KeyError(f"unknown ASN {asn}")
        return [n for n, rel in self._neighbors[asn].items() if rel is kind]

    # -- customer cones ----------------------------------------------------

    def customer_cone(self, asn: int) -> FrozenSet[int]:
        """All ASes reachable from ``asn`` by following only customer links.

        Includes ``asn`` itself, matching the convention of Luckie et al.
        (an AS is trivially in its own cone).  Results are cached until the
        graph is mutated.
        """
        cached = self._cone_cache.get(asn)
        if cached is not None:
            return cached
        if asn not in self._ases:
            raise KeyError(f"unknown ASN {asn}")
        cone: Set[int] = {asn}
        frontier = deque(self.customers(asn))
        while frontier:
            current = frontier.popleft()
            if current in cone:
                continue
            cone.add(current)
            frontier.extend(self.customers(current))
        result = frozenset(cone)
        self._cone_cache[asn] = result
        return result

    def in_customer_cone(self, asn: int, of: int) -> bool:
        """Whether ``asn`` can reach ``of`` purely via provider links."""
        return asn in self.customer_cone(of)

    # -- validation --------------------------------------------------------

    def find_provider_cycle(self) -> Optional[List[int]]:
        """Return a customer->provider cycle if one exists (invalid economy)."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {asn: WHITE for asn in self._ases}
        parent: Dict[int, Optional[int]] = {}

        for start in self._ases:
            if color[start] != WHITE:
                continue
            stack: List[Tuple[int, Iterator[int]]] = [(start, iter(self.providers(start)))]
            color[start] = GRAY
            parent[start] = None
            while stack:
                node, providers = stack[-1]
                advanced = False
                for nxt in providers:
                    if color[nxt] == GRAY:
                        cycle = [nxt, node]
                        cursor = parent[node]
                        while cursor is not None and cycle[-1] != nxt:
                            cycle.append(cursor)
                            cursor = parent.get(cursor)
                        cycle.reverse()
                        return cycle
                    if color[nxt] == WHITE:
                        color[nxt] = GRAY
                        parent[nxt] = node
                        stack.append((nxt, iter(self.providers(nxt))))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None

    def validate(self) -> None:
        """Raise :class:`TopologyError` if the graph violates basic sanity."""
        cycle = self.find_provider_cycle()
        if cycle is not None:
            raise TopologyError(f"provider cycle detected: {cycle}")

    # -- stats -------------------------------------------------------------

    def degree(self, asn: int) -> int:
        return len(self._neighbors.get(asn, {}))

    def edge_count(self) -> int:
        return sum(len(neigh) for neigh in self._neighbors.values()) // 2


def transit_path_exists(graph: ASGraph, src: int, dst: int) -> bool:
    """Whether a valley-free path exists from ``src`` to ``dst``.

    Valley-free (Gao-Rexford): a path climbs zero or more provider links,
    crosses at most one peer link, then descends zero or more customer links.
    Used in tests as an oracle against the BGP simulator.
    """
    if src not in graph or dst not in graph:
        raise KeyError("both endpoints must be in the graph")
    if src == dst:
        return True

    # Phase state: 0 = still climbing (may use provider/peer/customer),
    # 1 = descended or crossed a peer (may only use customer links).
    seen: Set[Tuple[int, int]] = set()
    frontier: deque = deque([(src, 0)])
    while frontier:
        node, phase = frontier.popleft()
        if (node, phase) in seen:
            continue
        seen.add((node, phase))
        for neighbor, rel in graph.neighbors(node).items():
            if rel is Relationship.PROVIDER and phase == 0:
                next_state = (neighbor, 0)
            elif rel is Relationship.PEER and phase == 0:
                next_state = (neighbor, 1)
            elif rel is Relationship.CUSTOMER:
                next_state = (neighbor, 1)
            else:
                continue
            if next_state[0] == dst:
                return True
            frontier.append(next_state)
    return False
