"""Cloud deployment model: PoPs, peerings (ingresses), and IP prefixes.

In PAINTER's terms an *ingress* is a BGP peering: "where traffic enters if
Azure were to advertise a prefix solely via that peering" (§3.1).  The
deployment therefore exposes peerings as first-class objects that the
Advertisement Orchestrator allocates prefixes to.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.topology.asn import Relationship
from repro.topology.geo import GeoPoint, Metro, haversine_km


@dataclass(frozen=True)
class PoP:
    """A cloud point of presence, anchored to a metro."""

    name: str
    metro: Metro

    @property
    def location(self) -> GeoPoint:
        return self.metro.location

    def distance_km(self, other: "PoP") -> float:
        return haversine_km(self.location, other.location)


@dataclass(frozen=True)
class Peering:
    """A BGP session between the cloud and a neighbor AS at one PoP.

    ``relationship`` is the neighbor's relationship from the *cloud's*
    perspective: ``PROVIDER`` for a transit provider the cloud pays,
    ``PEER`` for settlement-free peers.
    """

    peering_id: int
    pop: PoP
    peer_asn: int
    relationship: Relationship

    def __post_init__(self) -> None:
        if self.relationship is Relationship.CUSTOMER:
            raise ValueError("cloud customers are served over PEER/PROVIDER sessions")

    @property
    def is_transit(self) -> bool:
        return self.relationship is Relationship.PROVIDER

    def __str__(self) -> str:
        kind = "transit" if self.is_transit else "peer"
        return f"peering#{self.peering_id}[AS{self.peer_asn}@{self.pop.name},{kind}]"


class PrefixPool:
    """Allocates /24 prefixes from a supernet, mimicking address-space cost.

    Prefixes are the scarce resource in PAINTER (each /24 costs real money and
    bloats global routing tables), so the pool enforces a hard capacity.
    """

    def __init__(self, supernet: str = "184.164.224.0/19") -> None:
        self._supernet = ipaddress.ip_network(supernet)
        if self._supernet.prefixlen > 24:
            raise ValueError("supernet must be at least a /24")
        self._subnets = list(self._supernet.subnets(new_prefix=24))
        self._next = 0

    @property
    def capacity(self) -> int:
        return len(self._subnets)

    @property
    def allocated(self) -> int:
        return self._next

    def allocate(self) -> str:
        if self._next >= len(self._subnets):
            raise RuntimeError(f"prefix pool exhausted ({self.capacity} /24s)")
        prefix = str(self._subnets[self._next])
        self._next += 1
        return prefix

    def reset(self) -> None:
        self._next = 0


class CloudDeployment:
    """The cloud's PoPs and peerings, plus its anycast prefix.

    This is the structural input to the Advertisement Orchestrator: it
    answers "which peerings exist", "where are they", and "which peerings
    belong to transit providers".
    """

    def __init__(self, name: str = "cloud", anycast_prefix: str = "184.164.254.0/24") -> None:
        self.name = name
        self.anycast_prefix = anycast_prefix
        self._pops: Dict[str, PoP] = {}
        self._peerings: Dict[int, Peering] = {}
        self._peerings_by_pop: Dict[str, List[Peering]] = {}
        self._peerings_by_asn: Dict[int, List[Peering]] = {}
        self._next_peering_id = 0

    # -- construction ------------------------------------------------------

    def add_pop(self, name: str, metro: Metro) -> PoP:
        if name in self._pops:
            raise ValueError(f"PoP {name!r} already exists")
        pop = PoP(name=name, metro=metro)
        self._pops[name] = pop
        self._peerings_by_pop[name] = []
        return pop

    def add_peering(self, pop: PoP, peer_asn: int, relationship: Relationship) -> Peering:
        if pop.name not in self._pops:
            raise ValueError(f"PoP {pop.name!r} not part of this deployment")
        for existing in self._peerings_by_pop[pop.name]:
            if existing.peer_asn == peer_asn:
                raise ValueError(f"AS{peer_asn} already peers at {pop.name}")
        peering = Peering(
            peering_id=self._next_peering_id,
            pop=pop,
            peer_asn=peer_asn,
            relationship=relationship,
        )
        self._next_peering_id += 1
        self._peerings[peering.peering_id] = peering
        self._peerings_by_pop[pop.name].append(peering)
        self._peerings_by_asn.setdefault(peer_asn, []).append(peering)
        return peering

    # -- lookups -----------------------------------------------------------

    @property
    def pops(self) -> List[PoP]:
        return list(self._pops.values())

    @property
    def peerings(self) -> List[Peering]:
        return list(self._peerings.values())

    def pop(self, name: str) -> PoP:
        try:
            return self._pops[name]
        except KeyError:
            raise KeyError(f"unknown PoP {name!r}") from None

    def peering(self, peering_id: int) -> Peering:
        try:
            return self._peerings[peering_id]
        except KeyError:
            raise KeyError(f"unknown peering id {peering_id}") from None

    def peerings_at(self, pop: PoP) -> List[Peering]:
        return list(self._peerings_by_pop.get(pop.name, []))

    def peerings_with(self, peer_asn: int) -> List[Peering]:
        return list(self._peerings_by_asn.get(peer_asn, []))

    def transit_peerings(self) -> List[Peering]:
        return [p for p in self._peerings.values() if p.is_transit]

    def peer_asns(self) -> List[int]:
        return sorted(self._peerings_by_asn)

    def has_direct_peering_with(self, asn: int) -> bool:
        return asn in self._peerings_by_asn

    def __len__(self) -> int:
        return len(self._peerings)

    def __iter__(self) -> Iterator[Peering]:
        return iter(self._peerings.values())

    # -- geometry ----------------------------------------------------------

    def nearest_pop(self, location: GeoPoint) -> PoP:
        if not self._pops:
            raise ValueError("deployment has no PoPs")
        return min(self._pops.values(), key=lambda p: haversine_km(p.location, location))

    def pops_within_km(self, location: GeoPoint, radius_km: float) -> List[PoP]:
        return [
            p for p in self._pops.values() if haversine_km(p.location, location) <= radius_km
        ]

    def describe(self) -> str:
        transit = len(self.transit_peerings())
        return (
            f"{self.name}: {len(self._pops)} PoPs, {len(self._peerings)} peerings "
            f"({transit} transit), {len(self._peerings_by_asn)} neighbor ASes"
        )
