"""Internet topology substrate: geography, AS graph, cloud deployment."""

from repro.topology.asn import ASRole, AutonomousSystem, LOCAL_PREFERENCE, Relationship
from repro.topology.builder import CLOUD_ASN, Topology, TopologyConfig, build_topology
from repro.topology.cloud import CloudDeployment, Peering, PoP, PrefixPool
from repro.topology.geo import (
    EARTH_RADIUS_KM,
    FIBER_KM_PER_MS,
    GeoPoint,
    Metro,
    SPEED_OF_LIGHT_KM_PER_MS,
    WORLD_METROS,
    fiber_rtt_ms,
    haversine_km,
    metro_by_name,
    metros_in_region,
    nearest_metro,
    rtt_to_max_distance_km,
    speed_of_light_rtt_ms,
)
from repro.topology.graph import ASGraph, TopologyError, transit_path_exists

__all__ = [
    "ASGraph",
    "ASRole",
    "AutonomousSystem",
    "CLOUD_ASN",
    "CloudDeployment",
    "EARTH_RADIUS_KM",
    "FIBER_KM_PER_MS",
    "GeoPoint",
    "LOCAL_PREFERENCE",
    "Metro",
    "Peering",
    "PoP",
    "PrefixPool",
    "Relationship",
    "SPEED_OF_LIGHT_KM_PER_MS",
    "Topology",
    "TopologyConfig",
    "TopologyError",
    "WORLD_METROS",
    "build_topology",
    "fiber_rtt_ms",
    "haversine_km",
    "metro_by_name",
    "metros_in_region",
    "nearest_metro",
    "rtt_to_max_distance_km",
    "speed_of_light_rtt_ms",
    "transit_path_exists",
]
