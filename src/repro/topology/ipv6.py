"""IPv6 feasibility analysis (§2.4).

The paper rejects "just use IPv6 prefixes, they're free" for two measured
reasons: (1) IPv6 peering is less common than IPv4 in Azure's BGP data, so
selective advertisements could not expose all the paths; (2) routers store
roughly 8x fewer IPv6 FIB entries per unit of memory, so the routing-table
cost argument does not disappear.  This module annotates a deployment with
dual-stack availability and quantifies both effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from repro.topology.cloud import CloudDeployment, Peering
from repro.usergroups.ingresses import IngressCatalog
from repro.usergroups.usergroup import UserGroup
from repro.util import stable_rng

#: FIB entries per memory unit: IPv6 entries cost ~8x an IPv4 entry (§2.4).
IPV6_FIB_COST_FACTOR = 8.0


@dataclass(frozen=True)
class DualStackConfig:
    seed: int = 0
    #: Fraction of transit peerings with IPv6 sessions (transit is mostly
    #: dual-stack in practice).
    transit_v6_prob: float = 0.85
    #: Fraction of non-transit peerings with IPv6 sessions.
    peer_v6_prob: float = 0.55

    def __post_init__(self) -> None:
        for p in (self.transit_v6_prob, self.peer_v6_prob):
            if not 0.0 <= p <= 1.0:
                raise ValueError("probabilities must be in [0,1]")


class DualStackCatalog:
    """Which peerings carry IPv6 sessions, and what that costs PAINTER."""

    def __init__(
        self, deployment: CloudDeployment, config: Optional[DualStackConfig] = None
    ) -> None:
        self._deployment = deployment
        self._config = config or DualStackConfig()
        self._v6: Dict[int, bool] = {}
        for peering in deployment.peerings:
            prob = (
                self._config.transit_v6_prob
                if peering.is_transit
                else self._config.peer_v6_prob
            )
            rng = stable_rng(self._config.seed, "v6", peering.peering_id)
            self._v6[peering.peering_id] = rng.random() < prob

    def supports_v6(self, peering: Peering) -> bool:
        return self._v6[peering.peering_id]

    def v6_peering_ids(self) -> FrozenSet[int]:
        return frozenset(pid for pid, ok in self._v6.items() if ok)

    def v6_fraction(self) -> float:
        if not self._v6:
            return 0.0
        return sum(self._v6.values()) / len(self._v6)


@dataclass(frozen=True)
class Ipv6Feasibility:
    """The two §2.4 measurements for one deployment."""

    v6_peering_fraction: float
    #: Volume-weighted share of each UG's compliant ingresses reachable v6.
    exposable_path_fraction: float
    #: FIB slots per prefix, v6-equivalent, relative to v4.
    fib_cost_factor: float

    @property
    def paths_lost_fraction(self) -> float:
        return 1.0 - self.exposable_path_fraction


def analyze_ipv6_feasibility(
    catalog: IngressCatalog,
    dual_stack: DualStackCatalog,
) -> Ipv6Feasibility:
    """Quantify the paths an IPv6-only PAINTER could not expose."""
    deployment = catalog.topology.deployment
    total_weight = 0.0
    exposable_weight = 0.0
    for ug in catalog.user_groups:
        compliant = catalog.ingress_ids(ug)
        if not compliant:
            continue
        v6_compliant = compliant & dual_stack.v6_peering_ids()
        total_weight += ug.volume
        exposable_weight += ug.volume * len(v6_compliant) / len(compliant)
    return Ipv6Feasibility(
        v6_peering_fraction=dual_stack.v6_fraction(),
        exposable_path_fraction=(
            exposable_weight / total_weight if total_weight else 0.0
        ),
        fib_cost_factor=IPV6_FIB_COST_FACTOR,
    )
