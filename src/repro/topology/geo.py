"""Geographic primitives: coordinates, great-circle distance, fiber latency.

PAINTER reasons about geography constantly: the reuse distance ``D_reuse`` is
a great-circle distance between PoPs, latency estimates are validated with
speed-of-light constraints (Appendix B), and path inflation is measured as
extra distance relative to the closest PoP.  This module provides those
primitives plus a small database of world metropolitan areas used by the
synthetic scenario builder.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.util import stable_rng

EARTH_RADIUS_KM = 6371.0

#: Speed of light in vacuum, km per millisecond.
SPEED_OF_LIGHT_KM_PER_MS = 299.792458

#: Refractive index of optical fiber; light in fiber travels ~2/3 c.
FIBER_REFRACTIVE_INDEX = 1.52

#: Effective propagation speed in fiber, km per millisecond.
FIBER_KM_PER_MS = SPEED_OF_LIGHT_KM_PER_MS / FIBER_REFRACTIVE_INDEX

#: Multiplier capturing that fiber paths are not geodesics (route deviation).
#: Empirical studies place real paths at 1.5-2.5x geodesic distance; we use a
#: conservative default and let callers add AS-level inflation on top.
FIBER_PATH_STRETCH = 1.6


@dataclass(frozen=True)
class GeoPoint:
    """A point on the Earth's surface in decimal degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")

    def distance_km(self, other: "GeoPoint") -> float:
        return haversine_km(self, other)


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points in kilometers."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def speed_of_light_rtt_ms(distance_km: float) -> float:
    """Lower bound on RTT (ms) for a given one-way geodesic distance.

    This is the constraint used to validate geolocated targets in Appendix B:
    a measured RTT below this bound proves the target is not at the assumed
    location (e.g. it is anycast).
    """
    if distance_km < 0:
        raise ValueError("distance must be non-negative")
    return 2.0 * distance_km / SPEED_OF_LIGHT_KM_PER_MS


def fiber_rtt_ms(distance_km: float, stretch: float = FIBER_PATH_STRETCH) -> float:
    """Expected RTT (ms) over fiber for a one-way geodesic distance."""
    if distance_km < 0:
        raise ValueError("distance must be non-negative")
    return 2.0 * distance_km * stretch / FIBER_KM_PER_MS


def rtt_to_max_distance_km(rtt_ms: float) -> float:
    """Maximum one-way geodesic distance consistent with a measured RTT.

    Used for speed-of-light geolocation validation: the target cannot be
    farther from the probe than light could travel in rtt/2.
    """
    if rtt_ms < 0:
        raise ValueError("rtt must be non-negative")
    return rtt_ms / 2.0 * SPEED_OF_LIGHT_KM_PER_MS


@dataclass(frozen=True)
class Metro:
    """A metropolitan area — the geographic half of a user group."""

    name: str
    location: GeoPoint
    region: str

    def distance_km(self, other: "Metro") -> float:
        return self.location.distance_km(other.location)


def _m(name: str, lat: float, lon: float, region: str) -> Metro:
    return Metro(name=name, location=GeoPoint(lat, lon), region=region)


#: World metros used by the synthetic scenario builder.  Coordinates are the
#: conventional city centers; regions follow cloud-provider naming.
WORLD_METROS: Tuple[Metro, ...] = (
    _m("new-york", 40.71, -74.01, "us-east"),
    _m("ashburn", 39.04, -77.49, "us-east"),
    _m("miami", 25.76, -80.19, "us-east"),
    _m("atlanta", 33.75, -84.39, "us-east"),
    _m("boston", 42.36, -71.06, "us-east"),
    _m("toronto", 43.65, -79.38, "us-east"),
    _m("montreal", 45.50, -73.57, "us-east"),
    _m("chicago", 41.88, -87.63, "us-central"),
    _m("dallas", 32.78, -96.80, "us-central"),
    _m("kansas-city", 39.10, -94.58, "us-central"),
    _m("denver", 39.74, -104.99, "us-central"),
    _m("houston", 29.76, -95.37, "us-central"),
    _m("seattle", 47.61, -122.33, "us-west"),
    _m("san-jose", 37.34, -121.89, "us-west"),
    _m("los-angeles", 34.05, -118.24, "us-west"),
    _m("phoenix", 33.45, -112.07, "us-west"),
    _m("vancouver", 49.28, -123.12, "us-west"),
    _m("london", 51.51, -0.13, "eu-west"),
    _m("dublin", 53.35, -6.26, "eu-west"),
    _m("paris", 48.86, 2.35, "eu-west"),
    _m("amsterdam", 52.37, 4.90, "eu-west"),
    _m("madrid", 40.42, -3.70, "eu-west"),
    _m("lisbon", 38.72, -9.14, "eu-west"),
    _m("frankfurt", 50.11, 8.68, "eu-central"),
    _m("zurich", 47.37, 8.54, "eu-central"),
    _m("milan", 45.46, 9.19, "eu-central"),
    _m("vienna", 48.21, 16.37, "eu-central"),
    _m("warsaw", 52.23, 21.01, "eu-central"),
    _m("stockholm", 59.33, 18.07, "eu-north"),
    _m("oslo", 59.91, 10.75, "eu-north"),
    _m("helsinki", 60.17, 24.94, "eu-north"),
    _m("copenhagen", 55.68, 12.57, "eu-north"),
    _m("tokyo", 35.68, 139.69, "asia-east"),
    _m("osaka", 34.69, 135.50, "asia-east"),
    _m("seoul", 37.57, 126.98, "asia-east"),
    _m("hong-kong", 22.32, 114.17, "asia-east"),
    _m("taipei", 25.03, 121.57, "asia-east"),
    _m("singapore", 1.35, 103.82, "asia-south"),
    _m("mumbai", 19.08, 72.88, "asia-south"),
    _m("delhi", 28.61, 77.21, "asia-south"),
    _m("chennai", 13.08, 80.27, "asia-south"),
    _m("bangkok", 13.76, 100.50, "asia-south"),
    _m("jakarta", -6.21, 106.85, "asia-south"),
    _m("kuala-lumpur", 3.14, 101.69, "asia-south"),
    _m("sydney", -33.87, 151.21, "oceania"),
    _m("melbourne", -37.81, 144.96, "oceania"),
    _m("auckland", -36.85, 174.76, "oceania"),
    _m("sao-paulo", -23.55, -46.63, "sa-east"),
    _m("rio-de-janeiro", -22.91, -43.17, "sa-east"),
    _m("buenos-aires", -34.60, -58.38, "sa-east"),
    _m("santiago", -33.45, -70.67, "sa-east"),
    _m("bogota", 4.71, -74.07, "sa-east"),
    _m("lima", -12.05, -77.04, "sa-east"),
    _m("johannesburg", -26.20, 28.05, "africa"),
    _m("cape-town", -33.92, 18.42, "africa"),
    _m("nairobi", -1.29, 36.82, "africa"),
    _m("lagos", 6.52, 3.38, "africa"),
    _m("cairo", 30.04, 31.24, "africa"),
    _m("dubai", 25.20, 55.27, "middle-east"),
    _m("tel-aviv", 32.07, 34.78, "middle-east"),
    _m("istanbul", 41.01, 28.98, "middle-east"),
    _m("doha", 25.29, 51.53, "middle-east"),
)

_METRO_INDEX = {metro.name: metro for metro in WORLD_METROS}

#: Latitude band for synthetic metros: roughly Punta Arenas to Reykjavik,
#: keeping generated cities out of the poles where no eyeballs live.
_SYNTH_LAT_RANGE = (-55.0, 65.0)


def synthetic_metros(count: int, seed: int = 0) -> Tuple[Metro, ...]:
    """Deterministic pseudo-random metro pool extending :data:`WORLD_METROS`.

    The ``mega`` preset needs far more distinct metros than the hand-curated
    world list provides (one per PoP plus headroom for AS home metros).  The
    generated metros are uniformly spread over the inhabited latitude band
    and grouped into six longitude-band regions (``syn-0`` .. ``syn-5``).
    Names never collide with the curated list (``syn-`` prefix), which
    matters because the topology builder memoizes by metro name.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = stable_rng("synthetic-metros", seed)
    metros: List[Metro] = []
    for i in range(count):
        lat = rng.uniform(*_SYNTH_LAT_RANGE)
        lon = rng.uniform(-180.0, 180.0)
        region = f"syn-{int((lon + 180.0) // 60.0) % 6}"
        metros.append(Metro(name=f"syn-{i:03d}", location=GeoPoint(lat, lon), region=region))
    return tuple(metros)


def metro_by_name(name: str) -> Metro:
    """Look up a metro from :data:`WORLD_METROS` by its name."""
    try:
        return _METRO_INDEX[name]
    except KeyError:
        raise KeyError(f"unknown metro: {name!r}") from None


def metros_in_region(region: str) -> List[Metro]:
    return [metro for metro in WORLD_METROS if metro.region == region]


def nearest_metro(point: GeoPoint, metros: Optional[Sequence[Metro]] = None) -> Metro:
    """The metro closest (great-circle) to ``point``."""
    candidates = WORLD_METROS if metros is None else metros
    if not candidates:
        raise ValueError("no metros to choose from")
    return min(candidates, key=lambda metro: haversine_km(metro.location, point))


def closest_distance_km(point: GeoPoint, points: Iterable[GeoPoint]) -> float:
    """Distance from ``point`` to the closest of ``points``."""
    distances = [haversine_km(point, other) for other in points]
    if not distances:
        raise ValueError("no points to choose from")
    return min(distances)
