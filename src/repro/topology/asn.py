"""Autonomous system model: AS identities, roles, and business relationships.

The Advertisement Orchestrator's notion of a *policy-compliant ingress*
(§3.1) is grounded in AS business relationships: an AS carries traffic from
its customer cone to any destination, so a user group whose AS sits in the
customer cone of a cloud peer can reach the cloud through that peer.  This
module defines the vocabulary those computations are written in.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.topology.geo import Metro


class ASRole(enum.Enum):
    """Coarse role of an AS in the Internet hierarchy."""

    STUB = "stub"  # enterprise / eyeball network, no customers
    REGIONAL = "regional"  # regional ISP with stub customers
    TRANSIT = "transit"  # large transit provider
    TIER1 = "tier1"  # settlement-free top of the hierarchy
    CLOUD = "cloud"  # the cloud deployment itself


class Relationship(enum.Enum):
    """Business relationship of a neighbor, from the perspective of an AS."""

    CUSTOMER = "customer"  # neighbor pays us
    PROVIDER = "provider"  # we pay neighbor
    PEER = "peer"  # settlement-free

    def inverse(self) -> "Relationship":
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return Relationship.PEER


#: Gao-Rexford local preference by the relationship of the neighbor the route
#: was learned from: prefer customer routes, then peer, then provider.
LOCAL_PREFERENCE = {
    Relationship.CUSTOMER: 300,
    Relationship.PEER: 200,
    Relationship.PROVIDER: 100,
}


@dataclass(frozen=True)
class AutonomousSystem:
    """A single AS.

    ``home_metro`` anchors the AS geographically; stub (enterprise/eyeball)
    ASes are single-metro while transit ASes span many metros, which the
    scenario builder models by giving them presence at several PoP metros.
    """

    asn: int
    role: ASRole
    name: str = ""
    home_metro: Optional[Metro] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"ASN must be positive, got {self.asn}")

    @property
    def is_transit(self) -> bool:
        return self.role in (ASRole.TRANSIT, ASRole.TIER1)

    def __str__(self) -> str:
        label = self.name or f"AS{self.asn}"
        return f"{label}({self.role.value})"
