"""Synthetic Internet topology generator.

Builds an AS graph plus a cloud deployment that structurally resembles the
ones PAINTER was evaluated on: a handful of tier-1s, a layer of transit
providers present at many PoPs, regional ISPs attached near their home metro,
and a long tail of stub (enterprise/eyeball) ASes — matching the paper's
observation that "some networks connect at multiple PoPs, most only at one".

All randomness flows through one seeded ``random.Random`` so scenarios are
fully reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.topology.asn import ASRole, AutonomousSystem, Relationship
from repro.topology.cloud import CloudDeployment, PoP
from repro.topology.geo import WORLD_METROS, Metro, haversine_km
from repro.topology.graph import ASGraph

CLOUD_ASN = 1


@dataclass(frozen=True)
class TopologyConfig:
    """Knobs for the synthetic topology.

    Defaults produce a PEERING/Vultr-prototype-scale world (tens of PoPs,
    hundreds of neighbor ASes); the Azure-scale experiments pass larger
    values.
    """

    seed: int = 0
    n_pops: int = 25
    n_tier1: int = 5
    n_transit: int = 12
    n_regional: int = 60
    n_stub: int = 300
    #: Fraction of tier1/transit ASes the cloud buys transit from.
    transit_provider_fraction: float = 0.5
    #: Probability a regional ISP peers directly with the cloud at its
    #: nearest PoP.
    regional_peering_prob: float = 0.6
    #: Probability a stub AS has a direct peering with the cloud.
    stub_peering_prob: float = 0.03
    #: Mean number of providers per stub AS (multihoming degree).
    stub_multihoming_mean: float = 1.8
    #: Metro pool for PoP placement and AS home metros.  ``None`` means
    #: :data:`WORLD_METROS`; huge presets (``mega``) pass an extended pool so
    #: ``n_pops`` can exceed the curated world-metro count.
    metros: Optional[Tuple[Metro, ...]] = None
    #: Cap on how many PoPs one tier1/transit AS peers at.  ``None`` keeps
    #: the historical behaviour (presence up to ``n_pops``); large presets
    #: cap it so peering count grows linearly, not quadratically, with PoPs.
    #: Applied after the presence draw, so it never shifts the RNG stream.
    big_as_presence_cap: Optional[int] = None

    def __post_init__(self) -> None:
        pool = self.metro_pool()
        if self.n_pops < 2:
            raise ValueError("need at least 2 PoPs")
        if self.n_pops > len(pool):
            raise ValueError(f"at most {len(pool)} PoPs supported by the metro pool")
        if len({metro.name for metro in pool}) != len(pool):
            # The builder memoizes geometry by metro name; duplicates would
            # silently alias distinct locations.
            raise ValueError("metro pool contains duplicate metro names")
        if self.n_tier1 < 1 or self.n_transit < 1:
            raise ValueError("need at least one tier1 and one transit AS")
        if not 0.0 <= self.transit_provider_fraction <= 1.0:
            raise ValueError("transit_provider_fraction must be in [0,1]")
        if self.big_as_presence_cap is not None and self.big_as_presence_cap < 2:
            raise ValueError("big_as_presence_cap must be >= 2")

    def metro_pool(self) -> Tuple[Metro, ...]:
        """The metro pool this topology draws from."""
        return self.metros if self.metros is not None else WORLD_METROS


@dataclass
class Topology:
    """The generated world: AS graph + cloud deployment + AS inventories."""

    config: TopologyConfig
    graph: ASGraph
    deployment: CloudDeployment
    tier1_asns: List[int]
    transit_asns: List[int]
    regional_asns: List[int]
    stub_asns: List[int]

    @property
    def cloud_asn(self) -> int:
        return CLOUD_ASN

    def edge_asns(self) -> List[int]:
        """ASes that host user groups (stubs plus regionals)."""
        return self.stub_asns + self.regional_asns


def _spread_metros(
    rng: random.Random, count: int, pool: Sequence[Metro] = WORLD_METROS
) -> List[Metro]:
    """Pick ``count`` metros maximizing geographic spread (greedy k-center)."""
    metros = list(pool)
    if count == len(metros):
        # Whole pool requested: the greedy selection would return every metro
        # anyway, so skip it (and its rng.choice) — the mega preset uses all
        # 500 metros and the O(n^2) k-center would dominate build time.
        return metros
    chosen = [rng.choice(metros)]
    remaining = [m for m in metros if m is not chosen[0]]
    while len(chosen) < count and remaining:
        best = max(
            remaining,
            key=lambda m: min(haversine_km(m.location, c.location) for c in chosen),
        )
        chosen.append(best)
        remaining.remove(best)
    return chosen


def build_topology(config: Optional[TopologyConfig] = None) -> Topology:
    """Generate a reproducible synthetic topology from ``config``."""
    config = config or TopologyConfig()
    rng = random.Random(config.seed)
    pool = list(config.metro_pool())

    graph = ASGraph()
    deployment = CloudDeployment(name="synthetic-cloud")

    # Geometry memos, keyed by metro name (validated unique).  At mega scale
    # (500 metros, 22k ASes) the naive per-AS haversine scans are O(n^2) in
    # the AS count; distinct metro pairs are not.  None of these touch the
    # seeded RNG stream, so memoization cannot perturb generated worlds.
    _pair_dist: Dict[Tuple[str, str], float] = {}

    def mdist(a: Metro, b: Metro) -> float:
        key = (a.name, b.name) if a.name <= b.name else (b.name, a.name)
        value = _pair_dist.get(key)
        if value is None:
            value = haversine_km(a.location, b.location)
            _pair_dist[key] = value
        return value

    cloud = AutonomousSystem(asn=CLOUD_ASN, role=ASRole.CLOUD, name="cloud")
    graph.add_as(cloud)

    next_asn = 100

    def make_as(role: ASRole, prefix: str, metro: Optional[Metro]) -> AutonomousSystem:
        nonlocal next_asn
        asys = AutonomousSystem(
            asn=next_asn, role=role, name=f"{prefix}{next_asn}", home_metro=metro
        )
        next_asn += 1
        graph.add_as(asys)
        return asys

    # -- PoPs ---------------------------------------------------------------
    pop_metros = _spread_metros(rng, config.n_pops, pool)
    pops = [deployment.add_pop(f"pop-{metro.name}", metro) for metro in pop_metros]

    # -- Tier-1 mesh ----------------------------------------------------------
    tier1 = [
        make_as(ASRole.TIER1, "t1-", rng.choice(pop_metros)) for _ in range(config.n_tier1)
    ]
    for i, a in enumerate(tier1):
        for b in tier1[i + 1 :]:
            graph.add_peering_link(a.asn, b.asn)

    # -- Transit providers ----------------------------------------------------
    transits = [
        make_as(ASRole.TRANSIT, "tr-", rng.choice(pop_metros)) for _ in range(config.n_transit)
    ]
    for tr in transits:
        for provider in rng.sample(tier1, k=min(len(tier1), rng.randint(1, 2))):
            graph.add_provider_customer(provider.asn, tr.asn)
        # Transit providers peer laterally with some probability.
        for other in transits:
            if other.asn < tr.asn and rng.random() < 0.25:
                if graph.relationship(tr.asn, other.asn) is None:
                    graph.add_peering_link(tr.asn, other.asn)

    # -- Regional ISPs ----------------------------------------------------------
    regionals = [
        make_as(ASRole.REGIONAL, "rg-", rng.choice(pool))
        for _ in range(config.n_regional)
    ]
    for reg in regionals:
        # Regional ISPs buy transit from providers with nearby presence, so
        # regionals in the same area share upstreams — which is why SD-WAN
        # alternates through different local ISPs often converge onto the
        # same transit AS (§5.2.4).
        assert reg.home_metro is not None
        upstream_pool = sorted(
            transits + tier1,
            key=lambda a: mdist(a.home_metro, reg.home_metro),
        )[:4]
        k = 1 if rng.random() < 0.6 else 2
        for provider in rng.sample(upstream_pool, k=min(k, len(upstream_pool))):
            if graph.relationship(provider.asn, reg.asn) is None:
                graph.add_provider_customer(provider.asn, reg.asn)
        # Settlement-free lateral peering (IXP-style): regionals peer with
        # transits and each other, multiplying the AS-level paths selective
        # advertisements can expose (§5.2.4).
        for transit in transits:
            if rng.random() < 0.15 and graph.relationship(transit.asn, reg.asn) is None:
                graph.add_peering_link(transit.asn, reg.asn)
        for other in regionals:
            if other.asn >= reg.asn:
                continue
            assert other.home_metro is not None
            close = mdist(other.home_metro, reg.home_metro) < 2000
            if close and rng.random() < 0.25 and graph.relationship(other.asn, reg.asn) is None:
                graph.add_peering_link(other.asn, reg.asn)

    # -- Stub / enterprise ASes ---------------------------------------------
    stubs = [
        make_as(ASRole.STUB, "st-", rng.choice(pool))
        for _ in range(config.n_stub)
    ]

    # Stubs sharing a home metro see the same nearby-regional candidates, so
    # compute each metro's sorted list once (20k stubs x 2k regionals would
    # otherwise be 40M haversine calls at mega scale).
    _nearby_regionals: Dict[str, List[AutonomousSystem]] = {}

    def nearby_regionals_of(home: Metro) -> List[AutonomousSystem]:
        cached = _nearby_regionals.get(home.name)
        if cached is None:
            cached = sorted(
                (r for r in regionals if mdist(r.home_metro, home) <= 3000.0),
                key=lambda r: mdist(r.home_metro, home),
            )[:8]
            _nearby_regionals[home.name] = cached
        return cached

    for stub in stubs:
        # Prefer nearby regional ISPs as providers; fall back to transit.
        assert stub.home_metro is not None
        # Enterprises buy access from *local* ISPs; where no regional ISP is
        # within reach they go straight to a transit provider.  (Without the
        # distance cap, stubs in sparse regions would buy from ISPs half a
        # world away and anycast would land them at absurd PoPs.)
        nearby = nearby_regionals_of(stub.home_metro)
        n_providers = max(1, min(4, int(rng.expovariate(1.0 / config.stub_multihoming_mean)) + 1))
        providers: List[AutonomousSystem] = []
        pool = nearby + transits
        while len(providers) < n_providers and pool:
            choice = rng.choice(pool[:10]) if rng.random() < 0.8 else rng.choice(pool)
            if choice not in providers:
                providers.append(choice)
            pool = [p for p in pool if p not in providers]
        for provider in providers:
            if graph.relationship(provider.asn, stub.asn) is None:
                graph.add_provider_customer(provider.asn, stub.asn)

    # -- Cloud peerings --------------------------------------------------------
    # Big transit/tier1 networks: present at many PoPs.  A configurable
    # fraction are paid transit providers of the cloud (PROVIDER), the rest
    # settlement-free peers; both are ingresses.
    big = tier1 + transits
    n_providers_of_cloud = max(1, round(len(big) * config.transit_provider_fraction))
    provider_set = set(rng.sample([a.asn for a in big], k=n_providers_of_cloud))
    for asys in big:
        rel = Relationship.PROVIDER if asys.asn in provider_set else Relationship.PEER
        presence = rng.randint(max(2, config.n_pops // 2), config.n_pops)
        if config.big_as_presence_cap is not None:
            # Cap AFTER the draw: the RNG stream (and thus every downstream
            # choice) is identical whether or not a cap is configured.
            presence = min(presence, config.big_as_presence_cap)
        for pop in rng.sample(pops, k=presence):
            deployment.add_peering(pop, asys.asn, rel)
        if rel is Relationship.PROVIDER:
            graph.add_provider_customer(asys.asn, CLOUD_ASN)
        elif graph.relationship(CLOUD_ASN, asys.asn) is None:
            graph.add_peering_link(CLOUD_ASN, asys.asn)

    # Nearest-PoP lookups repeat per home metro; memoize them (the PoP set is
    # frozen by this point, and nearest_pop is a pure geometric scan).
    _nearest_pop: Dict[str, PoP] = {}

    def nearest_pop_of(home: Metro) -> PoP:
        cached = _nearest_pop.get(home.name)
        if cached is None:
            cached = deployment.nearest_pop(home.location)
            _nearest_pop[home.name] = cached
        return cached

    # Regional ISPs: mostly single-PoP peers near home.
    for reg in regionals:
        if rng.random() >= config.regional_peering_prob:
            continue
        assert reg.home_metro is not None
        nearest = nearest_pop_of(reg.home_metro)
        try:
            deployment.add_peering(nearest, reg.asn, Relationship.PEER)
        except ValueError:
            continue  # already peers there via another role
        if graph.relationship(CLOUD_ASN, reg.asn) is None:
            graph.add_peering_link(CLOUD_ASN, reg.asn)

    # A few stubs peer directly (large enterprises).
    for stub in stubs:
        if rng.random() >= config.stub_peering_prob:
            continue
        assert stub.home_metro is not None
        nearest = nearest_pop_of(stub.home_metro)
        try:
            deployment.add_peering(nearest, stub.asn, Relationship.PEER)
        except ValueError:
            continue
        if graph.relationship(CLOUD_ASN, stub.asn) is None:
            graph.add_peering_link(CLOUD_ASN, stub.asn)

    graph.validate()
    return Topology(
        config=config,
        graph=graph,
        deployment=deployment,
        tier1_asns=[a.asn for a in tier1],
        transit_asns=[a.asn for a in transits],
        regional_asns=[a.asn for a in regionals],
        stub_asns=[a.asn for a in stubs],
    )
