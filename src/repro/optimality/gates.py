"""LP-bound soundness gate: the optimality envelope for solved configs.

For ANY advertisement configuration ``C`` (reuse or not), each UG's Eq.-2
improvement is ``max(0, anycast - min_prefix E[lat(u, A_j)])``, and the
expectation over an advertised set is a mean over a subset of its
measurable compliant ingresses — hence at least the best singleton gain
among ``C``'s distinct peerings.  So::

    expected_benefit(C) <= OPT(selection, budget=|distinct peerings of C|)
                        <= lp_bound(selection, same budget)

:func:`assert_lp_sound` checks that chain end-to-end and is wired into the
solve/parallel/controller benchmark gates, so perf work (memoization,
sharding, warm-start) cannot silently push the greedy's benefit past — or
mis-measure it against — a provable optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.advertisement import AdvertisementConfig
from repro.core.benefit import BenefitEvaluator
from repro.optimality.problem import SelectionProblem
from repro.optimality.solvers import SolveOutcome, lp_bound
from repro.perf import PERF

__all__ = ["LpEnvelope", "assert_lp_sound", "lp_envelope"]

#: Relative slack for the soundness comparison — covers nothing but float
#: round-off between two independently-accumulated sums over the same data.
DEFAULT_REL_TOL = 1e-6


@dataclass(frozen=True)
class LpEnvelope:
    """A config's benefit against the LP optimality envelope at its budget."""

    benefit: float
    bound: float
    budget: int
    lp: SolveOutcome

    @property
    def sound(self) -> bool:
        return self.benefit <= self.bound * (1.0 + DEFAULT_REL_TOL) + 1e-9

    @property
    def utilization(self) -> float:
        """benefit / bound — how much of the provable optimum is realized."""
        return self.benefit / self.bound if self.bound > 0.0 else 1.0


def lp_envelope(
    evaluator: BenefitEvaluator,
    config: AdvertisementConfig,
    benefit: Optional[float] = None,
) -> LpEnvelope:
    """Compute the LP upper bound that dominates ``config``'s benefit.

    The envelope budget is the number of *distinct peerings* the config
    actually advertises (not the prefix budget): a reuse config with ``m``
    distinct peerings is dominated by the selection optimum at budget
    ``m``, which the LP relaxation upper-bounds.  ``benefit`` defaults to
    ``evaluator.expected_benefit(config)``.
    """
    if benefit is None:
        benefit = evaluator.expected_benefit(config)
    budget = max(1, len(config.all_peering_ids()))
    problem = SelectionProblem.from_evaluator(evaluator, budget)
    outcome = lp_bound(problem)
    return LpEnvelope(
        benefit=float(benefit),
        bound=outcome.value,
        budget=problem.budget,
        lp=outcome,
    )


def assert_lp_sound(
    evaluator: BenefitEvaluator,
    config: AdvertisementConfig,
    benefit: Optional[float] = None,
) -> LpEnvelope:
    """Raise ``AssertionError`` unless ``benefit <= lp_bound`` holds.

    Returns the computed :class:`LpEnvelope` so callers (benchmark gates)
    can also record the bound and utilization in their ``extra_info``.
    """
    envelope = lp_envelope(evaluator, config, benefit=benefit)
    PERF.counter("optimality.envelope_checks").add()
    if not envelope.sound:
        PERF.counter("optimality.envelope_violations").add()
        raise AssertionError(
            "LP optimality envelope violated: benefit "
            f"{envelope.benefit:.9g} > bound {envelope.bound:.9g} at "
            f"budget {envelope.budget} — the benefit computation and the "
            "selection relaxation disagree; a solver change has likely "
            "broken Eq.-2 evaluation"
        )
    return envelope
