"""ILP / LP-relaxation solvers for :class:`~repro.optimality.SelectionProblem`.

Formulation (Shao et al.'s prefix-selection ILP, specialized to PAINTER's
gain matrix): with binary ``x_p`` ("peering column p selected") and
assignment variables ``y_e`` per sparse gain entry ``e = (u, p)``::

    maximize    sum_e gain_e * y_e
    subject to  sum_{e in UG u} y_e <= 1          for every user group u
                y_e <= x_{col(e)}                 for every entry e
                sum_p x_p <= k
                x binary, 0 <= y <= 1

The linking constraints are disaggregated (one per entry, not per column),
which makes the LP relaxation markedly tighter — and the LP relaxation is
exactly what the benchmark gates use as a cheap optimality envelope.  Only
``x`` needs integrality: once the open columns are fixed, the best ``y``
puts all of a UG's mass on its highest-gain open entry, so optimal ``y``
are automatically extreme.

Backends: ``scipy`` (``scipy.optimize.milp``/HiGHS — the default), ``pulp``
(optional, CBC via the PuLP modeler, import-gated since the container may
not ship it), and ``brute`` (exhaustive enumeration, tiny instances only).
Every backend reports its value through
:meth:`~repro.core.BenefitMatrix.selection_value` on the chosen columns, so
values from different backends are bit-comparable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.optimality.problem import (
    MAX_BRUTE_FORCE_COMBINATIONS,
    SelectionProblem,
    brute_force,
)
from repro.perf import PERF
from repro.telemetry import TRACER

__all__ = [
    "BackendUnavailable",
    "SolveOutcome",
    "available_backends",
    "lp_bound",
    "solve_ilp",
]


class BackendUnavailable(RuntimeError):
    """The requested solver backend's dependency is not importable."""


@dataclass(frozen=True)
class SolveOutcome:
    """One solver call's result.

    ``value`` is always recomputed from the chosen columns via
    :meth:`~repro.core.BenefitMatrix.selection_value` (deterministic float
    path); ``objective`` is whatever the backend itself reported, kept for
    mip-gap style diagnostics.  For LP relaxations ``chosen`` is empty and
    ``value == objective`` is the (possibly fractional) bound.
    """

    value: float
    chosen: Tuple[int, ...]
    chosen_peering_ids: Tuple[int, ...]
    objective: float
    status: str
    backend: str
    solve_time_s: float
    mip_gap: Optional[float] = None


def available_backends() -> Tuple[str, ...]:
    """The ILP backends importable in this environment, preference order."""
    found = []
    try:
        import scipy.optimize  # noqa: F401

        found.append("scipy")
    except ImportError:
        pass
    try:
        import pulp  # noqa: F401

        found.append("pulp")
    except ImportError:
        pass
    found.append("brute")
    return tuple(found)


def _trivial_outcome(backend: str, status: str = "optimal") -> SolveOutcome:
    return SolveOutcome(
        value=0.0,
        chosen=(),
        chosen_peering_ids=(),
        objective=0.0,
        status=status,
        backend=backend,
        solve_time_s=0.0,
        mip_gap=0.0,
    )


def _scipy_matrices(problem: SelectionProblem):
    """Sparse (A, b_ub, c) for the formulation above; vars are ``[x, y]``."""
    from scipy import sparse

    matrix = problem.matrix
    n_p = matrix.n_peerings
    nnz = matrix.nnz
    n_vars = n_p + nnz
    c = np.zeros(n_vars)
    c[n_p:] = -matrix.gains  # linprog/milp minimize

    entry_idx = np.arange(nnz)
    # Per-UG assignment: sum of the UG's y entries <= 1.
    a_assign = sparse.csr_matrix(
        (np.ones(nnz), (matrix.rows, n_p + entry_idx)),
        shape=(matrix.n_ugs, n_vars),
    )
    # Linking: y_e - x_{col(e)} <= 0, disaggregated per entry.
    link_rows = np.concatenate([entry_idx, entry_idx])
    link_cols = np.concatenate([n_p + entry_idx, matrix.cols])
    link_data = np.concatenate([np.ones(nnz), -np.ones(nnz)])
    a_link = sparse.csr_matrix(
        (link_data, (link_rows, link_cols)), shape=(nnz, n_vars)
    )
    # Budget: sum_p x_p <= k.
    a_budget = sparse.csr_matrix(
        (np.ones(n_p), (np.zeros(n_p, dtype=np.intp), np.arange(n_p))),
        shape=(1, n_vars),
    )
    a_ub = sparse.vstack([a_assign, a_link, a_budget], format="csr")
    b_ub = np.concatenate(
        [np.ones(matrix.n_ugs), np.zeros(nnz), [float(problem.budget)]]
    )
    return c, a_ub, b_ub


def lp_bound(
    problem: SelectionProblem, time_limit_s: Optional[float] = None
) -> SolveOutcome:
    """Solve the LP relaxation: a cheap, sound upper bound on the optimum.

    Every feasible selection (greedy, ILP, or otherwise) satisfies
    ``value <= lp_bound``; the benchmark gates assert exactly that.
    """
    try:
        from scipy.optimize import linprog
    except ImportError as exc:  # pragma: no cover - scipy present in dev env
        raise BackendUnavailable(
            "LP bound requires scipy (scipy.optimize.linprog)"
        ) from exc
    if problem.matrix.nnz == 0:
        return _trivial_outcome("scipy-lp")
    timer = PERF.timer("optimality.lp_seconds")
    PERF.counter("optimality.lp_solves").add()
    c, a_ub, b_ub = _scipy_matrices(problem)
    options = {}
    if time_limit_s is not None:
        options["time_limit"] = float(time_limit_s)
    with TRACER.span(
        "optimality.lp", n_vars=len(c), budget=problem.budget
    ):
        started = time.perf_counter()
        res = linprog(
            c,
            A_ub=a_ub,
            b_ub=b_ub,
            bounds=(0.0, 1.0),
            method="highs",
            options=options,
        )
        elapsed = time.perf_counter() - started
    timer.add(elapsed)
    if not res.success:
        raise RuntimeError(f"LP relaxation failed: {res.message}")
    bound = float(-res.fun)
    return SolveOutcome(
        value=bound,
        chosen=(),
        chosen_peering_ids=(),
        objective=bound,
        status="optimal",
        backend="scipy-lp",
        solve_time_s=elapsed,
    )


def _solve_scipy(
    problem: SelectionProblem,
    time_limit_s: Optional[float],
    mip_rel_gap: float,
) -> SolveOutcome:
    try:
        from scipy.optimize import Bounds, LinearConstraint, milp
    except ImportError as exc:
        raise BackendUnavailable(
            "scipy backend requires scipy.optimize.milp"
        ) from exc
    matrix = problem.matrix
    if matrix.nnz == 0:
        return _trivial_outcome("scipy")
    c, a_ub, b_ub = _scipy_matrices(problem)
    n_p = matrix.n_peerings
    integrality = np.zeros(len(c))
    integrality[:n_p] = 1  # only x binary; optimal y are extreme anyway
    options = {"mip_rel_gap": float(mip_rel_gap)}
    if time_limit_s is not None:
        options["time_limit"] = float(time_limit_s)
    started = time.perf_counter()
    res = milp(
        c,
        constraints=LinearConstraint(a_ub, -np.inf, b_ub),
        integrality=integrality,
        bounds=Bounds(0.0, 1.0),
        options=options,
    )
    elapsed = time.perf_counter() - started
    if res.x is None:
        raise RuntimeError(f"scipy milp returned no solution: {res.message}")
    chosen = tuple(int(i) for i in np.flatnonzero(res.x[:n_p] > 0.5))
    status = {0: "optimal", 1: "iteration_limit", 2: "infeasible", 3: "unbounded"}.get(
        res.status, f"status_{res.status}"
    )
    gap = getattr(res, "mip_gap", None)
    return SolveOutcome(
        value=matrix.selection_value(chosen),
        chosen=chosen,
        chosen_peering_ids=tuple(matrix.peering_ids[c_] for c_ in chosen),
        objective=float(-res.fun),
        status=status,
        backend="scipy",
        solve_time_s=elapsed,
        mip_gap=None if gap is None else float(gap),
    )


def _solve_pulp(
    problem: SelectionProblem,
    time_limit_s: Optional[float],
    mip_rel_gap: float,
) -> SolveOutcome:
    try:
        import pulp
    except ImportError as exc:
        raise BackendUnavailable(
            "pulp backend requires the optional PuLP package"
        ) from exc
    matrix = problem.matrix
    if matrix.nnz == 0:
        return _trivial_outcome("pulp")
    model = pulp.LpProblem("painter_selection", pulp.LpMaximize)
    x = [
        pulp.LpVariable(f"x_{p}", cat=pulp.LpBinary)
        for p in range(matrix.n_peerings)
    ]
    y = [
        pulp.LpVariable(f"y_{e}", lowBound=0.0, upBound=1.0)
        for e in range(matrix.nnz)
    ]
    model += pulp.lpSum(float(g) * y[e] for e, g in enumerate(matrix.gains))
    by_row: dict = {}
    for e in range(matrix.nnz):
        by_row.setdefault(int(matrix.rows[e]), []).append(y[e])
        model += y[e] <= x[int(matrix.cols[e])]
    for entries in by_row.values():
        model += pulp.lpSum(entries) <= 1
    model += pulp.lpSum(x) <= problem.budget
    solver = pulp.PULP_CBC_CMD(
        msg=False,
        timeLimit=time_limit_s,
        gapRel=mip_rel_gap or None,
    )
    started = time.perf_counter()
    model.solve(solver)
    elapsed = time.perf_counter() - started
    status = pulp.LpStatus[model.status].lower()
    if model.status != pulp.LpStatusOptimal:
        raise RuntimeError(f"pulp/CBC solve ended with status {status}")
    chosen = tuple(
        p for p, var in enumerate(x) if (var.value() or 0.0) > 0.5
    )
    return SolveOutcome(
        value=matrix.selection_value(chosen),
        chosen=chosen,
        chosen_peering_ids=tuple(matrix.peering_ids[c_] for c_ in chosen),
        objective=float(pulp.value(model.objective) or 0.0),
        status=status,
        backend="pulp",
        solve_time_s=elapsed,
    )


def _solve_brute(problem: SelectionProblem) -> SolveOutcome:
    matrix = problem.matrix
    started = time.perf_counter()
    value, chosen = brute_force(problem)
    elapsed = time.perf_counter() - started
    return SolveOutcome(
        value=value,
        chosen=chosen,
        chosen_peering_ids=tuple(matrix.peering_ids[c_] for c_ in chosen),
        objective=value,
        status="optimal",
        backend="brute",
        solve_time_s=elapsed,
        mip_gap=0.0,
    )


def solve_ilp(
    problem: SelectionProblem,
    backend: str = "auto",
    time_limit_s: Optional[float] = None,
    mip_rel_gap: float = 0.0,
) -> SolveOutcome:
    """Solve the selection ILP to optimality with the requested backend.

    ``backend``: ``"scipy"`` (HiGHS via ``scipy.optimize.milp``),
    ``"pulp"`` (CBC, optional dependency), ``"brute"`` (exhaustive, tiny
    instances), or ``"auto"`` (first available in that order).  Raises
    :class:`BackendUnavailable` when the requested backend's dependency is
    missing.
    """
    if backend == "auto":
        for candidate in available_backends():
            if candidate == "brute":
                # Only fall all the way back to enumeration when feasible.
                import math as _math

                n, k = problem.matrix.n_peerings, problem.budget
                if n and _math.comb(n, min(k, n)) > MAX_BRUTE_FORCE_COMBINATIONS:
                    continue
            try:
                return solve_ilp(
                    problem,
                    backend=candidate,
                    time_limit_s=time_limit_s,
                    mip_rel_gap=mip_rel_gap,
                )
            except BackendUnavailable:
                continue
        raise BackendUnavailable(
            "no usable ILP backend (need scipy, pulp, or a brute-forceable "
            "instance)"
        )
    timer = PERF.timer("optimality.ilp_seconds")
    PERF.counter("optimality.ilp_solves").add()
    with TRACER.span(
        "optimality.ilp",
        backend=backend,
        n_peerings=problem.matrix.n_peerings,
        nnz=problem.matrix.nnz,
        budget=problem.budget,
    ):
        if backend == "scipy":
            outcome = _solve_scipy(problem, time_limit_s, mip_rel_gap)
        elif backend == "pulp":
            outcome = _solve_pulp(problem, time_limit_s, mip_rel_gap)
        elif backend == "brute":
            outcome = _solve_brute(problem)
        else:
            raise ValueError(f"unknown ILP backend {backend!r}")
    timer.add(outcome.solve_time_s)
    return outcome
