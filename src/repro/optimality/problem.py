"""The budget-k peering-selection problem behind the optimality comparator.

PAINTER's Algorithm 1 with reuse disabled (``allow_reuse=False``) reduces to
*selection*: pick at most ``k`` peerings, advertise one prefix per pick, and
every user group routes to its best (highest singleton gain) selected
ingress.  That problem is linearizable over the sparse gain matrix extracted
by :meth:`repro.core.BenefitEvaluator.benefit_matrix`, which is what lets us
pose it as an ILP (:mod:`repro.optimality.solvers`) and compare the greedy's
benefit against a provably optimal value — ROADMAP item 2.

For reuse configurations the same machinery still yields a sound *upper
envelope*: any config advertising ``m`` distinct peerings is dominated by
the selection optimum at budget ``m`` (the Eq.-2 expectation over an
advertised set is a mean over a subset of its measurable compliant
ingresses, hence at least the minimum — i.e. at most the best singleton
gain).  :mod:`repro.optimality.gates` builds on that inequality.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.benefit import BenefitEvaluator, BenefitMatrix

__all__ = [
    "SelectionProblem",
    "brute_force",
    "greedy_selection",
]

#: Refuse to enumerate more candidate sets than this in :func:`brute_force`.
MAX_BRUTE_FORCE_COMBINATIONS = 500_000


@dataclass(frozen=True)
class SelectionProblem:
    """A budget-k selection instance over a sparse gain matrix.

    ``budget`` is always clamped to the number of candidate peerings —
    selecting every column is the maximum any budget can buy — while
    ``requested_budget`` preserves what the caller asked for so diagnostics
    can surface over-budget requests (mirroring the orchestrator's
    ``prefix_budget`` validation).
    """

    matrix: BenefitMatrix
    budget: int
    requested_budget: int

    def __post_init__(self) -> None:
        if self.requested_budget < 1:
            raise ValueError("selection budget must be at least 1")
        if self.budget != min(self.requested_budget, self.matrix.n_peerings):
            raise ValueError(
                "budget must be the requested budget clamped to the "
                f"{self.matrix.n_peerings} candidate peerings"
            )

    @classmethod
    def build(cls, matrix: BenefitMatrix, budget: int) -> "SelectionProblem":
        """Clamp ``budget`` against the candidate columns and wrap up."""
        if budget < 1:
            raise ValueError("selection budget must be at least 1")
        return cls(
            matrix=matrix,
            budget=min(budget, matrix.n_peerings),
            requested_budget=budget,
        )

    @classmethod
    def from_evaluator(
        cls, evaluator: BenefitEvaluator, budget: int
    ) -> "SelectionProblem":
        """Extract the gain matrix from ``evaluator`` and build an instance."""
        return cls.build(evaluator.benefit_matrix(), budget)

    @property
    def over_budget(self) -> bool:
        """True when the caller asked for more picks than candidates exist."""
        return self.requested_budget > self.matrix.n_peerings

    def value_of(self, chosen_cols: Sequence[int]) -> float:
        """Objective value of a concrete selection (deterministic float)."""
        if len(set(int(c) for c in chosen_cols)) > self.budget:
            raise ValueError(
                f"selection uses {len(set(chosen_cols))} columns, "
                f"budget is {self.budget}"
            )
        return self.matrix.selection_value(chosen_cols)


def greedy_selection(problem: SelectionProblem) -> Tuple[float, Tuple[int, ...]]:
    """Plain greedy on the selection problem — the matrix-level mirror of
    Algorithm 1 with reuse disabled.

    Each round picks the column with the largest marginal increase of the
    coverage objective, stopping early once no column improves.  Returns
    ``(value, chosen columns)`` with the value recomputed through
    :meth:`BenefitMatrix.selection_value` so it is bit-comparable with the
    ILP/brute-force numbers.
    """
    matrix = problem.matrix
    if matrix.nnz == 0:
        return 0.0, ()
    order = np.argsort(matrix.cols, kind="stable")
    sorted_cols = matrix.cols[order]
    sorted_rows = matrix.rows[order]
    sorted_gains = matrix.gains[order]
    # Column c's entries live in sorted_* slices [starts[c], starts[c + 1]).
    starts = np.searchsorted(sorted_cols, np.arange(matrix.n_peerings + 1))

    best = np.zeros(matrix.n_ugs, dtype=np.float64)
    chosen: list[int] = []
    remaining = set(range(matrix.n_peerings))
    for _ in range(problem.budget):
        best_col = -1
        best_marginal = 0.0
        for col in sorted(remaining):
            lo, hi = starts[col], starts[col + 1]
            if lo == hi:
                continue
            marginal = float(
                np.maximum(sorted_gains[lo:hi] - best[sorted_rows[lo:hi]], 0.0).sum()
            )
            if marginal > best_marginal:
                best_marginal = marginal
                best_col = col
        if best_col < 0:
            break
        lo, hi = starts[best_col], starts[best_col + 1]
        np.maximum.at(best, sorted_rows[lo:hi], sorted_gains[lo:hi])
        chosen.append(best_col)
        remaining.discard(best_col)
    chosen_t = tuple(sorted(chosen))
    return matrix.selection_value(chosen_t), chosen_t


def brute_force(
    problem: SelectionProblem,
    max_combinations: int = MAX_BRUTE_FORCE_COMBINATIONS,
) -> Tuple[float, Tuple[int, ...]]:
    """Exhaustively enumerate every budget-sized column set (tiny instances).

    The selection objective is monotone, so only exactly-``budget``-sized
    sets (or all columns, if fewer) need checking.  Serves as the
    correctness oracle for the ILP backends: both recompute values through
    the same :meth:`BenefitMatrix.selection_value`, so on any instance small
    enough to enumerate, ``ilp_value == brute_value`` must hold bit-for-bit.
    """
    matrix = problem.matrix
    n = matrix.n_peerings
    k = min(problem.budget, n)
    if n == 0 or matrix.nnz == 0:
        return 0.0, ()
    total = math.comb(n, k)
    if total > max_combinations:
        raise ValueError(
            f"brute force would enumerate {total} combinations "
            f"(> {max_combinations}); use the ILP backend instead"
        )
    best_value = -1.0
    best_set: Tuple[int, ...] = ()
    for combo in itertools.combinations(range(n), k):
        value = matrix.selection_value(combo)
        if value > best_value:
            best_value = value
            best_set = combo
    return best_value, best_set
