"""Optimality-bound comparator for Algorithm 1 (ROADMAP item 2).

Poses budget-k prefix-to-peering assignment as an ILP over the sparse
singleton-gain matrix (:meth:`repro.core.BenefitEvaluator.benefit_matrix`),
solves it exactly (scipy/HiGHS, optional PuLP/CBC, brute force as the tiny
-instance oracle), and exposes the LP relaxation as a cheap upper bound
that the benchmark gates assert against every solved configuration.
"""

from repro.optimality.gates import (
    DEFAULT_REL_TOL,
    LpEnvelope,
    assert_lp_sound,
    lp_envelope,
)
from repro.optimality.problem import (
    MAX_BRUTE_FORCE_COMBINATIONS,
    SelectionProblem,
    brute_force,
    greedy_selection,
)
from repro.optimality.solvers import (
    BackendUnavailable,
    SolveOutcome,
    available_backends,
    lp_bound,
    solve_ilp,
)

__all__ = [
    "BackendUnavailable",
    "DEFAULT_REL_TOL",
    "LpEnvelope",
    "MAX_BRUTE_FORCE_COMBINATIONS",
    "SelectionProblem",
    "SolveOutcome",
    "assert_lp_sound",
    "available_backends",
    "brute_force",
    "greedy_selection",
    "lp_bound",
    "lp_envelope",
    "solve_ilp",
]
