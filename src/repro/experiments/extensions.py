"""Extension experiments beyond the paper's figures.

The paper's objective is a *function of latency* and it motivates congestion
mitigation explicitly ("mitigates network problems such as path inflation
and congestion", §1) but evaluates only latency.  These experiments exercise
the natural extensions this library implements:

* **congestion** — the paths PAINTER exposes also carry load: spreading
  flows across them with the load-aware selector keeps effective latency
  bounded long after a single pinned path saturates;
* **multipath** — an MPTCP-style edge proxy (§2.3/§3.2's alternative edge
  presence) aggregates exposed paths and rides out a path failure in one
  subflow RTT.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.orchestrator import OrchestratorConfig, PainterOrchestrator
from repro.experiments.harness import ExperimentResult
from repro.scenario import Scenario
from repro.traffic_manager.load_balancing import LoadAwareSelector, effective_latency_ms
from repro.traffic_manager.multipath import Subflow, failover_comparison


def _exposed_destinations(scenario: Scenario, budget: int = 6) -> List[tuple]:
    """(prefix label, rtt_ms) destinations PAINTER exposes for the most
    inflation-suffering UG, anycast included."""
    orchestrator = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=budget))
    orchestrator.learn(iterations=2)
    config = orchestrator.solve()
    ug = max(
        scenario.user_groups,
        key=lambda u: scenario.anycast_latency_ms(u) - scenario.best_possible_latency_ms(u),
    )
    destinations = [("anycast", scenario.anycast_latency_ms(ug))]
    for prefix in config.prefixes:
        latency = scenario.routing.latency_for(ug, config.peerings_for(prefix))
        if latency is not None:
            destinations.append((f"prefix-{prefix}", latency))
    return destinations


def run_ext_congestion(
    scenario: Optional[Scenario] = None,
    capacity_per_destination: float = 100.0,
    demand_levels: Sequence[int] = (50, 100, 200, 400, 600),
) -> ExperimentResult:
    """Load-aware spreading over exposed paths vs a single pinned path."""
    if scenario is None:
        from repro.scenario import tiny_scenario

        scenario = tiny_scenario(seed=3)
    destinations = _exposed_destinations(scenario)
    best_rtt = min(rtt for _name, rtt in destinations)

    result = ExperimentResult(
        experiment_id="ext_congestion",
        title="Congestion: single best path vs load-aware spread over exposed paths",
        columns=[
            "flows",
            "single_path_latency_ms",
            "single_delivered_frac",
            "spread_max_latency_ms",
            "spread_delivered_frac",
        ],
    )
    for demand in demand_levels:
        # Single path: everything pinned to the lowest-latency destination.
        utilization = demand / capacity_per_destination
        single_latency = effective_latency_ms(best_rtt, min(utilization, 0.999))
        single_delivered = min(1.0, capacity_per_destination / demand)
        if utilization >= 1.0:
            single_latency = float("inf")

        # Load-aware spread across every exposed destination.
        selector = LoadAwareSelector()
        for name, rtt in destinations:
            selector.add_destination(name, capacity=capacity_per_destination, base_rtt_ms=rtt)
        placed = 0
        for _ in range(demand):
            if selector.assign_flow() is not None:
                placed += 1
        # Mean effective latency over the flows actually placed (destinations
        # the spread never used don't count against it).
        used = {
            name: load
            for name, load in selector.utilizations().items()
            if load > 0
        }
        effective = selector.effective_latencies()
        total_load = sum(used.values())
        spread_latency = (
            sum(effective[name] * load for name, load in used.items()) / total_load
            if total_load > 0
            else float("inf")
        )
        result.add_row(
            demand,
            single_latency if single_latency != float("inf") else -1.0,
            single_delivered,
            spread_latency if spread_latency != float("inf") else -1.0,
            placed / demand,
        )
    result.add_note(f"destinations exposed: {len(destinations)}; -1 marks saturation")
    return result


def run_ext_multipath(
    scenario: Optional[Scenario] = None,
    demand_mbps: float = 60.0,
    single_path_detection_ms: float = 26.0,
) -> ExperimentResult:
    """MPTCP-style subflows over exposed paths: failover in one subflow RTT."""
    if scenario is None:
        from repro.scenario import tiny_scenario

        scenario = tiny_scenario(seed=3)
    destinations = _exposed_destinations(scenario)
    subflows = [
        Subflow(prefix=name, rtt_ms=rtt, capacity_mbps=50.0)
        for name, rtt in destinations[:4]
    ]

    result = ExperimentResult(
        experiment_id="ext_multipath",
        title="Multipath edge proxy: outage and delivery after a path failure",
        columns=[
            "failed_path",
            "multipath_outage_ms",
            "single_path_outage_ms",
            "multipath_delivered_frac",
        ],
    )
    from repro.traffic_manager.multipath import MultipathConnection

    for subflow in subflows:
        multipath_ms, single_ms = failover_comparison(
            subflows,
            failed_prefix=subflow.prefix,
            demand_mbps=demand_mbps,
            single_path_detection_ms=single_path_detection_ms,
        )
        degraded = MultipathConnection(subflows).fail_subflow(subflow.prefix)
        result.add_row(
            subflow.prefix,
            multipath_ms,
            single_ms,
            degraded.delivered_fraction(demand_mbps),
        )
    result.add_note(
        "multipath keeps delivering on surviving subflows (delivered_frac) and "
        "reschedules within one subflow RTT; a single-path tunnel is dark for "
        "the whole detection timeout"
    )
    return result


def run_ext_ipv6(scenario: Optional[Scenario] = None) -> ExperimentResult:
    """§2.4's IPv6 rejection, quantified: exposable paths and FIB cost."""
    from repro.topology.ipv6 import (
        DualStackCatalog,
        DualStackConfig,
        analyze_ipv6_feasibility,
    )

    if scenario is None:
        from repro.scenario import tiny_scenario

        scenario = tiny_scenario(seed=3)
    result = ExperimentResult(
        experiment_id="ext_ipv6",
        title="IPv6-only advertisement feasibility (the paper's §2.4 argument)",
        columns=[
            "transit_v6_prob",
            "peer_v6_prob",
            "v6_peering_frac",
            "exposable_path_frac",
            "fib_cost_factor",
        ],
    )
    for transit_p, peer_p in ((0.85, 0.55), (0.95, 0.75), (1.0, 1.0)):
        dual = DualStackCatalog(
            scenario.deployment,
            DualStackConfig(seed=1, transit_v6_prob=transit_p, peer_v6_prob=peer_p),
        )
        feasibility = analyze_ipv6_feasibility(scenario.catalog, dual)
        result.add_row(
            transit_p,
            peer_p,
            feasibility.v6_peering_fraction,
            feasibility.exposable_path_fraction,
            feasibility.fib_cost_factor,
        )
    result.add_note(
        "even full dual-stack keeps the 8x FIB cost; at realistic v6 peering "
        "rates a v6-only PAINTER cannot expose all the paths"
    )
    return result


def run_ext_egress(scenario: Optional[Scenario] = None) -> ExperimentResult:
    """§6's coexistence claim: PAINTER + egress TE compose additively."""
    from repro.egress.coexistence import evaluate_coexistence

    if scenario is None:
        from repro.scenario import tiny_scenario

        scenario = tiny_scenario(seed=3)
    orchestrator = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=5))
    orchestrator.learn(iterations=2)
    config = orchestrator.solve()
    outcome = evaluate_coexistence(scenario, config)
    result = ExperimentResult(
        experiment_id="ext_egress",
        title="Coexistence with egress traffic engineering (end-to-end, weighted ms)",
        columns=["combination", "latency_weighted_ms", "gain_vs_neither"],
    )
    result.add_row("neither", outcome.neither, 0.0)
    result.add_row("painter_only", outcome.painter_only, outcome.painter_gain)
    result.add_row("egress_only", outcome.egress_only, outcome.egress_gain)
    result.add_row("both", outcome.both, outcome.combined_gain)
    result.add_note(f"additivity (combined / sum of individual): {outcome.additivity:.2f}")
    return result


def run_ext_failover_sweep(
    rtt_scale_ms: Sequence[float] = (10.0, 20.0, 40.0, 80.0),
) -> ExperimentResult:
    """Fig. 10 generalized: failover timescales across base RTTs.

    PAINTER's detection time is proportional to the RTT (1.3 RTT), so its
    advantage over anycast/DNS holds across the whole latency range a global
    deployment sees.
    """
    from repro.traffic_manager.failover import FailoverConfig, PathSpec, run_failover

    result = ExperimentResult(
        experiment_id="ext_failover_sweep",
        title="Failover timescales across base RTTs",
        columns=[
            "base_rtt_ms",
            "painter_downtime_ms",
            "anycast_loss_ms",
            "anycast_reconvergence_s",
            "dns_downtime_s",
        ],
    )
    for rtt in rtt_scale_ms:
        paths = [
            PathSpec(
                prefix="1.1.1.0/24",
                pop_name="pop-a",
                base_rtt_ms=rtt * 1.25,
                is_anycast=True,
                backup_rtt_ms=rtt * 1.7,
            ),
            PathSpec(prefix="2.2.2.0/24", pop_name="pop-a", base_rtt_ms=rtt),
            PathSpec(prefix="3.3.3.0/24", pop_name="pop-b", base_rtt_ms=rtt * 1.5),
        ]
        outcome = run_failover(paths, FailoverConfig(seed=1))
        result.add_row(
            rtt,
            outcome.painter_downtime_ms,
            outcome.anycast_loss_s * 1000.0,
            outcome.anycast_reconvergence_s,
            outcome.dns_downtime_s,
        )
    result.add_note("PAINTER downtime scales with RTT (1.3x detection); the others do not")
    return result
