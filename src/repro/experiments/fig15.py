"""Fig. 15 (Appendix E.2): scaling and the D_reuse tradeoff.

* **15a** — prefixes required to reach 90/95/99% of achievable benefit as
  the deployment grows (paper: scales linearly with deployment size);
* **15b** — sweeping the minimum reuse distance: larger D_reuse means the
  solver reuses prefixes only across far-apart ingresses, costing more
  prefixes but shrinking the benefit uncertainty.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.orchestrator import OrchestratorConfig, PainterOrchestrator
from repro.experiments.harness import ExperimentResult
from repro.scenario import Scenario, build_scenario
from repro.topology.builder import TopologyConfig
from repro.usergroups.generation import UserGroupConfig

DEFAULT_SCALES: Sequence[float] = (0.4, 0.7, 1.0)
DEFAULT_D_REUSE_SWEEP_KM: Sequence[float] = (500, 1000, 1500, 2000, 2500, 3000)
BENEFIT_TARGETS: Sequence[float] = (0.90, 0.95, 0.99)


def _scaled_scenario(scale: float, seed: int = 0, n_ugs: int = 250) -> Scenario:
    return build_scenario(
        name=f"scale-{scale:.2f}",
        topology_config=TopologyConfig(
            seed=seed,
            n_pops=max(4, round(25 * scale)),
            n_tier1=max(2, round(5 * scale)),
            n_transit=max(2, round(12 * scale)),
            n_regional=max(4, round(60 * scale)),
            n_stub=max(20, round(300 * scale)),
        ),
        ug_config=UserGroupConfig(seed=seed + 1, n_ugs=n_ugs),
    )


def _prefixes_for_targets(
    scenario: Scenario,
    targets: Sequence[float],
    max_budget: int,
    d_reuse_km: float = 3000.0,
) -> List[Optional[int]]:
    """Smallest budget whose estimated benefit reaches each target fraction.

    Fractions are relative to the solver's own full-budget achievement, so
    the metric isolates *how fast* the budget buys benefit.
    """
    orchestrator = PainterOrchestrator(
        scenario,
        OrchestratorConfig(prefix_budget=max_budget, d_reuse_km=d_reuse_km),
    )
    orchestrator.solve(record_curve=True)
    curve = orchestrator.budget_curve
    if not curve:
        return [None] * len(targets)
    final = curve[-1].estimated_benefit
    results: List[Optional[int]] = []
    for target in targets:
        needed: Optional[int] = None
        for point in curve:
            if final > 0 and point.estimated_benefit >= target * final:
                needed = point.prefixes_used
                break
        results.append(needed)
    return results


def run_fig15a(
    scales: Sequence[float] = DEFAULT_SCALES,
    max_budget: int = 30,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig15a",
        title="Prefixes required vs deployment size",
        columns=["scale", "n_peerings", "prefixes_90pct", "prefixes_95pct", "prefixes_99pct"],
    )
    for scale in scales:
        scenario = _scaled_scenario(scale, seed=seed)
        needed = _prefixes_for_targets(scenario, BENEFIT_TARGETS, max_budget)
        result.add_row(
            scale,
            len(scenario.deployment),
            *(n if n is not None else -1 for n in needed),
        )
    result.add_note("-1 marks targets not reached within the budget cap")
    return result


def run_fig15b(
    scenario: Optional[Scenario] = None,
    d_reuse_sweep_km: Sequence[float] = DEFAULT_D_REUSE_SWEEP_KM,
    max_budget: int = 30,
) -> ExperimentResult:
    from repro.scenario import prototype_scenario

    scenario = scenario or prototype_scenario(seed=0, n_ugs=250)
    result = ExperimentResult(
        experiment_id="fig15b",
        title="D_reuse tradeoff: required prefixes vs benefit uncertainty",
        columns=["d_reuse_km", "prefixes_99pct", "uncertainty_frac", "reuse_factor"],
    )
    total_possible = scenario.total_possible_benefit()
    for d_reuse in d_reuse_sweep_km:
        orchestrator = PainterOrchestrator(
            scenario,
            OrchestratorConfig(prefix_budget=max_budget, d_reuse_km=d_reuse),
        )
        config = orchestrator.solve(record_curve=True)
        curve = orchestrator.budget_curve
        final = curve[-1] if curve else None
        needed = -1
        if final is not None and final.estimated_benefit > 0:
            for point in curve:
                if point.estimated_benefit >= 0.99 * final.estimated_benefit:
                    needed = point.prefixes_used
                    break
        uncertainty = 0.0
        if final is not None and total_possible > 0:
            uncertainty = (final.upper_benefit - final.estimated_benefit) / total_possible
        result.add_row(d_reuse, needed, uncertainty, config.reuse_factor())
    return result
