"""Fig. 8: the deployability/precision landscape, quantified.

The paper's Figure 8 is a qualitative scatter (deployability vs precision);
this reproduction backs each bucket with numbers this library actually
measures:

* **precision** — the share of traffic a mechanism controls at sub-0.1%
  granularity (Fig. 9a), how many paths it can choose among (Fig. 11a), and
  how fast it reacts to failure (Fig. 10);
* **deployability** — who must change for the mechanism to work, as an
  ordinal requirement level.
"""

from __future__ import annotations

from typing import Optional

from repro.dns.resolvers import ResolverAssignment
from repro.experiments.harness import ExperimentResult
from repro.scenario import Scenario
from repro.steering.granularity import GranularityAnalysis
from repro.steering.resilience import ResilienceAnalysis
from repro.traffic_manager.failover import default_fig10_paths, run_failover
from repro.util import percentile

#: Ordinal deployment requirements, most deployable first.
DEPLOYABILITY = {
    "anycast": "none (cloud only)",
    "dns": "none (cloud only)",
    "bgp_tuning": "none (cloud only)",
    "sdwan": "enterprise device",
    "painter": "cloud-edge stack",
    "mptcp_client": "every client app/OS",
    "isp_collaboration": "every ISP",
    "future_internet": "new Internet",
}


def run_fig8(scenario: Optional[Scenario] = None) -> ExperimentResult:
    if scenario is None:
        from repro.scenario import tiny_scenario

        scenario = tiny_scenario(seed=3)
    resolvers = ResolverAssignment(scenario)
    granularity = GranularityAnalysis(scenario, resolvers).analyze_all()
    resilience = ResilienceAnalysis(scenario)
    comparisons = resilience.compare_all()
    failover = run_failover(default_fig10_paths())

    median_sdwan_paths = percentile(
        sorted(c.sdwan_paths for c in comparisons), 0.5
    )
    median_painter_paths = percentile(
        sorted(c.painter_best_paths for c in comparisons), 0.5
    )

    result = ExperimentResult(
        experiment_id="fig8",
        title="Deployability vs precision, quantified per mechanism",
        columns=[
            "mechanism",
            "requires",
            "fine_control_share",
            "paths_median",
            "failover_s",
        ],
    )
    fine = {name: g.share_finer_than(0.001) for name, g in granularity.items()}
    result.add_row("anycast", DEPLOYABILITY["anycast"], 0.0, 1, failover.anycast_loss_s)
    result.add_row(
        "dns",
        DEPLOYABILITY["dns"],
        fine["dns"],
        1,
        failover.dns_downtime_s,
    )
    result.add_row(
        "bgp_tuning",
        DEPLOYABILITY["bgp_tuning"],
        fine["bgp"],
        1,
        failover.anycast_reconvergence_s,
    )
    result.add_row(
        "sdwan",
        DEPLOYABILITY["sdwan"],
        1.0,  # the device steers its own flows
        median_sdwan_paths,
        failover.painter_downtime_ms / 1000.0,  # same local detection speed
    )
    result.add_row(
        "painter",
        DEPLOYABILITY["painter"],
        fine["painter"],
        median_painter_paths,
        failover.painter_downtime_ms / 1000.0,
    )
    result.add_note(
        "fine_control_share: traffic steerable at units below 0.1% of a PoP "
        "(Fig. 9a); paths_median: per-UG selectable paths (Fig. 11a); "
        "failover_s: reaction to a path failure (Fig. 10)"
    )
    result.add_note(
        "MPTCP clients / ISP collaboration / future Internets reach PAINTER-"
        "level precision but require "
        + ", ".join(
            DEPLOYABILITY[name]
            for name in ("mptcp_client", "isp_collaboration", "future_internet")
        )
    )
    return result
