"""Continuous-operation experiment: the controller daemon under churn.

Runs the :class:`repro.controller.PainterController` over a seeded
synthetic delta stream (volume churn, peering flaps, a PoP outage from a
fault schedule) three ways and compares them:

* **uninterrupted** — the reference run, start to finish;
* **kill/resume** — the same run stopped cold mid-stream and restarted
  from its durable checkpoint, to demonstrate crash recovery converges
  to the identical configuration and journal;
* **cold-only** — warm-starting disabled, to measure what the memoized
  replay actually saves per iteration.

The result table is one row per iteration of the reference run (mode,
deltas applied, dirty peerings, reused vs fresh marginal evaluations,
realized benefit); the notes carry the recovery-equivalence verdicts and
the aggregate warm-start reuse rate.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import List, Optional

from repro.core.orchestrator import OrchestratorConfig
from repro.experiments.harness import ExperimentResult
from repro.faults.events import PopOutage
from repro.faults.schedule import FaultSchedule
from repro.scenario import tiny_scenario


def _build_deltas(scenario, iterations: int, seed: int):
    # Imported here (not at module level): repro.controller pulls in
    # repro.io, which needs repro.experiments.harness — a module-level
    # import would close that cycle during package init.
    from repro.controller import deltas_from_fault_schedule, synthetic_deltas

    deltas = synthetic_deltas(scenario, iterations=iterations, seed=seed)
    # Fold in a scheduled PoP outage so the fault-schedule path is
    # exercised too: dark for two iteration intervals, then healed.
    pop = sorted(p.name for p in scenario.deployment.pops)[0]
    schedule = FaultSchedule(
        [PopOutage(start_s=120.0, pop_name=pop, duration_s=120.0)]
    )
    return sorted(
        deltas + deltas_from_fault_schedule(schedule), key=lambda d: d.at_s
    )


def _run(scenario, deltas, directory, *, warm: bool, max_iterations=None):
    from repro.controller import ControllerConfig, PainterController

    # observe=False: a measurement round grows the learned set, which
    # (correctly) dirties most peerings and defeats memo reuse — this
    # experiment isolates the delta-driven re-solve path the warm start
    # exists for.
    controller = PainterController(
        scenario,
        OrchestratorConfig(prefix_budget=4),
        ControllerConfig(
            checkpoint_dir=directory,
            warm_start=warm,
            verify_every=3,
            observe=False,
            max_iterations=max_iterations,
        ),
        deltas,
    )
    try:
        return controller.run(), controller.orchestrator
    finally:
        controller.close()


def run_controller(
    iterations: int = 6, seed: int = 0, budget: int = 4
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="controller",
        title="continuous operation: warm-start re-solve under churn",
        columns=(
            "iteration", "mode", "reused evals", "fresh evals",
            "realized benefit",
        ),
    )
    with tempfile.TemporaryDirectory() as root:
        root = Path(root)

        # Reference: uninterrupted run.
        scenario = tiny_scenario(seed=3)
        deltas = _build_deltas(scenario, iterations, seed)
        reference, _ = _run(scenario, deltas, root / "ref", warm=True)

        reused_total = 0
        fresh_total = 0
        for entry in reference.timeline:
            result.add_row(
                entry["iteration"],
                entry["mode"],
                entry.get("reused_evals", 0),
                entry.get("fresh_evals", 0),
                entry.get("realized_benefit", 0.0),
            )
            reused_total += entry.get("reused_evals", 0)
            fresh_total += entry.get("fresh_evals", 0)
        evals = reused_total + fresh_total
        if evals:
            result.add_note(
                f"warm-start reuse: {reused_total}/{evals} marginal "
                f"evaluations memoized ({100 * reused_total / evals:.1f}%)"
            )

        # Kill/resume: stop after the stream's midpoint, restart fresh.
        half = max(1, reference.iterations_run // 2)
        scenario = tiny_scenario(seed=3)
        deltas = _build_deltas(scenario, iterations, seed)
        _run(scenario, deltas, root / "kill", warm=True, max_iterations=half)
        scenario = tiny_scenario(seed=3)
        deltas = _build_deltas(scenario, iterations, seed)
        resumed, _ = _run(scenario, deltas, root / "kill", warm=True)
        configs_match = resumed.final_config == reference.final_config
        journals_match = (
            (root / "ref" / "journal.jsonl").read_bytes()
            == (root / "kill" / "journal.jsonl").read_bytes()
        )
        result.add_note(
            f"kill after iteration {half - 1} / resume: final config "
            f"{'identical' if configs_match else 'DIVERGED'}, journal "
            f"{'byte-identical' if journals_match else 'DIVERGED'}"
        )

        # Cold-only control: same stream with warm-starting disabled.
        scenario = tiny_scenario(seed=3)
        deltas = _build_deltas(scenario, iterations, seed)
        cold, _ = _run(scenario, deltas, root / "cold", warm=False)
        result.add_note(
            f"cold-only control reaches the "
            f"{'same' if cold.final_config == reference.final_config else 'DIFFERENT'}"
            f" final config with zero memoized evaluations"
        )
        result.add_note(
            f"{reference.deltas_applied} deltas applied, "
            f"{reference.degradations} degradations, "
            f"{reference.divergences} divergences"
        )
    return result
