"""Fig. 12 (Appendix B): geolocation uncertainty vs coverage and accuracy.

Sweeping the allowed target-geolocation uncertainty GP:

* **12a** — volume-weighted coverage of policy-compliant (UG, ingress)
  pairs that have a measurable target (knee around 400 km; ~80% at 450 km);
* **12b** — median absolute error of the latency estimates (≈2 ms at the
  chosen 450 km operating point, growing with uncertainty).

Per the paper's metric, ingresses that cannot possibly beat anycast for a
UG (speed-of-light bound above the UG's anycast latency) are excluded
before computing coverage.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.experiments.harness import ExperimentResult
from repro.measurement.geolocation import GeolocationCatalog, GeolocationConfig
from repro.scenario import Scenario, prototype_scenario
from repro.topology.geo import fiber_rtt_ms, haversine_km, speed_of_light_rtt_ms
from repro.util import percentile

DEFAULT_UNCERTAINTIES_KM: Sequence[float] = (100, 200, 300, 400, 450, 500, 600, 700)


def _eligible_pairs(scenario: Scenario) -> List[Tuple[int, int, float]]:
    """(ug_id, peering_id, weight) for pairs that could beat anycast."""
    pairs: List[Tuple[int, int, float]] = []
    for ug in scenario.user_groups:
        anycast = scenario.anycast_latency_ms(ug)
        useful = []
        for peering in scenario.catalog.ingresses(ug):
            bound = speed_of_light_rtt_ms(
                haversine_km(ug.location, peering.pop.location)
            )
            if bound < anycast:
                useful.append(peering.peering_id)
        if not useful:
            continue
        weight = ug.volume / len(useful)
        pairs.extend((ug.ug_id, pid, weight) for pid in useful)
    return pairs


def run_fig12(
    scenario: Optional[Scenario] = None,
    uncertainties_km: Sequence[float] = DEFAULT_UNCERTAINTIES_KM,
    geo_config: Optional[GeolocationConfig] = None,
) -> ExperimentResult:
    scenario = scenario or prototype_scenario(seed=0, n_ugs=300)
    catalog = GeolocationCatalog(geo_config)
    deployment = scenario.deployment
    by_id = {ug.ug_id: ug for ug in scenario.user_groups}
    pairs = _eligible_pairs(scenario)
    total_weight = sum(w for _ug, _pid, w in pairs)

    result = ExperimentResult(
        experiment_id="fig12",
        title="Geolocation uncertainty: target coverage and estimate accuracy",
        columns=["uncertainty_km", "coverage_frac", "median_abs_error_ms"],
    )
    for gp in uncertainties_km:
        covered_weight = 0.0
        errors: List[float] = []
        for ug_id, pid, weight in pairs:
            peering = deployment.peering(pid)
            if not catalog.has_target_within(peering, gp):
                continue
            covered_weight += weight
            error = catalog.estimate_error_ms(
                by_id[ug_id], peering, scenario.latency_model, gp
            )
            if error is not None:
                errors.append(error)
        coverage = covered_weight / total_weight if total_weight else 0.0
        median_error = percentile(sorted(errors), 0.5) if errors else 0.0
        result.add_row(gp, coverage, median_error)
    result.add_note(
        "coverage weights each UG's volume evenly across its plausibly-"
        "beneficial policy-compliant ingresses (Appendix B)"
    )
    return result
