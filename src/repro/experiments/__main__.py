"""Run every experiment and print its table: ``python -m repro.experiments``.

Pass experiment ids to run a subset, and ``--jobs N`` to fan independent
experiments out over worker processes, e.g.::

    python -m repro.experiments fig3 fig10
    python -m repro.experiments --jobs 4
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.experiments import ALL_EXPERIMENTS


def _experiment_kwargs(runner, strategies: list) -> dict:
    """Forward ``--strategy`` only to experiments whose signature accepts it."""
    if not strategies:
        return {}
    if "strategies" in inspect.signature(runner).parameters:
        return {"strategies": tuple(strategies)}
    return {}


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments", description="run reproduction experiments"
    )
    parser.add_argument(
        "ids", nargs="*", help="experiment ids (default: all registered)"
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = serial in this process)",
    )
    parser.add_argument(
        "--strategy", action="append", default=[], dest="strategies",
        help="add a named steering comparator (repeatable, e.g. --strategy "
        "communities); forwarded to experiments that accept one",
    )
    args = parser.parse_args(argv)
    requested = args.ids or list(ALL_EXPERIMENTS)
    unknown = [name for name in requested if name not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {list(ALL_EXPERIMENTS)}")
        return 2

    if args.strategies and args.jobs > 1:
        print("--strategy implies serial execution; ignoring --jobs")
        args.jobs = 1

    if args.jobs > 1:
        from repro.experiments.harness import run_experiments_parallel

        start = time.time()
        results = run_experiments_parallel(requested, jobs=args.jobs)
        elapsed = time.time() - start
        for name in requested:
            _print_result(name, results[name])
        print(f"({len(requested)} experiments in {elapsed:.1f} s across {args.jobs} jobs)")
        return 0

    for name in requested:
        start = time.time()
        runner = ALL_EXPERIMENTS[name]
        result = runner(**_experiment_kwargs(runner, args.strategies))
        elapsed = time.time() - start
        _print_result(name, result)
        print(f"({name} ran in {elapsed:.1f} s)\n")
    return 0


def _print_result(name: str, result) -> None:
    print(result.render())
    if "strategy" in result.columns and "budget_prefixes" in result.columns:
        from repro.experiments.plotting import plot_benefit_curves

        candidates = ("benefit_frac", "avg_improvement_ms", "estimated_frac")
        value = next((c for c in candidates if c in result.columns), None)
        if value is not None:
            print()
            print(plot_benefit_curves(result, value_column=value))


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
