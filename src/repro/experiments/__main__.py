"""Run every experiment and print its table: ``python -m repro.experiments``.

Pass experiment ids to run a subset, e.g.::

    python -m repro.experiments fig3 fig10
"""

from __future__ import annotations

import sys
import time

from repro.experiments import ALL_EXPERIMENTS


def main(argv: list) -> int:
    requested = argv or list(ALL_EXPERIMENTS)
    unknown = [name for name in requested if name not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {list(ALL_EXPERIMENTS)}")
        return 2
    for name in requested:
        start = time.time()
        result = ALL_EXPERIMENTS[name]()
        elapsed = time.time() - start
        print(result.render())
        if "strategy" in result.columns and "budget_prefixes" in result.columns:
            from repro.experiments.plotting import plot_benefit_curves

            candidates = ("benefit_frac", "avg_improvement_ms", "estimated_frac")
            value = next((c for c in candidates if c in result.columns), None)
            if value is not None:
                print()
                print(plot_benefit_curves(result, value_column=value))
        print(f"({name} ran in {elapsed:.1f} s)\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
