"""Fig. 7: do advertisement configurations go stale?

Solve once, then replay a month of latency dynamics (drift plus day-scale
peering degradations) against the *fixed* configuration.  Two client
behaviours are compared:

* **dynamic prefix choices** — the Traffic Manager re-measures and re-picks
  the best prefix each day (solid lines; paper: ~95% benefit retained);
* **static prefix choices** — each UG keeps the prefix it chose on day 0
  (dashed lines; paper: ~10% worse), isolating how much of the resilience
  comes from the configuration offering good *backup* paths.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.benefit import best_prefix_choices, realized_benefit
from repro.core.orchestrator import OrchestratorConfig, PainterOrchestrator
from repro.experiments.harness import ExperimentResult, config_prefix_subset
from repro.scenario import Scenario, prototype_scenario

DEFAULT_BUDGETS: Sequence[int] = (2, 8, 25)
DEFAULT_DAYS: Sequence[int] = (0, 3, 7, 14, 21, 28)


def run_fig7(
    scenario: Optional[Scenario] = None,
    budgets: Sequence[int] = DEFAULT_BUDGETS,
    days: Sequence[int] = DEFAULT_DAYS,
    learning_iterations: int = 2,
    strategies: Sequence[str] = (),
) -> ExperimentResult:
    scenario = scenario or prototype_scenario(seed=0, n_ugs=300)
    orchestrator = PainterOrchestrator(
        scenario, OrchestratorConfig(prefix_budget=max(budgets))
    )
    if learning_iterations > 1:
        orchestrator.learn(iterations=learning_iterations - 1)
    full_config = orchestrator.solve()

    result = ExperimentResult(
        experiment_id="fig7",
        title="Benefit retention over a month for a fixed configuration",
        columns=["budget_prefixes", "day", "mode", "benefit_frac"],
    )

    for budget in budgets:
        config = config_prefix_subset(full_config, budget)
        static_choices = best_prefix_choices(scenario, config, day=0)
        for day in days:
            # The paper recalculates "the fraction of benefit we achieve"
            # against the *updated* latencies, so the denominator moves too.
            possible = scenario.total_possible_benefit(day=day)
            dynamic = realized_benefit(scenario, config, day=day)
            static = realized_benefit(
                scenario, config, day=day, prefix_choice=static_choices
            )
            result.add_row(budget, day, "dynamic", dynamic / possible)
            result.add_row(budget, day, "static", static / possible)

    if "communities" in strategies:
        from repro.steering.communities import (
            communities_benefit,
            communities_budget_configs,
            communities_choices,
        )

        by_budget = communities_budget_configs(scenario, budgets)
        for budget in budgets:
            announcements = by_budget[budget]
            static_choice = communities_choices(scenario, announcements, day=0)
            for day in days:
                possible = scenario.total_possible_benefit(day=day)
                dynamic = communities_benefit(scenario, announcements, day=day)
                static = communities_benefit(
                    scenario, announcements, day=day, choices=static_choice
                )
                result.add_row(budget, day, "communities-dynamic", dynamic / possible)
                result.add_row(budget, day, "communities-static", static / possible)

    result.add_note(
        "benefit_frac is relative to the same-day total possible benefit; "
        "dynamic = TM re-picks prefixes daily, static = day-0 prefix pinned"
    )
    if "communities" in strategies:
        result.add_note(
            "communities-* rows: action-community steering with the same "
            "budget of announcement groups (dynamic = per-day best group, "
            "static = day-0 group pinned)"
        )
    return result
