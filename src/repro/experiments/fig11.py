"""Fig. 11: path/PoP exposure and AS-avoidance, PAINTER vs SD-WAN.

Shape targets: PAINTER exposes on the order of 20+ more paths than SD-WAN
for the median UG (and far more under the all-policy-compliant upper bound),
a few more nearby PoPs, and can fully avoid the default path's intermediate
ASes for a larger fraction of UGs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.harness import ExperimentResult
from repro.scenario import Scenario, prototype_scenario
from repro.steering.resilience import (
    AvoidanceResult,
    ExposureComparison,
    ResilienceAnalysis,
    fraction_fully_avoidable,
)
from repro.util import percentile


def run_fig11a(scenario: Optional[Scenario] = None) -> ExperimentResult:
    scenario = scenario or prototype_scenario(seed=0, n_ugs=400)
    analysis = ResilienceAnalysis(scenario)
    comparisons = analysis.compare_all()

    result = ExperimentResult(
        experiment_id="fig11a",
        title="Exposed paths/PoPs: PAINTER minus SD-WAN (per-UG distribution)",
        columns=["metric", "p10", "p25", "p50", "p75", "p90"],
    )
    for metric, values in (
        ("best_paths_diff", sorted(c.best_paths_difference for c in comparisons)),
        ("all_paths_diff", sorted(c.all_paths_difference for c in comparisons)),
        ("pops_diff", sorted(c.pops_difference for c in comparisons)),
        ("sdwan_paths", sorted(c.sdwan_paths for c in comparisons)),
        ("painter_best_paths", sorted(c.painter_best_paths for c in comparisons)),
    ):
        result.add_row(
            metric,
            percentile(values, 0.10),
            percentile(values, 0.25),
            percentile(values, 0.50),
            percentile(values, 0.75),
            percentile(values, 0.90),
        )
    return result


def run_fig11b(scenario: Optional[Scenario] = None) -> ExperimentResult:
    scenario = scenario or prototype_scenario(seed=0, n_ugs=400)
    analysis = ResilienceAnalysis(scenario)
    avoidance = analysis.avoidance_all()

    result = ExperimentResult(
        experiment_id="fig11b",
        title="Fraction of default-path ASes avoidable (CDF summary)",
        columns=["system", "p10", "p25", "p50", "fraction_fully_avoidable"],
    )
    painter_vals = sorted(a.painter_avoidable_fraction for a in avoidance)
    sdwan_vals = sorted(a.sdwan_avoidable_fraction for a in avoidance)
    result.add_row(
        "painter",
        percentile(painter_vals, 0.10),
        percentile(painter_vals, 0.25),
        percentile(painter_vals, 0.50),
        fraction_fully_avoidable(avoidance, painter=True),
    )
    result.add_row(
        "sdwan",
        percentile(sdwan_vals, 0.10),
        percentile(sdwan_vals, 0.25),
        percentile(sdwan_vals, 0.50),
        fraction_fully_avoidable(avoidance, painter=False),
    )
    result.add_note(
        "fraction_fully_avoidable: share of UGs with an alternate path avoiding "
        "every intermediate AS of the default path (paper: 90.7% vs 69.5%)"
    )
    return result
