"""Experiment wrapper for the soak harness: a short simulated day.

Runs :func:`repro.soak.run_soak` on a sized-down configuration (tiny
preset, a simulated day split into a handful of windows) and renders the
per-window SLO accounting as an :class:`ExperimentResult` for the report
generator.  The full-scale azure gate lives in
``benchmarks/test_bench_soak.py``; this entry is the auditable record.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.harness import ExperimentResult


def run_soak_experiment(
    scenario=None,
    *,
    windows: int = 8,
    arrivals_per_window: int = 4_000,
    seed: int = 0,
    preset: str = "tiny",
) -> ExperimentResult:
    """Entry point used by the CLI, the report generator, and tests."""
    # Lazy: repro.soak pulls repro.controller -> repro.io -> this package.
    from repro.soak import SoakConfig, run_soak

    cfg = SoakConfig(
        preset=preset,
        seed=seed,
        windows=windows,
        window_s=86_400.0 / windows,
        arrivals_per_window=arrivals_per_window,
        storm_regions=1,
        flash_crowds=1,
    )
    soak = run_soak(cfg, scenario=scenario)
    result = ExperimentResult(
        experiment_id="soak",
        title="Soak: simulated day with diurnal load, storms, SLO accounting",
        columns=[
            "window",
            "offered",
            "served",
            "unroutable",
            "shed",
            "down_ugs",
            "switches",
            "remaps",
            "accounting_errors",
        ],
    )
    for row in soak.ledger.window_rows:
        result.add_row(
            row["window"],
            row["offered"],
            row["served"],
            row["unroutable"],
            row["shed"],
            row["down_ugs"],
            row["switches"],
            row["remaps"],
            row["accounting_errors"],
        )
    summary = soak.summary()
    p99 = summary["fleet_p99_ms"]
    result.add_note(
        f"{cfg.preset} preset, seed {cfg.seed}: {summary['windows']} windows "
        f"x {cfg.window_s:g}s simulated, {summary['offered']:,} flows offered, "
        f"{summary['accounting_errors']} accounting errors"
    )
    result.add_note(
        "fleet p99 "
        + ("n/a" if p99 is None else f"{p99:.1f} ms (bucketed)")
        + f", {summary['total_downtime_s']:g}s UG-downtime across "
        f"{summary['ugs_with_downtime']} UGs, "
        f"{summary['budget_violations']} failover-budget violations"
    )
    result.add_note(
        f"data plane ({cfg.plane}): {soak.flows_per_s:,.0f} flows/s steered; "
        f"{soak.flows_moved} flows failed over in {soak.remaps} remaps"
    )
    result.add_note(f"ledger fingerprint {soak.ledger.fingerprint()}")
    for note in soak.notes:
        result.add_note(note)
    return result
