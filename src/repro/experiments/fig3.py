"""Fig. 3: traffic sent after DNS record expiration, per cloud.

Paper shape: for Cloud A, 80% of bytes are still sent at least five minutes
after the directing record's TTL expired; the other two clouds see ~20% of
bytes at least a minute late.  Late traffic splits roughly 2:1 between flows
that outlived their record and flows started from cached addresses.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.dns.trace import (
    CLOUD_PROFILES,
    CloudProfile,
    bytes_yet_to_be_sent_curve,
    extant_vs_cached_ratio,
    generate_trace,
)
from repro.experiments.harness import ExperimentResult

#: Fig. 3's x-axis sample points, seconds relative to record expiration.
DEFAULT_OFFSETS_S = (-60.0, -1.0, 0.0, 1.0, 60.0, 300.0, 3600.0)


def run_fig3(
    n_flows: int = 4000,
    seed: int = 0,
    offsets_s: Sequence[float] = DEFAULT_OFFSETS_S,
    profiles: Optional[Sequence[CloudProfile]] = None,
) -> ExperimentResult:
    profiles = list(profiles) if profiles is not None else list(CLOUD_PROFILES)
    result = ExperimentResult(
        experiment_id="fig3",
        title="Bytes yet to be sent vs time since DNS record expiration",
        columns=["cloud", "offset_s", "bytes_yet_to_be_sent_frac"],
    )
    for profile in profiles:
        flows = generate_trace(profile, n_flows=n_flows, seed=seed)
        for offset, fraction in bytes_yet_to_be_sent_curve(flows, offsets_s):
            result.add_row(profile.name, offset, fraction)
        result.add_note(
            f"{profile.name}: extant-flow to cached-start late-byte ratio = "
            f"{extant_vs_cached_ratio(flows):.2f} (paper: roughly 2:1 for Cloud A)"
        )
    return result
