"""GreedyGap: Algorithm 1's measured optimality gap against the exact ILP.

For a ladder of instance sizes this experiment runs the real Algorithm-1
greedy with reuse disabled (so greedy and ILP solve the *same* budget-k
selection problem), solves that problem exactly with
:func:`repro.optimality.solve_ilp`, computes the LP-relaxation upper bound,
and reports benefit gaps plus solve-time scaling — the tripwire ROADMAP
item 2 asked for, in the shape of SNIPPETS.md's NetworksFinal sweeps
(formulations across instance sizes with solve-time growth curves).

Soundness is asserted inline on every row: ``greedy <= lp_bound`` and
``ilp <= lp_bound`` (within float round-off), and on brute-forceable
instances the ILP value must match exhaustive enumeration bit-for-bit.
"""

from __future__ import annotations

import math
import time
from typing import Optional, Sequence, Tuple

from repro.core import BenefitEvaluator, OrchestratorConfig, PainterOrchestrator, RoutingModel
from repro.experiments.harness import ExperimentResult
from repro.optimality import (
    DEFAULT_REL_TOL,
    SelectionProblem,
    brute_force,
    greedy_selection,
    lp_bound,
    solve_ilp,
)
from repro.scenario import Scenario, azure_scenario, prototype_scenario, tiny_scenario

__all__ = ["run_greedy_gap", "default_ladder"]

#: Budgets swept per instance by default.
DEFAULT_BUDGETS: Tuple[int, ...] = (4, 8)

#: Don't brute-force cross-check instances with more candidate sets than
#: this (the experiment's cap is tighter than the solver's hard cap so the
#: sweep stays interactive).
BRUTE_FORCE_CHECK_LIMIT = 150_000


def default_ladder() -> Sequence[Tuple[str, Scenario]]:
    """Instance-size ladder: tiny oracle up through an azure subset."""
    return (
        ("tiny", tiny_scenario(seed=3)),
        ("prototype-100", prototype_scenario(seed=0, n_ugs=100)),
        ("prototype-200", prototype_scenario(seed=0, n_ugs=200)),
        ("azure-200", azure_scenario(seed=0, n_ugs=200)),
    )


def _greedy_no_reuse(scenario: Scenario, budget: int) -> Tuple[float, float]:
    """Algorithm 1 with reuse disabled: (expected benefit, wall seconds)."""
    orchestrator = PainterOrchestrator(
        scenario,
        OrchestratorConfig(prefix_budget=budget, allow_reuse=False),
    )
    started = time.perf_counter()
    config = orchestrator.solve()
    elapsed = time.perf_counter() - started
    return orchestrator.evaluator.expected_benefit(config), elapsed


def run_greedy_gap(
    scenario: Optional[Scenario] = None,
    budgets: Sequence[int] = DEFAULT_BUDGETS,
    backend: str = "auto",
    time_limit_s: Optional[float] = 120.0,
    run_orchestrator: bool = True,
) -> ExperimentResult:
    """Greedy-vs-ILP benefit gap and solve-time scaling.

    With ``scenario`` the sweep covers just that instance; otherwise the
    :func:`default_ladder` of sizes runs.  ``run_orchestrator=False`` swaps
    the real Algorithm-1 greedy for the fast matrix-level mirror
    (:func:`repro.optimality.greedy_selection`) — same selection semantics,
    useful where orchestrator solves would dominate the runtime.
    """
    instances = (
        [(f"custom-{len(scenario.user_groups)}", scenario)]
        if scenario is not None
        else list(default_ladder())
    )
    result = ExperimentResult(
        experiment_id="optimality",
        title="GreedyGap: Algorithm 1 vs exact ILP vs LP bound",
        columns=[
            "scenario",
            "n_ugs",
            "n_peerings",
            "budget",
            "greedy_benefit",
            "ilp_benefit",
            "lp_bound",
            "gap_pct",
            "greedy_time_s",
            "ilp_time_s",
            "lp_time_s",
            "ilp_status",
        ],
    )
    brute_checked = 0
    for name, inst in instances:
        evaluator = BenefitEvaluator(inst, RoutingModel(inst.catalog))
        matrix = evaluator.benefit_matrix()
        for budget in budgets:
            problem = SelectionProblem.build(matrix, budget)
            if run_orchestrator:
                greedy_value, greedy_time = _greedy_no_reuse(inst, budget)
            else:
                started = time.perf_counter()
                greedy_value, _ = greedy_selection(problem)
                greedy_time = time.perf_counter() - started
            ilp = solve_ilp(
                problem, backend=backend, time_limit_s=time_limit_s
            )
            lp = lp_bound(problem)
            slack = lp.value * DEFAULT_REL_TOL + 1e-9
            if greedy_value > lp.value + slack:
                raise AssertionError(
                    f"{name} k={budget}: greedy {greedy_value!r} exceeds "
                    f"LP bound {lp.value!r}"
                )
            if ilp.value > lp.value + slack:
                raise AssertionError(
                    f"{name} k={budget}: ILP {ilp.value!r} exceeds "
                    f"LP bound {lp.value!r}"
                )
            n, k = matrix.n_peerings, problem.budget
            if n and math.comb(n, min(k, n)) <= BRUTE_FORCE_CHECK_LIMIT:
                brute_value, _ = brute_force(problem)
                if brute_value != ilp.value:
                    raise AssertionError(
                        f"{name} k={budget}: ILP {ilp.value!r} != brute "
                        f"force {brute_value!r}"
                    )
                brute_checked += 1
            gap_pct = (
                (ilp.value - greedy_value) / ilp.value * 100.0
                if ilp.value > 0.0
                else 0.0
            )
            result.add_row(
                name,
                len(inst.user_groups),
                matrix.n_peerings,
                budget,
                greedy_value,
                ilp.value,
                lp.value,
                gap_pct,
                greedy_time,
                ilp.solve_time_s,
                lp.solve_time_s,
                ilp.status,
            )
    result.add_note(
        "greedy = Algorithm 1 with reuse disabled (same feasible set as the "
        "ILP); gap_pct = (ilp - greedy) / ilp."
        if run_orchestrator
        else "greedy = matrix-level greedy mirror (run_orchestrator=False)."
    )
    result.add_note(
        f"soundness held on every row (benefit <= LP bound, rel tol "
        f"{DEFAULT_REL_TOL:g}); ILP matched exhaustive enumeration "
        f"bit-for-bit on {brute_checked} brute-forceable instance(s)."
    )
    return result
