"""Communities-vs-PAINTER comparator: coverage and benefit at equal budgets.

Action communities (prepend / selective announce / MED, Shao et al.,
arXiv:1511.08336) are the classic operator answer to ingress steering; the
question this table answers is how far they get relative to PAINTER's
selective prefix advertisements when both spend the *same* announcement
budget, against the anycast floor and the one-prefix-per-peering
("unicast every ingress") ceiling.

Two metrics per (strategy, budget):

* ``benefit_frac`` — Eq. 1 realized benefit as a fraction of the total
  possible (ground-truth routing, anycast fallback);
* ``coverage_frac`` — the volume fraction of UGs whose realized ingress
  under the strategy is their true best policy-compliant peering.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.advertisement import AdvertisementConfig
from repro.core.baselines import one_per_peering
from repro.core.benefit import realized_benefit
from repro.experiments.harness import ExperimentResult, budget_grid
from repro.scenario import Scenario, prototype_scenario
from repro.steering.communities import (
    best_target_peering,
    communities_benefit,
    communities_budget_configs,
    coverage_of_best_ingress,
)


def _config_coverage(scenario: Scenario, config: AdvertisementConfig) -> float:
    """Volume fraction whose realized best-prefix ingress is their best peering."""
    routing = scenario.routing
    covered = 0.0
    total = 0.0
    for ug in scenario.user_groups:
        total += ug.volume
        target = best_target_peering(scenario, ug)
        if target is None:
            continue
        anycast = scenario.anycast_latency_ms(ug)
        best_latency = anycast
        best_pid: Optional[int] = None
        for prefix in config.prefixes:
            advertised = config.peerings_for(prefix)
            latency = routing.latency_for(ug, advertised)
            if latency is not None and latency < best_latency:
                ingress = routing.ingress_for(ug, advertised)
                assert ingress is not None
                best_latency = latency
                best_pid = ingress.peering_id
        if best_pid is None:
            anycast_ingress = routing.anycast_ingress(ug)
            best_pid = None if anycast_ingress is None else anycast_ingress.peering_id
        if best_pid == target.peering_id:
            covered += ug.volume
    return 0.0 if total == 0 else covered / total


def _anycast_coverage(scenario: Scenario) -> float:
    covered = 0.0
    total = 0.0
    for ug in scenario.user_groups:
        total += ug.volume
        target = best_target_peering(scenario, ug)
        ingress = scenario.routing.anycast_ingress(ug)
        if target is not None and ingress is not None and ingress.peering_id == target.peering_id:
            covered += ug.volume
    return 0.0 if total == 0 else covered / total


def run_communities(
    scenario: Optional[Scenario] = None,
    max_budget: int = 12,
    budgets: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Coverage-of-best-ingress and benefit curves at matched budgets."""
    scenario = scenario or prototype_scenario(seed=0, n_ugs=300)
    budgets = list(budgets) if budgets is not None else budget_grid(max_budget)
    total_possible = scenario.total_possible_benefit()

    result = ExperimentResult(
        experiment_id="communities",
        title="Community steering vs PAINTER: benefit and best-ingress coverage",
        columns=["strategy", "budget_prefixes", "benefit_frac", "coverage_frac"],
    )

    result.add_row("anycast", 0, 0.0, _anycast_coverage(scenario))

    unicast = one_per_peering(scenario, len(scenario.deployment))
    result.add_row(
        "unicast",
        unicast.prefix_count,
        realized_benefit(scenario, unicast) / total_possible,
        _config_coverage(scenario, unicast),
    )

    from repro.experiments.fig6 import painter_budget_configs

    painter_configs = painter_budget_configs(scenario, budgets)
    for budget in budgets:
        config = painter_configs[budget]
        result.add_row(
            "painter",
            budget,
            realized_benefit(scenario, config) / total_possible,
            _config_coverage(scenario, config),
        )

    by_budget: Dict[int, tuple] = communities_budget_configs(scenario, budgets)
    for budget in budgets:
        announcements = by_budget[budget]
        result.add_row(
            "communities",
            len(announcements),
            communities_benefit(scenario, announcements) / total_possible,
            coverage_of_best_ingress(scenario, announcements),
        )

    result.add_note(f"total possible benefit (weighted ms): {total_possible:.2f}")
    result.add_note(
        "coverage_frac = volume fraction whose realized ingress equals their "
        "best policy-compliant peering; anycast row is the no-TE floor, "
        "unicast row advertises one prefix per peering"
    )
    return result
