"""TrafficReplay: Zipf-weighted UG flow arrivals through an advertisement.

The tentpole load test for the batched Traffic Manager data plane.  One
replay run:

1. solves an advertisement configuration (Algorithm 1) for a preset world;
2. installs it — real /24s, TM-PoPs, prefix directory;
3. gives every user group its own hysteretic selector
   (:class:`~repro.traffic_manager.selection.SelectorBank`) fed from the
   ground-truth latency of each installed prefix as that UG would route to
   it;
4. streams flow-arrival batches through a :class:`DataPlane` — each flow
   belongs to a UG drawn with probability proportional to the UG's traffic
   volume (the generator's Zipf-weighted volumes), so heavy UGs dominate the
   flow mix exactly as in the paper's traffic model;
5. optionally kills the hottest destination prefix mid-run and re-maps its
   flows in one batched failover call.

The per-step flows/s throughput this measures is what the ``tm-bench`` CLI
subcommand and the ``benchmarks/test_bench_tm.py`` gate report.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.installation import Installation, install_configuration
from repro.core.orchestrator import OrchestratorConfig, PainterOrchestrator
from repro.experiments.harness import ExperimentResult
from repro.perf import PERF
from repro.scenario import Scenario, azure_scenario, prototype_scenario, tiny_scenario
from repro.telemetry import TRACER, emit_event
from repro.traffic_manager.dataplane import (
    DataPlane,
    FlowBatch,
    ScalarDataPlane,
    VectorFlowTable,
)
from repro.traffic_manager.selection import SelectorBank

_PRESETS = {
    "tiny": tiny_scenario,
    "prototype": prototype_scenario,
    "azure": azure_scenario,
}


@dataclass(frozen=True)
class ReplayConfig:
    """Parameters of one traffic replay run."""

    preset: str = "tiny"
    seed: int = 0
    #: Flows arriving per step (each step is one measurement round).
    arrivals_per_step: int = 100_000
    steps: int = 5
    prefix_budget: int = 4
    #: Which data plane implementation carries the flows.
    plane: str = "vector"
    mean_flow_bytes: float = 1500.0
    #: Step index (0-based) at which the hottest prefix dies; None = no fault.
    fail_step: Optional[int] = None

    def __post_init__(self) -> None:
        if self.preset not in _PRESETS:
            raise ValueError(f"unknown preset {self.preset!r}; have {sorted(_PRESETS)}")
        if self.plane not in ("vector", "scalar"):
            raise ValueError("plane must be 'vector' or 'scalar'")
        if self.arrivals_per_step < 1:
            raise ValueError("arrivals_per_step must be positive")
        if self.steps < 1:
            raise ValueError("steps must be positive")
        if self.fail_step is not None and not 0 <= self.fail_step < self.steps:
            raise ValueError("fail_step must fall inside the run")

    def make_plane(self) -> DataPlane:
        return VectorFlowTable() if self.plane == "vector" else ScalarDataPlane()


@dataclass
class StepStats:
    """One replay step's outcome."""

    step: int
    admitted: int
    unroutable: int
    live_flows: int
    elapsed_s: float

    @property
    def flows_per_s(self) -> float:
        if self.elapsed_s <= 0:
            return math.inf
        return self.admitted / self.elapsed_s


@dataclass
class ReplayResult:
    """Everything a throughput gate or report needs from one run."""

    config: ReplayConfig
    step_stats: List[StepStats] = field(default_factory=list)
    bytes_by_destination: Dict[str, float] = field(default_factory=dict)
    flows_by_destination: Dict[str, int] = field(default_factory=dict)
    flows_remapped: int = 0
    failed_prefix: Optional[str] = None
    #: UG-volume share steered to each installed prefix (selection census).
    selection_share: Dict[str, float] = field(default_factory=dict)

    @property
    def total_admitted(self) -> int:
        return sum(s.admitted for s in self.step_stats)

    @property
    def peak_live_flows(self) -> int:
        return max((s.live_flows for s in self.step_stats), default=0)

    @property
    def min_flows_per_s(self) -> float:
        return min((s.flows_per_s for s in self.step_stats), default=0.0)

    def to_result(self) -> ExperimentResult:
        result = ExperimentResult(
            experiment_id="replay",
            title="TrafficReplay: batched data-plane steering under UG arrivals",
            columns=("step", "admitted", "unroutable", "live_flows", "kflows_per_s"),
        )
        for stats in self.step_stats:
            result.add_row(
                stats.step,
                stats.admitted,
                stats.unroutable,
                stats.live_flows,
                stats.flows_per_s / 1e3,
            )
        result.add_note(
            f"plane={self.config.plane} preset={self.config.preset} "
            f"peak_live={self.peak_live_flows} remapped={self.flows_remapped}"
        )
        if self.failed_prefix is not None:
            result.add_note(f"failed prefix {self.failed_prefix} at step {self.config.fail_step}")
        return result


def _latency_matrix(
    scenario: Scenario, installation: Installation
) -> Tuple[List[str], np.ndarray]:
    """(prefix cidrs, UG x prefix ground-truth RTT matrix, inf = no route)."""
    cidrs = [p.cidr for p in installation.prefixes]
    matrix = np.full((len(scenario.user_groups), len(cidrs)), math.inf)
    for j, installed in enumerate(installation.prefixes):
        for i, ug in enumerate(scenario.user_groups):
            latency = scenario.routing.latency_for(ug, installed.peering_ids)
            if latency is not None:
                matrix[i, j] = latency
    return cidrs, matrix


def run_traffic_replay(config: Optional[ReplayConfig] = None) -> ReplayResult:
    """Run one replay; see the module docstring for the shape of a run."""
    config = config or ReplayConfig()
    replay_cm = TRACER.span(
        "replay.run", preset=config.preset, plane=config.plane,
        steps=config.steps, arrivals_per_step=config.arrivals_per_step,
    )
    replay_cm.__enter__()
    scenario = _PRESETS[config.preset](seed=config.seed)

    with PERF.timed("replay.solve"):
        orchestrator = PainterOrchestrator(
            scenario, OrchestratorConfig(prefix_budget=config.prefix_budget)
        )
        advertisement = orchestrator.solve()
    installation = install_configuration(scenario, advertisement)

    with PERF.timed("replay.measure"):
        cidrs, latencies = _latency_matrix(scenario, installation)
        bank = SelectorBank()
        # One measurement round per selector warm-up requirement, so the
        # hysteretic selectors settle on their steady-state choice.
        selections = bank.update_matrix(cidrs, latencies)

    volumes = [ug.volume for ug in scenario.user_groups]
    plane = config.make_plane()
    result = ReplayResult(config=config)

    for step in range(config.steps):
        if config.fail_step is not None and step == config.fail_step:
            # Kill the destination carrying the most flows; survivors take
            # over at the next measurement round, pinned flows are re-mapped
            # in one batched failover call per abandoned prefix.
            dests = plane.destinations()
            if dests:
                dead = max(sorted(dests), key=lambda p: dests[p])
                result.failed_prefix = dead
                dead_col = cidrs.index(dead)
                latencies[:, dead_col] = math.inf
                before = dict(selections)
                selections = bank.update_matrix(cidrs, latencies)
                with PERF.timed("replay.failover"):
                    for to_prefix in sorted(
                        {
                            selections[sid]
                            for sid, prev in before.items()
                            if prev == dead and selections[sid] is not None
                        }
                    ):
                        result.flows_remapped += plane.remap(dead, to_prefix)
                emit_event(
                    "prefix_failure",
                    step=step,
                    dead_prefix=dead,
                    flows_remapped=result.flows_remapped,
                )
        batch = FlowBatch.synthesize(
            config.arrivals_per_step,
            seed=config.seed * 7919 + step,
            n_services=len(volumes),
            service_weights=volumes,
            mean_bytes=config.mean_flow_bytes,
        )
        start = time.perf_counter()
        with TRACER.span("replay.step", step=step, arrivals=len(batch)):
            with PERF.timed("replay.step"):
                forwarded = plane.forward(batch, selections, float(step))
        elapsed = time.perf_counter() - start
        PERF.counter("replay.flows_admitted").add(forwarded.admitted)
        stats = StepStats(
            step=step,
            admitted=forwarded.admitted,
            unroutable=forwarded.unroutable,
            live_flows=plane.flow_count(),
            elapsed_s=elapsed,
        )
        if math.isfinite(stats.flows_per_s):
            PERF.histogram("replay.flows_per_s").observe(stats.flows_per_s)
        PERF.gauge("replay.live_flows").set(stats.live_flows)
        result.step_stats.append(stats)

    result.flows_by_destination = plane.destinations()
    result.bytes_by_destination = plane.bytes_by_destination()
    installation.directory.relay_batch(
        result.flows_by_destination, result.bytes_by_destination
    )
    total_volume = sum(volumes) or 1.0
    for sid, prefix in bank.selections().items():
        if prefix is not None:
            result.selection_share[prefix] = (
                result.selection_share.get(prefix, 0.0)
                + scenario.user_groups[sid].volume / total_volume
            )
    replay_cm.__exit__(None, None, None)
    return result


def run_replay() -> ExperimentResult:
    """Registry entry point: a modest replay that exercises every stage."""
    replay = run_traffic_replay(
        ReplayConfig(
            preset="tiny",
            arrivals_per_step=50_000,
            steps=3,
            prefix_budget=3,
            fail_step=2,
        )
    )
    return replay.to_result()
