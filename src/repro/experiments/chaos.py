"""Chaos harness: seeded random fault storms against every steering strategy.

The Fig. 10 experiment asks "how fast does each steering mechanism recover
from one clean failure?".  The chaos harness asks the operational question
behind it: *under a storm of compounding faults — overlapping outages,
flapping links, latency spikes, probe loss — how much downtime and latency
inflation does each strategy actually accumulate, and does it recover at
all?*  Each storm is a seeded :func:`repro.faults.FaultSchedule.random_storm`
run through the TM-Edge failover simulation; anycast and DNS figures are
derived from the same schedule's ground truth, so the three strategies face
identical weather.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.experiments.harness import ExperimentResult
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.telemetry import TRACER, emit_event
from repro.traffic_manager.failover import (
    FailoverConfig,
    FailoverResult,
    PathSpec,
    default_fig10_paths,
    run_failover,
)


@dataclass(frozen=True)
class ChaosConfig:
    storms: int = 5
    duration_s: float = 130.0
    seed: int = 0
    #: Scales the expected number of fault events per storm.
    intensity: float = 1.0
    dns_ttl_s: float = 60.0

    def __post_init__(self) -> None:
        if self.storms < 1:
            raise ValueError("need at least one storm")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")


@dataclass(frozen=True)
class StormOutcome:
    """Downtime / inflation / recovery metrics for one storm."""

    storm: int
    schedule: FaultSchedule
    result: FailoverResult
    painter_downtime_ms: float
    painter_inflation_ms: float
    painter_recoveries: int
    anycast_downtime_s: float
    dns_downtime_s: float


class ChaosHarness:
    """Runs seeded fault storms and scores each steering strategy."""

    def __init__(
        self,
        config: Optional[ChaosConfig] = None,
        paths: Optional[Sequence[PathSpec]] = None,
    ) -> None:
        self._config = config or ChaosConfig()
        self._paths = list(paths) if paths is not None else default_fig10_paths()

    @property
    def config(self) -> ChaosConfig:
        return self._config

    def make_storm(self, storm: int) -> FaultSchedule:
        cfg = self._config
        pop_names = sorted({p.pop_name for p in self._paths})
        unicast_prefixes = [p.prefix for p in self._paths if not p.is_anycast]
        return FaultSchedule.random_storm(
            pop_names=pop_names,
            duration_s=cfg.duration_s * 0.85,
            seed=cfg.seed + storm,
            intensity=cfg.intensity,
            prefixes=unicast_prefixes,
        )

    def run_storm(self, storm: int) -> StormOutcome:
        cfg = self._config
        with TRACER.span("chaos.storm", storm=storm, seed=cfg.seed + storm) as span:
            schedule = self.make_storm(storm)
            span.tag("faults", len(schedule))
            emit_event(
                "fault_storm",
                storm=storm,
                seed=cfg.seed + storm,
                faults=len(schedule),
                duration_s=cfg.duration_s,
                intensity=cfg.intensity,
            )
            result = run_failover(
                self._paths,
                FailoverConfig(
                    duration_s=cfg.duration_s,
                    dns_ttl_s=cfg.dns_ttl_s,
                    seed=cfg.seed + storm,
                    schedule=schedule,
                ),
            )
            outcome = StormOutcome(
                storm=storm,
                schedule=schedule,
                result=result,
                painter_downtime_ms=result.total_downtime_ms,
                painter_inflation_ms=self._painter_inflation_ms(result),
                painter_recoveries=result.recovery_count,
                anycast_downtime_s=self._anycast_downtime_s(result),
                dns_downtime_s=self._dns_downtime_s(schedule),
            )
            span.tag("recoveries", outcome.painter_recoveries)
            emit_event(
                "storm_outcome",
                storm=storm,
                painter_downtime_ms=outcome.painter_downtime_ms,
                painter_recoveries=outcome.painter_recoveries,
                anycast_downtime_s=outcome.anycast_downtime_s,
                dns_downtime_s=outcome.dns_downtime_s,
            )
            return outcome

    def run(self) -> List[StormOutcome]:
        return [self.run_storm(storm) for storm in range(self._config.storms)]

    # -- driving the controller daemon (ROADMAP 1 follow-on) -----------------

    def controller_storm(self, scenario, storm: int) -> FaultSchedule:
        """A seeded storm over the *scenario's own* PoPs.

        :meth:`make_storm` storms the synthetic Fig. 10 paths;
        this variant targets the deployment the controller actually
        manages, so its outages translate into :class:`PopDown` /
        :class:`PopUp` deltas the daemon can ingest.  Deterministic given
        ``cfg.seed + storm``, exactly like :meth:`make_storm`.
        """
        cfg = self._config
        pop_names = sorted(p.name for p in scenario.deployment.pops)
        return FaultSchedule.random_storm(
            pop_names=pop_names,
            duration_s=cfg.duration_s * 0.85,
            seed=cfg.seed + storm,
            intensity=cfg.intensity,
        )

    def controller_deltas(self, scenario, storm: int) -> list:
        """The storm as controller deltas, safe to feed the daemon.

        Translates :meth:`controller_storm` through
        :func:`repro.controller.deltas_from_fault_schedule`, then applies
        the same guard :func:`repro.controller.synthetic_deltas` uses:
        a :class:`PopDown` that would darken the last healthy PoP is
        dropped (deterministically — by stream order), along with its
        paired :class:`PopUp`, because an all-dark deployment has no
        candidate peerings for Algorithm 1 to advertise from.
        """
        from repro.controller import PopDown, PopUp, deltas_from_fault_schedule

        schedule = self.controller_storm(scenario, storm)
        deltas = deltas_from_fault_schedule(schedule)
        total = {p.name for p in scenario.deployment.pops}
        down: set = set()
        skipped: set = set()
        filtered = []
        for delta in deltas:
            if isinstance(delta, PopDown):
                if delta.pop_name in down:
                    continue  # already dark; a second Down is a no-op
                if len(down) + 1 >= len(total):
                    skipped.add(delta.pop_name)
                    continue  # never darken the last healthy PoP
                down.add(delta.pop_name)
            elif isinstance(delta, PopUp):
                if delta.pop_name in skipped:
                    skipped.discard(delta.pop_name)
                    continue  # its Down was dropped; drop the heal too
                down.discard(delta.pop_name)
            filtered.append(delta)
        return filtered

    def drive_controller(
        self,
        scenario,
        storm: int,
        checkpoint_dir,
        *,
        prefix_budget: int = 4,
        deltas=None,
        observe: bool = False,
    ):
        """Run the controller daemon under this storm's weather.

        ``deltas`` overrides the storm-derived stream (the regression
        suite hand-feeds an identical list and asserts the installs
        match).  Imports are lazy — :mod:`repro.controller` pulls
        :mod:`repro.io` which needs this package's harness.
        """
        from repro.controller import ControllerConfig, PainterController
        from repro.core.orchestrator import OrchestratorConfig

        if deltas is None:
            deltas = self.controller_deltas(scenario, storm)
        controller = PainterController(
            scenario,
            OrchestratorConfig(prefix_budget=prefix_budget),
            ControllerConfig(
                checkpoint_dir=checkpoint_dir,
                observe=observe,
                run_name=f"chaos-storm-{storm}",
            ),
            deltas,
        )
        try:
            return controller.run()
        finally:
            controller.close()

    # -- per-strategy metrics ------------------------------------------------

    def _painter_inflation_ms(self, result: FailoverResult) -> float:
        """Mean delivered-RTT excess over the best pre-storm path."""
        baseline = min(p.base_rtt_ms for p in self._paths)
        delivered = [
            rtt for _t, _prefix, rtt in result.timeline if not math.isinf(rtt)
        ]
        if not delivered:
            return math.inf
        return sum(rtt - baseline for rtt in delivered) / len(delivered)

    def _anycast_downtime_s(self, result: FailoverResult) -> float:
        """Summed unreachability of the anycast prefix across all epochs."""
        total = 0.0
        for epochs in result.anycast_epochs.values():
            for epoch in epochs:
                loss = epoch.trace.loss_duration_s
                window = epoch.end_s - epoch.start_s
                total += min(loss, window) if not math.isinf(loss) else window
        return total

    def _dns_downtime_s(self, schedule: FaultSchedule) -> float:
        """TTL-bound downtime of DNS clients pinned to the best path's PoP."""
        cfg = self._config
        best = min(self._paths, key=lambda p: p.base_rtt_ms)
        total = 0.0
        for start_s, end_s in schedule.down_intervals(
            pop_name=best.pop_name, prefix=best.prefix, horizon_s=cfg.duration_s
        ):
            total += min(end_s - start_s, cfg.dns_ttl_s)
        return total

    # -- presentation --------------------------------------------------------

    def to_result(self, outcomes: Optional[List[StormOutcome]] = None) -> ExperimentResult:
        cfg = self._config
        outcomes = outcomes if outcomes is not None else self.run()
        result = ExperimentResult(
            experiment_id="chaos",
            title="Fault storms: downtime / inflation / recovery per strategy",
            columns=[
                "storm",
                "faults",
                "painter_downtime_ms",
                "painter_inflation_ms",
                "painter_recoveries",
                "anycast_downtime_s",
                "dns_downtime_s",
            ],
        )
        for outcome in outcomes:
            result.add_row(
                outcome.storm,
                len(outcome.schedule),
                outcome.painter_downtime_ms,
                outcome.painter_inflation_ms,
                outcome.painter_recoveries,
                outcome.anycast_downtime_s,
                outcome.dns_downtime_s,
            )

        def mean(values: List[float]) -> float:
            finite = [v for v in values if not math.isinf(v)]
            return sum(finite) / len(finite) if finite else math.inf

        result.add_note(
            f"{cfg.storms} seeded storms (seed={cfg.seed}, "
            f"intensity={cfg.intensity:g}) over {cfg.duration_s:g}s each"
        )
        result.add_note(
            "mean downtime — painter: "
            f"{mean([o.painter_downtime_ms for o in outcomes]) / 1000.0:.3f}s, "
            f"anycast: {mean([o.anycast_downtime_s for o in outcomes]):.3f}s, "
            f"dns: {mean([o.dns_downtime_s for o in outcomes]):.3f}s"
        )
        damped = sum(
            1
            for o in outcomes
            for (prefix, peer), _ in _suppressed_pairs(o.schedule, cfg.duration_s)
        )
        result.add_note(
            f"link flaps left {damped} (prefix, peer) pairs route-flap-damped"
        )
        return result


def _suppressed_pairs(
    schedule: FaultSchedule, at_s: float
) -> List[Tuple[Tuple[str, int], float]]:
    """(prefix, peer) pairs a storm's flaps pushed into RFC 2439 suppression."""
    injector = FaultInjector(schedule)
    damping = injector.damping_state(until_s=at_s)
    suppressed: List[Tuple[Tuple[str, int], float]] = []
    from repro.faults.events import LinkFlap

    for flap in schedule.events_of(LinkFlap):
        prefix = flap.prefix or f"pop:{flap.pop_name}"
        if damping.is_suppressed(prefix, flap.peer_asn, at_s):
            suppressed.append(
                ((prefix, flap.peer_asn), damping.penalty(prefix, flap.peer_asn, at_s))
            )
    return suppressed


def run_chaos(
    storms: int = 5,
    duration_s: float = 130.0,
    seed: int = 0,
    intensity: float = 1.0,
) -> ExperimentResult:
    """Entry point used by the CLI, the report generator, and tests."""
    harness = ChaosHarness(
        ChaosConfig(storms=storms, duration_s=duration_s, seed=seed, intensity=intensity)
    )
    return harness.to_result()
