"""Common experiment plumbing: result tables, budget grids, parallel runs.

Every ``figN`` module returns a :class:`ExperimentResult` whose rows mirror
the series the paper plots, so benchmarks, tests, and EXPERIMENTS.md all
consume the same artifact.  :func:`run_experiments_parallel` fans a batch of
experiment ids out over worker processes (each worker shares scenario builds
via the preset cache) and folds the workers' perf counters back into the
parent registry.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

Cell = Union[str, int, float]


@dataclass
class ExperimentResult:
    """A named table of rows reproducing one figure/table."""

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: List[Tuple[Cell, ...]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self.columns)}"
            )
        self.rows.append(tuple(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Cell]:
        try:
            index = list(self.columns).index(name)
        except ValueError:
            raise KeyError(f"no column {name!r}; have {list(self.columns)}") from None
        return [row[index] for row in self.rows]

    def render(self) -> str:
        """Fixed-width table, printable to a terminal or a report."""
        header = [str(c) for c in self.columns]
        body = [[_fmt(cell) for cell in row] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _fmt(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def budget_grid(max_budget: int) -> List[int]:
    """A roughly log-spaced grid of prefix budgets up to ``max_budget``."""
    if max_budget < 1:
        raise ValueError("max_budget must be >= 1")
    grid = [1, 2, 3, 5, 8, 12, 18, 25, 40, 60, 90, 130, 200, 300, 450]
    out = [b for b in grid if b < max_budget]
    out.append(max_budget)
    return out


# -- parallel experiment running ---------------------------------------------


def _init_experiment_worker() -> None:
    """Worker initializer: share scenario builds within the worker.

    Several experiments construct the same preset world (same seed, same
    size); inside one worker process the preset cache makes the second and
    later constructions free.  Intra-solve parallelism is switched off:
    experiment workers are already one-per-core, and nesting a solve pool
    inside each would oversubscribe the machine (and fork a fork).
    """
    from repro.parallel import disable_parallel
    from repro.scenario import enable_preset_cache

    enable_preset_cache()
    disable_parallel()


def _run_experiment_task(name: str) -> Tuple[str, "ExperimentResult", Dict[str, Any]]:
    """Run one experiment in a worker; ship its result + perf snapshot home."""
    from repro.experiments import ALL_EXPERIMENTS
    from repro.perf import PERF

    result = ALL_EXPERIMENTS[name]()
    return name, result, PERF.snapshot()


def run_experiments_parallel(
    experiment_ids: Sequence[str],
    jobs: Optional[int] = None,
) -> Dict[str, "ExperimentResult"]:
    """Run registered experiments, fanned out across worker processes.

    ``jobs=None`` uses one worker per experiment up to the CPU count;
    ``jobs<=1`` degrades to a plain serial loop in this process.  Results
    come back keyed by experiment id, in the order requested.  Worker perf
    counters (cache hit rates, marginal-evaluation counts) are merged into
    this process's :data:`repro.perf.PERF` registry so reports reflect the
    whole run, not just the parent.

    Experiments are independent by construction (each builds its own world
    from explicit seeds), which is what makes process-level parallelism
    safe — no shared mutable state crosses the fork.
    """
    from repro.experiments import ALL_EXPERIMENTS
    from repro.perf import PERF

    names = list(experiment_ids)
    unknown = [name for name in names if name not in ALL_EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")
    if jobs is None:
        jobs = min(len(names), os.cpu_count() or 1)
    if jobs <= 1 or len(names) <= 1:
        return {name: ALL_EXPERIMENTS[name]() for name in names}
    results: Dict[str, ExperimentResult] = {}
    with ProcessPoolExecutor(
        max_workers=jobs, initializer=_init_experiment_worker
    ) as pool:
        futures = {pool.submit(_run_experiment_task, name): name for name in names}
        for future in as_completed(futures):
            name, result, perf_snapshot = future.result()
            results[name] = result
            PERF.merge(perf_snapshot)
    return {name: results[name] for name in names}


def config_prefix_subset(config, k: int):
    """The greedy solution truncated to its first ``k`` prefixes.

    Algorithm 1 fills prefixes in order, so the first ``k`` prefixes of a
    budget-``N`` solution *are* the budget-``k`` solution — one solve yields
    the whole benefit-vs-budget curve.
    """
    from repro.core.advertisement import AdvertisementConfig

    subset = AdvertisementConfig()
    for prefix in config.prefixes:
        if prefix >= k:
            continue
        for pid in config.peerings_for(prefix):
            subset.add(prefix, pid)
    return subset
