"""Common experiment plumbing: result tables and budget grids.

Every ``figN`` module returns a :class:`ExperimentResult` whose rows mirror
the series the paper plots, so benchmarks, tests, and EXPERIMENTS.md all
consume the same artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

Cell = Union[str, int, float]


@dataclass
class ExperimentResult:
    """A named table of rows reproducing one figure/table."""

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: List[Tuple[Cell, ...]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self.columns)}"
            )
        self.rows.append(tuple(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Cell]:
        try:
            index = list(self.columns).index(name)
        except ValueError:
            raise KeyError(f"no column {name!r}; have {list(self.columns)}") from None
        return [row[index] for row in self.rows]

    def render(self) -> str:
        """Fixed-width table, printable to a terminal or a report."""
        header = [str(c) for c in self.columns]
        body = [[_fmt(cell) for cell in row] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _fmt(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def budget_grid(max_budget: int) -> List[int]:
    """A roughly log-spaced grid of prefix budgets up to ``max_budget``."""
    if max_budget < 1:
        raise ValueError("max_budget must be >= 1")
    grid = [1, 2, 3, 5, 8, 12, 18, 25, 40, 60, 90, 130, 200, 300, 450]
    out = [b for b in grid if b < max_budget]
    out.append(max_budget)
    return out


def config_prefix_subset(config, k: int):
    """The greedy solution truncated to its first ``k`` prefixes.

    Algorithm 1 fills prefixes in order, so the first ``k`` prefixes of a
    budget-``N`` solution *are* the budget-``k`` solution — one solve yields
    the whole benefit-vs-budget curve.
    """
    from repro.core.advertisement import AdvertisementConfig

    subset = AdvertisementConfig()
    for prefix in config.prefixes:
        if prefix >= k:
            continue
        for pid in config.peerings_for(prefix):
            subset.add(prefix, pid)
    return subset
