"""Fig. 10: failover timescales — PAINTER vs anycast reconvergence vs DNS.

Shape targets: PAINTER restores the data plane within a few RTTs (tens of
ms); the anycast prefix is unreachable for about a second and keeps
exploring paths (visible as BGP update churn) for ~15 s; a DNS-directed
client waits out the TTL (~60 s).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.experiments.harness import ExperimentResult
from repro.traffic_manager.failover import (
    FailoverConfig,
    FailoverResult,
    PathSpec,
    default_fig10_paths,
    run_failover,
)


def run_fig10(
    paths: Optional[Sequence[PathSpec]] = None,
    config: Optional[FailoverConfig] = None,
    series_step_s: float = 4.0,
) -> ExperimentResult:
    paths = list(paths) if paths is not None else default_fig10_paths()
    outcome = run_failover(paths, config)

    result = ExperimentResult(
        experiment_id="fig10",
        title="Failover timeline: per-prefix latency, selection, BGP churn",
        columns=["time_s", "active_prefix", "anycast_rtt_ms", "chosen_rtt_ms", "bgp_updates"],
    )
    latency_series = outcome.path_latency_series(step_s=series_step_s)
    churn = dict(outcome.bgp_update_series(bin_s=series_step_s))
    anycast_prefix = next(p.prefix for p in paths if p.is_anycast)
    anycast_series = dict(latency_series[anycast_prefix])

    t = 0.0
    while t <= outcome.config.duration_s:
        active = outcome.active_prefix_at(t)
        anycast_rtt = anycast_series.get(t, math.inf)
        chosen_rtt = math.inf
        if active is not None:
            chosen_rtt = dict(latency_series[active]).get(t, math.inf)
        result.add_row(
            t,
            active or "-",
            anycast_rtt if not math.isinf(anycast_rtt) else -1.0,
            chosen_rtt if not math.isinf(chosen_rtt) else -1.0,
            churn.get(t, 0),
        )
        t += series_step_s

    result.add_note(f"PAINTER downtime: {outcome.painter_downtime_ms:.1f} ms")
    result.add_note(f"anycast loss window: {outcome.anycast_loss_s:.2f} s")
    result.add_note(f"anycast reconvergence: {outcome.anycast_reconvergence_s:.1f} s")
    result.add_note(f"DNS failover (TTL-bound): {outcome.dns_downtime_s:.0f} s")
    result.add_note("latency -1.0 marks an unreachable prefix")
    return result


def failover_summary(
    paths: Optional[Sequence[PathSpec]] = None,
    config: Optional[FailoverConfig] = None,
) -> FailoverResult:
    """The raw simulation result, for tests and ad-hoc analysis."""
    return run_failover(list(paths) if paths is not None else default_fig10_paths(), config)
