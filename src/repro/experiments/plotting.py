"""Terminal plots for experiment results.

Offline reproduction environments rarely have a plotting stack, so the
experiment CLI renders its curves as ASCII: good enough to eyeball the
shapes the paper's figures show (who dominates, where curves cross, how
ranges narrow).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Marks assigned to series, in order.
SERIES_MARKS = "*o+x#@%&"


def _scale(value: float, lo: float, hi: float, size: int) -> int:
    if hi <= lo:
        return 0
    position = (value - lo) / (hi - lo)
    return min(size - 1, max(0, int(round(position * (size - 1)))))


def ascii_plot(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    log_x: bool = False,
) -> str:
    """Render named (x, y) series on one canvas.

    Non-finite points are skipped.  With ``log_x`` the x axis is log-scaled
    (useful for prefix-budget sweeps, as in Fig. 6).
    """
    if width < 8 or height < 4:
        raise ValueError("canvas too small")
    points: List[Tuple[str, float, float]] = []
    for name, values in series.items():
        for x, y in values:
            if math.isfinite(x) and math.isfinite(y):
                if log_x and x <= 0:
                    continue
                points.append((name, math.log10(x) if log_x else x, y))
    if not points:
        raise ValueError("nothing to plot")

    xs = [x for _n, x, _y in points]
    ys = [y for _n, _x, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_lo == y_hi:
        y_lo, y_hi = y_lo - 1.0, y_hi + 1.0

    canvas = [[" "] * width for _ in range(height)]
    marks = {name: SERIES_MARKS[i % len(SERIES_MARKS)] for i, name in enumerate(series)}
    for name, x, y in points:
        col = _scale(x, x_lo, x_hi, width)
        row = height - 1 - _scale(y, y_lo, y_hi, height)
        canvas[row][col] = marks[name]

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.3g}"
    bottom_label = f"{y_lo:.3g}"
    gutter = max(len(top_label), len(bottom_label), len(y_label))
    for row_idx, row in enumerate(canvas):
        if row_idx == 0:
            prefix = top_label.rjust(gutter)
        elif row_idx == height - 1:
            prefix = bottom_label.rjust(gutter)
        elif row_idx == height // 2 and y_label:
            prefix = y_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix} |{''.join(row)}")
    x_lo_label = f"{10 ** x_lo:.3g}" if log_x else f"{x_lo:.3g}"
    x_hi_label = f"{10 ** x_hi:.3g}" if log_x else f"{x_hi:.3g}"
    axis = f"{' ' * gutter} +{'-' * width}"
    lines.append(axis)
    footer = f"{' ' * gutter}  {x_lo_label}{x_label.center(width - len(x_lo_label) - len(x_hi_label))}{x_hi_label}"
    lines.append(footer)
    legend = "  ".join(f"{mark}={name}" for name, mark in marks.items())
    lines.append(f"{' ' * gutter}  legend: {legend}")
    return "\n".join(lines)


def plot_benefit_curves(result, value_column: str = "benefit_frac") -> str:
    """Plot an ExperimentResult with (strategy, budget, ..., value) rows."""
    columns = list(result.columns)
    strategy_idx = columns.index("strategy")
    budget_idx = columns.index("budget_prefixes")
    value_idx = columns.index(value_column)
    series: Dict[str, List[Tuple[float, float]]] = {}
    for row in result.rows:
        series.setdefault(str(row[strategy_idx]), []).append(
            (float(row[budget_idx]), float(row[value_idx]))
        )
    return ascii_plot(
        series,
        title=result.title,
        x_label="prefix budget",
        y_label=value_column,
        log_x=True,
    )
