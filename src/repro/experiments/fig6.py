"""Fig. 6: benefit vs prefix budget, against baseline strategies.

* **6a** — estimated benefit (as a fraction of the total possible) on the
  Azure-scale simulated deployment.  Shape targets: PAINTER dominates at
  every budget; One-per-PoP variants plateau low; PAINTER needs ~1/3 the
  prefixes of One-per-Peering at 75% benefit.
* **6b** — realized average latency improvement (ms, over UGs that improve
  at all) on the prototype-scale deployment, using ground-truth routing.
* **6c** — the same curve across learning iterations: early iterations
  suffer from incorrect ingress assumptions; uncertainty narrows.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.advertisement import AdvertisementConfig
from repro.core.baselines import (
    one_per_peering,
    one_per_pop,
    one_per_pop_with_reuse,
    regional_transit,
)
from repro.core.benefit import BenefitEvaluator, realized_improvement
from repro.core.orchestrator import OrchestratorConfig, PainterOrchestrator
from repro.core.routing_model import DEFAULT_D_REUSE_KM, RoutingModel
from repro.experiments.harness import ExperimentResult, budget_grid, config_prefix_subset
from repro.scenario import Scenario, azure_scenario, prototype_scenario


def _fresh_evaluator(scenario: Scenario, d_reuse_km: float = DEFAULT_D_REUSE_KM) -> BenefitEvaluator:
    return BenefitEvaluator(scenario, RoutingModel(scenario.catalog, d_reuse_km=d_reuse_km))


BASELINES: Dict[str, Callable[[Scenario, int], AdvertisementConfig]] = {
    "one_per_peering": one_per_peering,
    "one_per_pop": one_per_pop,
    "one_per_pop_w_reuse": one_per_pop_with_reuse,
    "regional_transit": regional_transit,
}


def painter_budget_configs(
    scenario: Scenario,
    budgets: Sequence[int],
    learning_iterations: int = 1,
    latency_of=None,
) -> Dict[int, AdvertisementConfig]:
    """PAINTER configs for each budget from one max-budget greedy solve."""
    orchestrator = PainterOrchestrator(
        scenario,
        OrchestratorConfig(prefix_budget=max(budgets), latency_of=latency_of),
    )
    if learning_iterations > 1:
        orchestrator.learn(iterations=learning_iterations - 1)
    config = orchestrator.solve()
    return {budget: config_prefix_subset(config, budget) for budget in budgets}


def _latency_source(scenario: Scenario, mode: str):
    """The measurement pipeline feeding Algorithm 1 (paper §5.1.1).

    * ``oracle`` — true latencies (an idealized measurement platform);
    * ``simulated`` — Appendix C: real measurements from a probe fleet,
      extrapolated to probe-less UGs from nearby-probe improvement pools;
    * ``geolocated`` — Appendix B: latency estimates to targets geolocated
      within 450 km of each ingress's PoP (partial coverage, bounded error).
    """
    if mode == "oracle":
        return None
    if mode == "simulated":
        from repro.measurement.extrapolation import ExtrapolationConfig, SimulatedMeasurements
        from repro.measurement.probes import ProbeFleet, ProbeFleetConfig

        fleet = ProbeFleet(scenario.user_groups, ProbeFleetConfig(seed=11))
        return SimulatedMeasurements(scenario, fleet, ExtrapolationConfig(seed=12))
    if mode == "geolocated":
        from repro.measurement.geolocation import GeolocationCatalog, GeolocationConfig

        catalog = GeolocationCatalog(GeolocationConfig(seed=13))

        def estimated(ug, peering_id):
            return catalog.estimate_latency_ms(
                ug, scenario.deployment.peering(peering_id), scenario.latency_model, 450.0
            )

        return estimated
    raise ValueError(f"unknown measurement mode {mode!r}")


def _communities_benefit_rows(
    result: ExperimentResult,
    scenario: Scenario,
    budgets: Sequence[int],
    total_possible: float,
    n_ingresses: int,
) -> None:
    """Communities-comparator rows for Fig. 6a's benefit-fraction table.

    Realized (ground-truth) benefit is reported for all three fraction
    columns: community steering has no Eq.-2 belief state, so there is no
    lower/upper envelope to spread.
    """
    from repro.steering.communities import communities_benefit, communities_budget_configs

    by_budget = communities_budget_configs(scenario, budgets)
    for budget in budgets:
        announcements = by_budget[budget]
        frac = communities_benefit(scenario, announcements) / total_possible
        result.add_row(
            "communities",
            len(announcements),
            100.0 * len(announcements) / n_ingresses,
            frac,
            frac,
            frac,
        )


def run_fig6a(
    scenario: Optional[Scenario] = None,
    painter_max_budget: int = 30,
    learning_iterations: int = 2,
    measurement_mode: str = "oracle",
    strategies: Sequence[str] = (),
) -> ExperimentResult:
    scenario = scenario or azure_scenario(seed=0, n_ugs=600)
    evaluator = _fresh_evaluator(scenario)
    total_possible = scenario.total_possible_benefit()
    n_ingresses = len(scenario.deployment)

    result = ExperimentResult(
        experiment_id="fig6a",
        title="Estimated % of possible benefit vs % prefix budget (Azure-scale sim)",
        columns=[
            "strategy",
            "budget_prefixes",
            "budget_pct",
            "benefit_frac",
            "lower_frac",
            "upper_frac",
        ],
    )

    budgets = budget_grid(painter_max_budget)
    painter_configs = painter_budget_configs(
        scenario,
        budgets,
        learning_iterations,
        latency_of=_latency_source(scenario, measurement_mode),
    )
    for budget in budgets:
        evaluation = evaluator.evaluate(painter_configs[budget]).as_fraction_of(total_possible)
        result.add_row(
            "painter",
            budget,
            100.0 * budget / n_ingresses,
            evaluation.estimated,
            evaluation.lower,
            evaluation.upper,
        )

    for name, builder in BASELINES.items():
        max_b = n_ingresses if name == "one_per_peering" else len(scenario.deployment.pops)
        for budget in budget_grid(max_b):
            config = builder(scenario, budget)
            evaluation = evaluator.evaluate(config).as_fraction_of(total_possible)
            result.add_row(
                name,
                config.prefix_count,
                100.0 * config.prefix_count / n_ingresses,
                evaluation.estimated,
                evaluation.lower,
                evaluation.upper,
            )
    if "communities" in strategies:
        _communities_benefit_rows(result, scenario, budgets, total_possible, n_ingresses)
        result.add_note(
            "communities rows: action-community steering (prepend / selective "
            "announce / MED) with the same budget of announcement groups; "
            "realized benefit, no belief envelope"
        )
    result.add_note(f"total possible benefit (weighted ms): {total_possible:.2f}")
    result.add_note(f"ingresses: {n_ingresses}")
    result.add_note(f"measurement mode: {measurement_mode}")
    return result


def potential_improvers(scenario: Scenario, min_improvement_ms: float = 1.0) -> List:
    """UGs whose best policy-compliant ingress beats their anycast latency.

    Fig. 6b averages improvement over "clients that have non-zero
    improvement"; using the fixed set of *potential* improvers keeps the
    denominator identical across strategies (a strategy that deeply improves
    three UGs must not look better than one that improves three hundred).
    """
    return [
        ug
        for ug in scenario.user_groups
        if scenario.anycast_latency_ms(ug) - scenario.best_possible_latency_ms(ug)
        > min_improvement_ms
    ]


def _realized_avg_improvement(
    scenario: Scenario,
    config: AdvertisementConfig,
    improvers: Optional[List] = None,
    min_improvement_ms: float = 1e-6,
) -> Tuple[float, int]:
    """Mean realized improvement over the potential-improver set (Fig. 6b)."""
    if improvers is None:
        improvers = potential_improvers(scenario)
    if not improvers:
        return (0.0, 0)
    improvements = [realized_improvement(scenario, ug, config) for ug in improvers]
    improved = sum(1 for i in improvements if i > min_improvement_ms)
    return (sum(improvements) / len(improvers), improved)


def _communities_avg_improvement(
    scenario: Scenario,
    announcements,
    improvers: List,
    min_improvement_ms: float = 1e-6,
) -> Tuple[float, int]:
    """Fig. 6b's mean-improvement metric under community steering."""
    from repro.steering.communities import CommunityRouting

    if not improvers:
        return (0.0, 0)
    router = CommunityRouting(scenario)
    improvements = []
    for ug in improvers:
        anycast = scenario.anycast_latency_ms(ug)
        best = anycast
        for announcement in announcements:
            latency = router.latency_for(ug, announcement)
            if latency is not None and latency < best:
                best = latency
        improvements.append(anycast - best)
    improved = sum(1 for i in improvements if i > min_improvement_ms)
    return (sum(improvements) / len(improvers), improved)


def run_fig6b(
    scenario: Optional[Scenario] = None,
    painter_max_budget: int = 25,
    learning_iterations: int = 3,
    strategies: Sequence[str] = (),
) -> ExperimentResult:
    scenario = scenario or prototype_scenario(seed=0, n_ugs=400)
    n_ingresses = len(scenario.deployment)

    result = ExperimentResult(
        experiment_id="fig6b",
        title="Realized mean latency improvement (ms) vs % prefix budget (prototype)",
        columns=["strategy", "budget_prefixes", "budget_pct", "avg_improvement_ms", "ugs_improved"],
    )

    improvers = potential_improvers(scenario)
    budgets = budget_grid(painter_max_budget)
    painter_configs = painter_budget_configs(scenario, budgets, learning_iterations)
    for budget in budgets:
        avg, count = _realized_avg_improvement(scenario, painter_configs[budget], improvers)
        result.add_row("painter", budget, 100.0 * budget / n_ingresses, avg, count)

    for name, builder in BASELINES.items():
        max_b = n_ingresses if name == "one_per_peering" else len(scenario.deployment.pops)
        for budget in budget_grid(max_b):
            config = builder(scenario, budget)
            avg, count = _realized_avg_improvement(scenario, config, improvers)
            result.add_row(
                name, config.prefix_count, 100.0 * config.prefix_count / n_ingresses, avg, count
            )
    if "communities" in strategies:
        from repro.steering.communities import communities_budget_configs

        by_budget = communities_budget_configs(scenario, budgets)
        for budget in budgets:
            announcements = by_budget[budget]
            avg, count = _communities_avg_improvement(scenario, announcements, improvers)
            result.add_row(
                "communities",
                len(announcements),
                100.0 * len(announcements) / n_ingresses,
                avg,
                count,
            )
        result.add_note(
            "communities rows: best announcement per UG (anycast floor), same "
            "improver denominator as the other strategies"
        )
    result.add_note(f"averages are over the {len(improvers)} UGs with any possible improvement")
    return result


def run_fig6c(
    scenario: Optional[Scenario] = None,
    painter_max_budget: int = 25,
    iterations: int = 4,
) -> ExperimentResult:
    scenario = scenario or prototype_scenario(seed=0, n_ugs=400)
    n_ingresses = len(scenario.deployment)
    orchestrator = PainterOrchestrator(
        scenario, OrchestratorConfig(prefix_budget=painter_max_budget)
    )
    learning = orchestrator.learn(iterations=iterations)

    result = ExperimentResult(
        experiment_id="fig6c",
        title="PAINTER learning iterations: realized improvement and uncertainty",
        columns=[
            "iteration",
            "budget_prefixes",
            "avg_improvement_ms",
            "uncertainty_ms",
        ],
    )
    improvers = potential_improvers(scenario)
    budgets = budget_grid(painter_max_budget)
    for record in learning.iterations:
        for budget in budgets:
            subset = config_prefix_subset(record.config, budget)
            avg, _count = _realized_avg_improvement(scenario, subset, improvers)
            # Uncertainty was captured at iteration time (pre-test belief);
            # report it on the full-budget row of each iteration.
            uncertainty: object = ""
            if budget == budgets[-1]:
                uncertainty = record.uncertainty
            result.add_row(record.iteration, budget, avg, uncertainty)
    result.add_note(
        "uncertainty = volume-weighted (upper - estimated) benefit before testing, "
        "recorded per learning iteration"
    )
    return result
