"""Fig. 14 (Appendix E.1): full benefit ranges per strategy over budget.

One-per-PoP strategies advertise via every peering at a PoP, exposing many
possibly-poor ingresses per prefix: their Upper bound rises fast but Mean
and Estimated stay low and the range is wide.  PAINTER reuses prefixes only
across far-apart PoPs/disjoint cones, so its range is narrow; One-per-
Peering has no uncertainty at all (one ingress per prefix).
"""

from __future__ import annotations

from typing import Optional

from repro.core.benefit import BenefitEvaluator
from repro.core.routing_model import RoutingModel
from repro.experiments.fig6 import BASELINES, painter_budget_configs
from repro.experiments.harness import ExperimentResult, budget_grid
from repro.scenario import Scenario, prototype_scenario


def run_fig14(
    scenario: Optional[Scenario] = None,
    painter_max_budget: int = 25,
) -> ExperimentResult:
    scenario = scenario or prototype_scenario(seed=0, n_ugs=300)
    evaluator = BenefitEvaluator(scenario, RoutingModel(scenario.catalog))
    total_possible = scenario.total_possible_benefit()
    n_ingresses = len(scenario.deployment)

    result = ExperimentResult(
        experiment_id="fig14",
        title="Benefit ranges (lower/mean/estimated/upper) per strategy",
        columns=[
            "strategy",
            "budget_prefixes",
            "lower_frac",
            "mean_frac",
            "estimated_frac",
            "upper_frac",
        ],
    )

    budgets = budget_grid(painter_max_budget)
    painter_configs = painter_budget_configs(scenario, budgets, learning_iterations=1)
    for budget in budgets:
        ev = evaluator.evaluate(painter_configs[budget]).as_fraction_of(total_possible)
        result.add_row("painter", budget, ev.lower, ev.mean, ev.estimated, ev.upper)

    for name, builder in BASELINES.items():
        max_b = n_ingresses if name == "one_per_peering" else len(scenario.deployment.pops)
        for budget in budget_grid(max_b):
            config = builder(scenario, budget)
            ev = evaluator.evaluate(config).as_fraction_of(total_possible)
            result.add_row(
                name, config.prefix_count, ev.lower, ev.mean, ev.estimated, ev.upper
            )
    return result
