"""Fig. 9: steering granularity (9a) and its benefit cost (9b).

9a buckets each PoP's ingress traffic by the size of the unit each
mechanism steers (BGP: (peering, user AS); DNS: recursive resolver;
PAINTER: flow).  9b re-evaluates PAINTER's advertisement configurations
assuming clients are assigned to prefixes via DNS — the paper finds roughly
half the benefit evaporates because some resolvers serve geographically
disparate UGs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.orchestrator import OrchestratorConfig, PainterOrchestrator
from repro.dns.resolvers import ResolverAssignment, ResolverConfig
from repro.experiments.harness import ExperimentResult, budget_grid, config_prefix_subset
from repro.scenario import Scenario, prototype_scenario
from repro.steering.dns_steering import evaluate_dns_steering
from repro.steering.granularity import BUCKET_LABELS, GranularityAnalysis


def run_fig9a(
    scenario: Optional[Scenario] = None,
    top_pops: int = 10,
    resolver_config: Optional[ResolverConfig] = None,
) -> ExperimentResult:
    scenario = scenario or prototype_scenario(seed=0, n_ugs=400)
    resolvers = ResolverAssignment(scenario, resolver_config)
    analysis = GranularityAnalysis(scenario, resolvers)

    result = ExperimentResult(
        experiment_id="fig9a",
        title="Steering granularity: volume share per control-unit-size bucket",
        columns=["pop", "mechanism"] + list(BUCKET_LABELS),
    )
    for mechanism, granularity in analysis.analyze_all().items():
        result.add_row("all", mechanism, *granularity.bucket_shares)
    for pop_name in analysis.top_pops(top_pops):
        for mechanism, granularity in analysis.analyze_pop(pop_name).items():
            result.add_row(pop_name, mechanism, *granularity.bucket_shares)
    result.add_note("buckets are the fraction of PoP traffic one control action moves")
    return result


def run_fig9b(
    scenario: Optional[Scenario] = None,
    painter_max_budget: int = 25,
    resolver_config: Optional[ResolverConfig] = None,
    learning_iterations: int = 2,
) -> ExperimentResult:
    scenario = scenario or prototype_scenario(seed=0, n_ugs=400)
    resolvers = ResolverAssignment(scenario, resolver_config)
    orchestrator = PainterOrchestrator(
        scenario, OrchestratorConfig(prefix_budget=painter_max_budget)
    )
    if learning_iterations > 1:
        orchestrator.learn(iterations=learning_iterations - 1)
    full_config = orchestrator.solve()
    total_possible = scenario.total_possible_benefit()

    result = ExperimentResult(
        experiment_id="fig9b",
        title="PAINTER vs PAINTER-with-DNS benefit over budget",
        columns=[
            "budget_prefixes",
            "painter_benefit_frac",
            "dns_benefit_frac",
            "dns_fraction_of_painter",
        ],
    )
    for budget in budget_grid(painter_max_budget):
        config = config_prefix_subset(full_config, budget)
        outcome = evaluate_dns_steering(scenario, config, resolvers)
        result.add_row(
            budget,
            outcome.painter_benefit / total_possible,
            outcome.dns_benefit / total_possible,
            outcome.dns_fraction_of_painter,
        )
    return result
