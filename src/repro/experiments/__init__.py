"""Per-figure experiment reproductions (see DESIGN.md's experiment index)."""

from repro.experiments.extensions import (
    run_ext_congestion,
    run_ext_egress,
    run_ext_failover_sweep,
    run_ext_ipv6,
    run_ext_multipath,
)
from repro.experiments.chaos import ChaosConfig, ChaosHarness, run_chaos
from repro.experiments.communities_cmp import run_communities
from repro.experiments.controller import run_controller
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig6 import run_fig6a, run_fig6b, run_fig6c
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9a, run_fig9b
from repro.experiments.fig10 import failover_summary, run_fig10
from repro.experiments.fig11 import run_fig11a, run_fig11b
from repro.experiments.fig12 import run_fig12
from repro.experiments.fig14 import run_fig14
from repro.experiments.fig15 import run_fig15a, run_fig15b
from repro.experiments.harness import ExperimentResult, budget_grid, config_prefix_subset
from repro.experiments.hotpotato import run_hot_potato
from repro.experiments.optimality import run_greedy_gap
from repro.experiments.replay import (
    ReplayConfig,
    ReplayResult,
    run_replay,
    run_traffic_replay,
)
from repro.experiments.soak import run_soak_experiment

ALL_EXPERIMENTS = {
    "chaos": run_chaos,
    "communities": run_communities,
    "controller": run_controller,
    "fig3": run_fig3,
    "fig6a": run_fig6a,
    "fig6b": run_fig6b,
    "fig6c": run_fig6c,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9a": run_fig9a,
    "fig9b": run_fig9b,
    "fig10": run_fig10,
    "fig11a": run_fig11a,
    "fig11b": run_fig11b,
    "fig12": run_fig12,
    "fig14": run_fig14,
    "fig15a": run_fig15a,
    "fig15b": run_fig15b,
    "hotpotato": run_hot_potato,
    "optimality": run_greedy_gap,
    "replay": run_replay,
    "soak": run_soak_experiment,
    "ext_congestion": run_ext_congestion,
    "ext_egress": run_ext_egress,
    "ext_failover_sweep": run_ext_failover_sweep,
    "ext_ipv6": run_ext_ipv6,
    "ext_multipath": run_ext_multipath,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "ChaosConfig",
    "ChaosHarness",
    "run_chaos",
    "run_communities",
    "run_controller",
    "run_hot_potato",
    "run_ext_congestion",
    "run_ext_egress",
    "run_ext_failover_sweep",
    "run_ext_ipv6",
    "run_ext_multipath",
    "ExperimentResult",
    "ReplayConfig",
    "ReplayResult",
    "run_replay",
    "run_traffic_replay",
    "budget_grid",
    "config_prefix_subset",
    "run_greedy_gap",
    "failover_summary",
    "run_fig10",
    "run_fig11a",
    "run_fig11b",
    "run_fig12",
    "run_fig14",
    "run_fig15a",
    "run_fig15b",
    "run_fig3",
    "run_fig6a",
    "run_fig6b",
    "run_fig6c",
    "run_fig7",
    "run_fig8",
    "run_fig9a",
    "run_fig9b",
    "run_soak_experiment",
]
