"""Hot-potato coexistence: link-weight epochs vs ingress steering stability.

Intra-domain link weights are not static: operators retune them, and each
retune moves hot-potato egress costs (Balon & Leduc, arXiv:0803.2824).  Two
ingress-TE mechanisms react very differently:

* **PAINTER** advertises plain prefixes.  No IGP signal leaves the cloud,
  so its ingress catchments are invariant across epochs — zero oscillation
  by construction (the controller tracks the epoch but deliberately does
  not re-solve; see ``PainterController._apply_delta``).
* **Communities steering** pins ingresses with MED, and MED mirrors the
  cloud's IGP cost to each exit PoP.  When an epoch shifts the weights,
  the advertised MEDs shift with them and neighbors' best sessions can
  flip — ingress oscillation and benefit erosion.

The epoch schedule is driven through the controller's delta vocabulary
(:func:`repro.controller.deltas.link_weight_deltas`), so the scenario
exercises the same stream machinery as every other world change.  With a
single (frozen) epoch the stream is empty, oscillation counts are exactly
zero, and the PAINTER end-to-end benefit is bit-identical to
:func:`repro.egress.coexistence.evaluate_coexistence` — the regression
tests pin both.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.advertisement import AdvertisementConfig
from repro.egress.coexistence import (
    DirectionalModel,
    EgressOptimizer,
    LinkWeightEpochs,
    evaluate_coexistence,
    painter_ingress_ms,
)
from repro.experiments.harness import ExperimentResult
from repro.scenario import Scenario, prototype_scenario
from repro.steering.communities import (
    CommunityAnnouncement,
    CommunityRouting,
    communities_choices,
    solve_communities,
)
from repro.usergroups.usergroup import UserGroup


def _epoch_trajectory(n_epochs: int, interval_s: float) -> List[int]:
    """Epoch sequence derived from the controller delta stream.

    Epoch 0 is the initial state; each :class:`LinkWeightShift` bucket
    advances the epoch.  A frozen schedule (one epoch) yields ``[0]``.
    """
    # Imported here: repro.controller pulls in repro.io, which imports the
    # experiments package — a top-level import would close that cycle.
    from repro.controller.deltas import LinkWeightShift, group_deltas, link_weight_deltas

    trajectory = [0]
    for _, bucket in group_deltas(link_weight_deltas(n_epochs, interval_s=interval_s)):
        for delta in bucket:
            assert isinstance(delta, LinkWeightShift)
            trajectory.append(delta.epoch)
    return trajectory


def _painter_ingress_ids(
    scenario: Scenario, config: AdvertisementConfig
) -> Dict[int, Optional[int]]:
    """Each UG's realized PAINTER ingress (best prefix, anycast fallback)."""
    routing = scenario.routing
    out: Dict[int, Optional[int]] = {}
    for ug in scenario.user_groups:
        anycast = scenario.anycast_latency_ms(ug)
        best_pid: Optional[int] = None
        best_latency = anycast
        for prefix in config.prefixes:
            advertised = config.peerings_for(prefix)
            latency = routing.latency_for(ug, advertised)
            if latency is not None and latency < best_latency:
                ingress = routing.ingress_for(ug, advertised)
                assert ingress is not None
                best_latency = latency
                best_pid = ingress.peering_id
        out[ug.ug_id] = best_pid
    return out


def _communities_ingress_ids(
    scenario: Scenario,
    router: CommunityRouting,
    announcements: Sequence[CommunityAnnouncement],
    choices: Dict[int, int],
    epoch: int,
) -> Dict[int, Optional[int]]:
    """Each UG's realized ingress under its pinned announcement at ``epoch``."""
    out: Dict[int, Optional[int]] = {}
    for ug in scenario.user_groups:
        index = choices.get(ug.ug_id)
        if index is None:
            out[ug.ug_id] = None
            continue
        ingress = router.ingress_for(ug, announcements[index], epoch=epoch)
        out[ug.ug_id] = None if ingress is None else ingress.peering_id
    return out


def _count_flips(
    previous: Dict[int, Optional[int]], current: Dict[int, Optional[int]]
) -> int:
    return sum(1 for ug_id, pid in current.items() if previous[ug_id] != pid)


def _communities_combined_gain(
    scenario: Scenario,
    model: DirectionalModel,
    optimizer: EgressOptimizer,
    router: CommunityRouting,
    announcements: Sequence[CommunityAnnouncement],
    choices: Dict[int, int],
    epoch: int,
) -> float:
    """End-to-end (both-systems-on) gain with communities-steered ingress.

    Mirrors :func:`evaluate_coexistence`'s accumulation (same UG order,
    same per-term arithmetic) with the pinned announcement's ingress in
    place of PAINTER's best prefix; the anycast fallback still floors the
    ingress leg, since per-flow selection keeps anycast as a destination.
    """
    neither = both = 0.0
    for ug in scenario.user_groups:
        anycast = scenario.routing.anycast_ingress(ug)
        assert anycast is not None
        default_in = model.split(ug, anycast).ingress_ms
        default_out = optimizer.default_egress_ms(ug, epoch=epoch)
        best_in = default_in
        index = choices.get(ug.ug_id)
        if index is not None:
            ingress = router.ingress_for(ug, announcements[index], epoch=epoch)
            if ingress is not None:
                candidate = model.split(ug, ingress).ingress_ms
                if candidate < best_in:
                    best_in = candidate
        best_out = optimizer.best_egress_ms(ug, epoch=epoch)
        neither += ug.volume * (default_in + default_out)
        both += ug.volume * (best_in + best_out)
    return neither - both


def run_hot_potato(
    scenario: Optional[Scenario] = None,
    budget: int = 8,
    n_epochs: int = 4,
    amplitude: float = 0.3,
    seed: int = 0,
    interval_s: float = 60.0,
) -> ExperimentResult:
    """Oscillation and benefit erosion across link-weight epochs.

    One row per (mode, epoch): ``oscillations`` counts UGs whose realized
    ingress flipped relative to the previous epoch, ``combined_gain`` is
    the end-to-end (ingress+egress) gain over the no-TE baseline at that
    epoch, and ``erosion_frac`` its loss relative to epoch 0.
    """
    scenario = scenario or prototype_scenario(seed=0, n_ugs=400)
    epochs = LinkWeightEpochs(n_epochs=n_epochs, seed=seed, amplitude=amplitude)
    model = DirectionalModel(scenario, epochs=epochs)
    optimizer = EgressOptimizer(scenario, model)

    from repro.experiments.fig6 import painter_budget_configs

    painter_config = painter_budget_configs(scenario, [budget])[budget]
    solution = solve_communities(scenario, budget, epochs=epochs)
    router = CommunityRouting(scenario, epochs=epochs)
    # Announcement assignments are pinned at epoch 0 (solve time); later
    # epochs re-route the *network*, not the assignment — that gap is the
    # erosion being measured.
    choices = communities_choices(
        scenario, solution.announcements, epoch=0, epochs=epochs
    )

    result = ExperimentResult(
        experiment_id="hotpotato",
        title="Hot-potato link-weight epochs: ingress oscillation and benefit erosion",
        columns=["mode", "epoch", "oscillations", "combined_gain", "erosion_frac"],
    )

    trajectory = _epoch_trajectory(n_epochs, interval_s)
    painter_base: Optional[float] = None
    communities_base: Optional[float] = None
    painter_prev: Optional[Dict[int, Optional[int]]] = None
    communities_prev: Optional[Dict[int, Optional[int]]] = None
    painter_flips_total = 0
    communities_flips_total = 0

    for epoch in trajectory:
        painter_now = _painter_ingress_ids(scenario, painter_config)
        painter_gain = evaluate_coexistence(
            scenario, painter_config, model=model, epoch=epoch
        ).combined_gain
        if painter_base is None:
            painter_base = painter_gain
        painter_flips = 0 if painter_prev is None else _count_flips(painter_prev, painter_now)
        painter_flips_total += painter_flips
        result.add_row(
            "painter",
            epoch,
            painter_flips,
            painter_gain,
            0.0 if painter_base <= 0 else (painter_base - painter_gain) / painter_base,
        )
        painter_prev = painter_now

        communities_now = _communities_ingress_ids(
            scenario, router, solution.announcements, choices, epoch
        )
        communities_gain = _communities_combined_gain(
            scenario, model, optimizer, router, solution.announcements, choices, epoch
        )
        if communities_base is None:
            communities_base = communities_gain
        communities_flips = (
            0 if communities_prev is None else _count_flips(communities_prev, communities_now)
        )
        communities_flips_total += communities_flips
        result.add_row(
            "communities",
            epoch,
            communities_flips,
            communities_gain,
            0.0
            if communities_base <= 0
            else (communities_base - communities_gain) / communities_base,
        )
        communities_prev = communities_now

    result.add_note(
        f"epoch schedule: {n_epochs} epoch(s), amplitude {amplitude:g}, seed {seed}, "
        f"driven by {max(0, n_epochs - 1)} LinkWeightShift delta(s)"
    )
    result.add_note(
        f"total ingress flips — painter: {painter_flips_total}, "
        f"communities: {communities_flips_total}"
    )
    result.add_note(f"prefix/announcement budget: {budget}")
    return result
