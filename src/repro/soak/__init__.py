"""Sustained soak runs: diurnal load + storms + SLO accounting (ROADMAP 5).

The first place every subsystem runs composed: the
:class:`~repro.controller.PainterController` daemon re-solves online
under a merged stream of diurnal :class:`VolumeShift` deltas and rolling
regional PoP outages, while a :class:`SoakDriver` extension steers the
window's flow batches through the vectorized Traffic Manager data plane
and scores every user group in an :class:`SLOLedger` — p99 latency,
downtime seconds, failover-budget spend, and zero-tolerance flow
accounting.  See :mod:`repro.soak.runner` for the determinism contract.
"""

from repro.soak.load import DiurnalLoad, FlashCrowd
from repro.soak.runner import (
    SOAK_SNAPSHOT_VERSION,
    SoakConfig,
    SoakDriver,
    SoakError,
    SoakResult,
    build_soak_deltas,
    make_load,
    regional_storm,
    run_soak,
)
from repro.soak.slo import (
    DEFAULT_BUCKET_EDGES_MS,
    LEDGER_VERSION,
    SLOAccountingError,
    SLOLedger,
)

__all__ = [
    "DEFAULT_BUCKET_EDGES_MS",
    "DiurnalLoad",
    "FlashCrowd",
    "LEDGER_VERSION",
    "SLOAccountingError",
    "SLOLedger",
    "SOAK_SNAPSHOT_VERSION",
    "SoakConfig",
    "SoakDriver",
    "SoakError",
    "SoakResult",
    "build_soak_deltas",
    "make_load",
    "regional_storm",
    "run_soak",
]
