"""Per-UG SLO accounting for soak runs: the :class:`SLOLedger`.

The ledger is the soak harness's source of truth for the operational
claims PAINTER makes: every window, every user group is scored on

* **flow accounting** — offered flows must equal served + unroutable +
  shed, per UG, every window; any mismatch increments
  :attr:`SLOLedger.accounting_errors` (the CI gate requires zero);
* **latency** — served flows land in fixed log-spaced histogram buckets,
  so ``p99`` is the smallest bucket edge covering 99% of a UG's flows
  (bucketed quantiles are monotone under added latency — the property
  the hypothesis suite checks);
* **availability** — a UG is *down* for a window iff it has no live
  destination selection; ``downtime_s + uptime_s == windows * window_s``
  is a hard invariant;
* **failover-budget spend** — destination switches per UG accumulate
  against a configured budget; overspend is reported, not clamped.

The ledger's entire state round-trips through :meth:`state_dict` /
:meth:`from_state` (base64-packed numpy columns inside a JSON-ready
dict), which is both its checkpoint payload inside the controller
checkpoint and the input to :meth:`fingerprint` — a SHA-256 over the
canonical JSON encoding, the "bit-identical SLO ledger" the differential
suite compares.  Nothing wall-clock-derived is allowed in here.
"""

from __future__ import annotations

import base64
import hashlib
import json
import math
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

#: Bump when the ledger state schema changes incompatibly.
LEDGER_VERSION = 1

#: Upper edges (ms) of the latency histogram buckets: 40 log-spaced
#: buckets over [1ms, 1024ms] plus one overflow bucket.  Fixed edges make
#: bucketed quantiles comparable across runs and monotone under shifts.
DEFAULT_BUCKET_EDGES_MS = np.geomspace(1.0, 1024.0, num=41)


def _encode_array(array: np.ndarray) -> Dict[str, Any]:
    array = np.ascontiguousarray(array)
    return {
        "dtype": str(array.dtype),
        "shape": list(array.shape),
        "b64": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def _decode_array(payload: Mapping[str, Any]) -> np.ndarray:
    raw = base64.b64decode(payload["b64"])
    array = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
    return array.reshape([int(d) for d in payload["shape"]]).copy()


class SLOAccountingError(RuntimeError):
    """An SLO invariant that must never break did (test/CI surface)."""


class SLOLedger:
    """Fixed-shape numpy accounting of per-UG SLO state over a soak run."""

    def __init__(
        self,
        n_ugs: int,
        *,
        window_s: float,
        failover_budget: int = 8,
        bucket_edges_ms: Optional[np.ndarray] = None,
    ) -> None:
        if n_ugs < 0:
            raise ValueError("n_ugs must be non-negative")
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if failover_budget < 0:
            raise ValueError("failover_budget must be non-negative")
        self.n_ugs = int(n_ugs)
        self.window_s = float(window_s)
        self.failover_budget = int(failover_budget)
        edges = (
            np.asarray(bucket_edges_ms, dtype=np.float64)
            if bucket_edges_ms is not None
            else DEFAULT_BUCKET_EDGES_MS.copy()
        )
        if edges.ndim != 1 or len(edges) < 1 or np.any(np.diff(edges) <= 0):
            raise ValueError("bucket edges must be strictly increasing 1-D")
        self.bucket_edges_ms = edges
        n_buckets = len(edges) + 1  # +1 overflow
        self.offered = np.zeros(self.n_ugs, dtype=np.int64)
        self.served = np.zeros(self.n_ugs, dtype=np.int64)
        self.unroutable = np.zeros(self.n_ugs, dtype=np.int64)
        self.shed = np.zeros(self.n_ugs, dtype=np.int64)
        self.downtime_s = np.zeros(self.n_ugs, dtype=np.float64)
        self.uptime_s = np.zeros(self.n_ugs, dtype=np.float64)
        self.switches = np.zeros(self.n_ugs, dtype=np.int64)
        self.latency_hist = np.zeros((self.n_ugs, n_buckets), dtype=np.int64)
        self.windows_accounted = 0
        self.accounting_errors = 0
        #: Per-window fleet aggregates (plain ints — report table rows).
        self.window_rows: List[Dict[str, int]] = []

    # -- per-window observation ----------------------------------------------

    def observe_window(
        self,
        window: int,
        *,
        offered: np.ndarray,
        served: np.ndarray,
        unroutable: np.ndarray,
        shed: np.ndarray,
        latency_ms: np.ndarray,
        up_mask: np.ndarray,
        switches: np.ndarray,
        remaps: int = 0,
    ) -> None:
        """Fold one simulated window into the ledger.

        All arrays are per-UG (length ``n_ugs``); ``latency_ms`` is the
        latency of each UG's current selection (``inf`` when down) and
        attributes the window's served flows to one histogram bucket.
        """
        offered = np.asarray(offered, dtype=np.int64)
        served = np.asarray(served, dtype=np.int64)
        unroutable = np.asarray(unroutable, dtype=np.int64)
        shed = np.asarray(shed, dtype=np.int64)
        latency_ms = np.asarray(latency_ms, dtype=np.float64)
        up = np.asarray(up_mask, dtype=bool)
        switches = np.asarray(switches, dtype=np.int64)
        for name, arr in (
            ("offered", offered),
            ("served", served),
            ("unroutable", unroutable),
            ("shed", shed),
            ("latency_ms", latency_ms),
            ("up_mask", up),
            ("switches", switches),
        ):
            if arr.shape != (self.n_ugs,):
                raise ValueError(
                    f"{name} must have shape ({self.n_ugs},), got {arr.shape}"
                )

        mismatched = offered != served + unroutable + shed
        self.accounting_errors += int(mismatched.sum())

        self.offered += offered
        self.served += served
        self.unroutable += unroutable
        self.shed += shed
        self.downtime_s += np.where(up, 0.0, self.window_s)
        self.uptime_s += np.where(up, self.window_s, 0.0)
        self.switches += switches

        active = (served > 0) & np.isfinite(latency_ms)
        if active.any():
            rows = np.nonzero(active)[0]
            buckets = np.searchsorted(
                self.bucket_edges_ms, latency_ms[rows], side="left"
            )
            np.add.at(self.latency_hist, (rows, buckets), served[rows])

        self.windows_accounted += 1
        self.window_rows.append(
            {
                "window": int(window),
                "offered": int(offered.sum()),
                "served": int(served.sum()),
                "unroutable": int(unroutable.sum()),
                "shed": int(shed.sum()),
                "down_ugs": int((~up).sum()),
                "switches": int(switches.sum()),
                "remaps": int(remaps),
                "accounting_errors": int(mismatched.sum()),
            }
        )

    # -- queries ---------------------------------------------------------------

    def _p99_of_hist(self, hist: np.ndarray, q: float) -> Optional[float]:
        total = int(hist.sum())
        if total == 0:
            return None
        cum = np.cumsum(hist)
        idx = int(np.searchsorted(cum, math.ceil(q * total)))
        if idx >= len(self.bucket_edges_ms):
            return math.inf
        return float(self.bucket_edges_ms[idx])

    def p99_ms(self, ug: Optional[int] = None, q: float = 0.99) -> Optional[float]:
        """Bucketed q-quantile latency (smallest covering bucket edge).

        ``None`` with no served flows; ``inf`` when the quantile falls in
        the overflow bucket.  Fleet-wide when ``ug`` is omitted.
        """
        hist = (
            self.latency_hist.sum(axis=0)
            if ug is None
            else self.latency_hist[int(ug)]
        )
        return self._p99_of_hist(hist, q)

    @property
    def wall_window_s(self) -> float:
        """Total simulated wall time every UG has been accounted for."""
        return self.windows_accounted * self.window_s

    def budget_overspend(self) -> np.ndarray:
        """Per-UG switches beyond the failover budget (>= 0)."""
        return np.maximum(self.switches - self.failover_budget, 0)

    def check_invariants(self) -> None:
        """Raise :class:`SLOAccountingError` if a hard invariant broke."""
        wall = self.wall_window_s
        total = self.downtime_s + self.uptime_s
        if not np.allclose(total, wall):
            worst = int(np.argmax(np.abs(total - wall)))
            raise SLOAccountingError(
                f"UG {worst}: downtime+uptime {total[worst]:.3f}s != "
                f"wall window {wall:.3f}s"
            )
        if np.any(self.offered != self.served + self.unroutable + self.shed):
            raise SLOAccountingError("cumulative flow accounting mismatch")
        if self.accounting_errors:
            raise SLOAccountingError(
                f"{self.accounting_errors} per-window accounting errors"
            )

    def summary(self) -> Dict[str, Any]:
        """Fleet-level digest (JSON-ready; includes the fingerprint)."""
        p99 = self.p99_ms()
        return {
            "ugs": self.n_ugs,
            "windows": self.windows_accounted,
            "window_s": self.window_s,
            "offered": int(self.offered.sum()),
            "served": int(self.served.sum()),
            "unroutable": int(self.unroutable.sum()),
            "shed": int(self.shed.sum()),
            "accounting_errors": int(self.accounting_errors),
            "fleet_p99_ms": None if p99 is None else float(p99),
            "total_downtime_s": float(self.downtime_s.sum()),
            "ugs_with_downtime": int((self.downtime_s > 0).sum()),
            "switches": int(self.switches.sum()),
            "failover_budget": self.failover_budget,
            "budget_violations": int((self.budget_overspend() > 0).sum()),
            "fingerprint": self.fingerprint(),
        }

    # -- state round-trip ------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Complete JSON-ready state (checkpoint payload + fingerprint input)."""
        return {
            "version": LEDGER_VERSION,
            "n_ugs": self.n_ugs,
            "window_s": self.window_s,
            "failover_budget": self.failover_budget,
            "bucket_edges_ms": _encode_array(self.bucket_edges_ms),
            "offered": _encode_array(self.offered),
            "served": _encode_array(self.served),
            "unroutable": _encode_array(self.unroutable),
            "shed": _encode_array(self.shed),
            "downtime_s": _encode_array(self.downtime_s),
            "uptime_s": _encode_array(self.uptime_s),
            "switches": _encode_array(self.switches),
            "latency_hist": _encode_array(self.latency_hist),
            "windows_accounted": self.windows_accounted,
            "accounting_errors": self.accounting_errors,
            "window_rows": list(self.window_rows),
        }

    @classmethod
    def from_state(cls, payload: Mapping[str, Any]) -> "SLOLedger":
        version = payload.get("version")
        if version != LEDGER_VERSION:
            raise ValueError(f"unsupported ledger version {version!r}")
        ledger = cls(
            int(payload["n_ugs"]),
            window_s=float(payload["window_s"]),
            failover_budget=int(payload["failover_budget"]),
            bucket_edges_ms=_decode_array(payload["bucket_edges_ms"]),
        )
        ledger.offered = _decode_array(payload["offered"])
        ledger.served = _decode_array(payload["served"])
        ledger.unroutable = _decode_array(payload["unroutable"])
        ledger.shed = _decode_array(payload["shed"])
        ledger.downtime_s = _decode_array(payload["downtime_s"])
        ledger.uptime_s = _decode_array(payload["uptime_s"])
        ledger.switches = _decode_array(payload["switches"])
        ledger.latency_hist = _decode_array(payload["latency_hist"])
        ledger.windows_accounted = int(payload["windows_accounted"])
        ledger.accounting_errors = int(payload["accounting_errors"])
        ledger.window_rows = [dict(row) for row in payload["window_rows"]]
        return ledger

    def fingerprint(self) -> str:
        """SHA-256 of the canonical JSON state — the bit-identity the
        differential suite compares across seeds, planes, and crashes."""
        canonical = json.dumps(
            self.state_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()
