"""Diurnal load generation for soak runs: a pure function of (seed, window).

Real ingress traffic breathes: every metro follows a local-time activity
curve (evening peak, pre-dawn trough), and occasionally one metro spikes
far above its curve — a flash crowd.  :class:`DiurnalLoad` models both
deterministically, so a soak run can be replayed bit-identically and a
killed soak can resume mid-day and regenerate exactly the flow batches it
already offered (flow keys depend only on the per-window seed, which is
what lets the driver end a window's flows ``flow_lifetime`` windows later
without storing a single key).

Everything here is derived from the scenario and the seed — no wall
clock, no mutable state.  ``multipliers(w)`` → per-UG demand multiplier
for window *w*; ``volumes(w)`` → absolute per-UG volumes;
``batch(w)`` → the :class:`~repro.traffic_manager.dataplane.FlowBatch`
offered during window *w*; ``volume_deltas()`` → the
:class:`~repro.controller.deltas.VolumeShift` stream that tells the
controller what the load model is doing (top movers only — the
controller sees aggregated telemetry, not every UG every window).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.controller.deltas import Delta, VolumeShift
from repro.traffic_manager.dataplane import FlowBatch

#: Peak-to-trough shape: local activity peaks at 20:00 and bottoms at 08:00.
_PEAK_HOUR = 20.0
#: Demand multipliers never collapse to zero — even a sleeping metro
#: trickles traffic.
_MIN_MULTIPLIER = 0.05


@dataclass(frozen=True)
class FlashCrowd:
    """One metro's demand spiking ``multiplier``× for a window span."""

    metro: str
    start_window: int
    duration_windows: int
    multiplier: float

    @property
    def end_window(self) -> int:
        return self.start_window + self.duration_windows

    def active(self, window: int) -> bool:
        return self.start_window <= window < self.end_window


class DiurnalLoad:
    """Seeded per-metro diurnal demand with flash crowds.

    ``window_s`` is the simulated span of one controller iteration;
    window *w* covers ``[w * window_s, (w + 1) * window_s)`` of simulated
    time.  The diurnal phase of a UG comes from its metro's longitude
    (15° per hour), so a soak over a world-spanning scenario always has
    some metros peaking while others trough — the load the controller
    re-solves under is never flat.
    """

    def __init__(
        self,
        scenario,
        *,
        seed: int = 0,
        windows: int = 24,
        window_s: float = 3600.0,
        base_arrivals: int = 10_000,
        amplitude: float = 0.5,
        flash_crowds: int = 1,
        flash_multiplier_range=(3.0, 6.0),
        flash_duration_range=(1, 3),
        mean_flow_bytes: float = 1500.0,
    ) -> None:
        if windows < 1:
            raise ValueError("windows must be >= 1")
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if base_arrivals < 0:
            raise ValueError("base_arrivals must be non-negative")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if flash_crowds < 0:
            raise ValueError("flash_crowds must be non-negative")
        self._seed = int(seed)
        self.windows = int(windows)
        self.window_s = float(window_s)
        self.base_arrivals = int(base_arrivals)
        self.amplitude = float(amplitude)
        self.mean_flow_bytes = float(mean_flow_bytes)
        ugs = list(scenario.user_groups)
        self.n_ugs = len(ugs)
        self._base_volumes = np.array([ug.volume for ug in ugs], dtype=np.float64)
        self._ug_lon = np.array(
            [ug.metro.location.lon for ug in ugs], dtype=np.float64
        )
        self._ug_metro = [ug.metro.name for ug in ugs]
        self._ug_ids = [int(ug.ug_id) for ug in ugs]
        metros = sorted({name for name in self._ug_metro})
        self.crowds: List[FlashCrowd] = self._draw_crowds(
            metros,
            flash_crowds,
            flash_multiplier_range,
            flash_duration_range,
        )
        # Per-crowd UG membership masks, computed once.
        self._crowd_masks = [
            np.array([m == crowd.metro for m in self._ug_metro], dtype=bool)
            for crowd in self.crowds
        ]

    def _draw_crowds(
        self,
        metros: Sequence[str],
        n: int,
        multiplier_range,
        duration_range,
    ) -> List[FlashCrowd]:
        if not n or not metros or self.windows < 2:
            return []
        rng = np.random.default_rng([self._seed, 0xF1A5])
        crowds = []
        for _ in range(n):
            metro = metros[int(rng.integers(0, len(metros)))]
            duration = int(rng.integers(duration_range[0], duration_range[1] + 1))
            start = int(rng.integers(1, max(2, self.windows - duration)))
            multiplier = float(rng.uniform(*multiplier_range))
            crowds.append(
                FlashCrowd(
                    metro=metro,
                    start_window=start,
                    duration_windows=duration,
                    multiplier=multiplier,
                )
            )
        return crowds

    # -- the demand curve ----------------------------------------------------

    def local_hours(self, window: int) -> np.ndarray:
        """Per-UG local hour-of-day at the start of ``window``."""
        utc_hours = window * self.window_s / 3600.0
        return (utc_hours + self._ug_lon / 15.0) % 24.0

    def multipliers(self, window: int) -> np.ndarray:
        """Per-UG demand multiplier for ``window`` (pure in seed, window)."""
        hours = self.local_hours(window)
        phase = 2.0 * math.pi * (hours - (_PEAK_HOUR - 6.0)) / 24.0
        mult = 1.0 + self.amplitude * np.sin(phase)
        for crowd, mask in zip(self.crowds, self._crowd_masks):
            if crowd.active(window):
                mult = np.where(mask, mult * crowd.multiplier, mult)
        return np.maximum(mult, _MIN_MULTIPLIER)

    def volumes(self, window: int) -> np.ndarray:
        """Absolute per-UG traffic volumes during ``window``."""
        return self._base_volumes * self.multipliers(window)

    def arrivals(self, window: int) -> int:
        """New-flow arrivals offered during ``window``."""
        if not self.base_arrivals or not self.n_ugs:
            return 0
        weights = self._base_volumes
        total = float(weights.sum())
        if total <= 0:
            mean_mult = float(self.multipliers(window).mean())
        else:
            mean_mult = float((weights * self.multipliers(window)).sum() / total)
        return int(round(self.base_arrivals * mean_mult))

    def batch_seed(self, window: int) -> int:
        """The per-window synthesis seed (splitmix-style integer mix)."""
        mixed = (self._seed * 0x9E3779B97F4A7C15 + (window + 1) * 0xBF58476D1CE4E5B9)
        return mixed % (2**32)

    def batch(self, window: int) -> FlowBatch:
        """The flow batch offered during ``window`` — keys are a pure
        function of (seed, window, arrivals), so the same batch can be
        regenerated later to end its flows."""
        volumes = self.volumes(window)
        total = float(volumes.sum())
        weights = volumes if total > 0 else None
        return FlowBatch.synthesize(
            self.arrivals(window),
            seed=self.batch_seed(window),
            n_services=max(1, self.n_ugs),
            service_weights=weights,
            mean_bytes=self.mean_flow_bytes,
        )

    # -- the controller's view -----------------------------------------------

    def volume_deltas(self, shifts_per_window: int = 16) -> List[Delta]:
        """Top-mover :class:`VolumeShift` stream at every window boundary.

        Emits the ``shifts_per_window`` UGs whose demand multiplier moved
        most between consecutive windows (ties broken by UG id), at least
        one per boundary — the alignment invariant the soak runner checks
        (every boundary must produce a delta bucket so controller
        iteration *k* always simulates window *k*).
        """
        if shifts_per_window < 1:
            raise ValueError("shifts_per_window must be >= 1")
        deltas: List[Delta] = []
        prev = self.multipliers(0)
        for window in range(1, self.windows):
            now = self.multipliers(window)
            change = np.abs(now - prev) / np.maximum(prev, 1e-9)
            k = min(shifts_per_window, self.n_ugs)
            order = sorted(range(self.n_ugs), key=lambda i: (-change[i], i))
            volumes = self._base_volumes * now
            at_s = window * self.window_s
            for i in order[:k]:
                deltas.append(
                    VolumeShift(
                        at_s=at_s,
                        ug_id=self._ug_ids[i],
                        volume=float(volumes[i]),
                    )
                )
            prev = now
        return deltas
