"""The soak harness: a simulated day through every subsystem at once.

:func:`run_soak` composes the pieces the repo has grown separately into
one long-running scenario:

* :class:`~repro.soak.load.DiurnalLoad` generates per-metro diurnal
  demand with flash crowds and the :class:`VolumeShift` stream the
  controller re-solves under;
* :func:`regional_storm` schedules rolling regional PoP outages
  (:class:`repro.faults.PopOutage`), translated through
  :func:`repro.controller.deltas_from_fault_schedule` into the same
  stream;
* the :class:`repro.controller.PainterController` daemon ingests the
  merged stream — one timestamp bucket per simulated window — and
  warm-re-solves online with crash-safe checkpointing;
* a :class:`SoakDriver` (a :class:`repro.controller.ControllerExtension`)
  rides every iteration: it drives the
  :class:`~repro.traffic_manager.dataplane.VectorFlowTable` data plane
  with the window's flow batch, steers per-UG destination selection
  through a hysteretic :class:`SelectorBank`, fails flows over off dead
  prefixes, and folds the window into an :class:`SLOLedger`.

Alignment invariant: window *k* spans ``[k·window_s, (k+1)·window_s)``
and is simulated by controller iteration *k*; the delta stream must have
exactly one timestamp bucket per boundary ``k·window_s`` (k ≥ 1), which
the load model guarantees and :func:`run_soak` verifies — storm events
are snapped to window boundaries so they merge into existing buckets.

Determinism contract: everything that feeds the journal, the checkpoint,
or the ledger is a pure function of the seed; wall-clock readings only
feed the metrics registry and the throughput figures on
:class:`SoakResult`.  Identical seeds therefore produce byte-identical
journals and bit-identical ledger fingerprints — including across a
SIGKILL/resume cycle, because the driver's full state (data plane,
selector bank, ledger) rides the controller checkpoint.
"""

from __future__ import annotations

import json
import os
import random
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

import numpy as np

from repro.controller import (
    ControllerConfig,
    ControllerExtension,
    ControllerResult,
    Delta,
    PainterController,
    deltas_from_fault_schedule,
    group_deltas,
)
from repro.core.advertisement import AdvertisementConfig
from repro.core.orchestrator import OrchestratorConfig
from repro.faults.events import PopOutage
from repro.faults.schedule import FaultSchedule
from repro.soak.load import DiurnalLoad
from repro.soak.slo import SLOLedger, _decode_array, _encode_array
from repro.telemetry import METRICS, TRACER
from repro.traffic_manager.dataplane import (
    FlowBatch,
    ScalarDataPlane,
    VectorFlowTable,
    plane_from_snapshot,
)
from repro.traffic_manager.selection import SelectorBank

PathLike = Union[str, Path]

#: Bump when the driver's checkpoint payload schema changes incompatibly.
SOAK_SNAPSHOT_VERSION = 1


class SoakError(RuntimeError):
    """Soak configuration or alignment failure."""


@dataclass(frozen=True)
class SoakConfig:
    """Everything that parameterizes one :func:`run_soak`."""

    #: Scenario preset (``tiny`` / ``prototype`` / ``azure`` / ``mega``).
    preset: str = "tiny"
    seed: int = 0
    #: Simulated windows (= controller iterations); one simulated day is
    #: ``windows * window_s`` seconds.
    windows: int = 24
    #: Simulated seconds per window.
    window_s: float = 3600.0
    #: Base new-flow arrivals per window (scaled by the diurnal curve).
    arrivals_per_window: int = 10_000
    #: Windows a flow lives before it ends (0 = flows never end).
    flow_lifetime_windows: int = 2
    prefix_budget: int = 4
    #: Data plane: ``vector`` (production) or ``scalar`` (oracle).
    plane: str = "vector"
    #: Top-mover VolumeShifts emitted per window boundary.
    shifts_per_window: int = 8
    #: Regions hit by the rolling storm (0 = calm weather).
    storm_regions: int = 1
    #: Windows each PoP in a stormed region stays dark.
    storm_outage_windows: int = 2
    #: Diurnal curve peak-to-mean amplitude.
    amplitude: float = 0.5
    flash_crowds: int = 1
    #: Admission cap per window (None = unlimited); overflow is shed.
    admit_cap: Optional[int] = None
    #: Destination switches per UG the SLO budget allows.
    failover_budget: int = 8
    #: Cold-verify the warm solver every N iterations (0 = never).
    verify_every: int = 0
    #: Run the orchestrator's measurement round each iteration.
    observe: bool = False
    #: Install changed configs through the Traffic Manager.
    install: bool = True
    mean_flow_bytes: float = 1500.0
    checkpoint_keep: int = 3
    #: Write the Prometheus metrics textfile here after every window.
    prom_path: Optional[str] = None
    #: Crash injection (SIGKILL) for recovery tests — see ControllerConfig.
    crash_at: Optional[int] = None
    crash_point: str = "before_checkpoint"
    #: Stop after this many iterations (None = the whole day); a later
    #: run over the same checkpoint dir resumes where this one stopped.
    stop_after: Optional[int] = None

    def __post_init__(self) -> None:
        if self.windows < 1:
            raise ValueError("windows must be >= 1")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.plane not in ("vector", "scalar"):
            raise ValueError("plane must be 'vector' or 'scalar'")
        if self.flow_lifetime_windows < 0:
            raise ValueError("flow_lifetime_windows must be non-negative")
        if self.admit_cap is not None and self.admit_cap < 0:
            raise ValueError("admit_cap must be non-negative")
        if self.storm_regions < 0:
            raise ValueError("storm_regions must be non-negative")

    @property
    def day_s(self) -> float:
        return self.windows * self.window_s


def _make_scenario(cfg: SoakConfig):
    from repro.scenario import (
        azure_scenario,
        mega_scenario,
        prototype_scenario,
        tiny_scenario,
    )

    presets = {
        "tiny": tiny_scenario,
        "prototype": prototype_scenario,
        "azure": azure_scenario,
        "mega": mega_scenario,
    }
    try:
        builder = presets[cfg.preset]
    except KeyError:
        raise SoakError(f"unknown preset {cfg.preset!r}") from None
    return builder(seed=cfg.seed)


def make_load(scenario, cfg: SoakConfig) -> DiurnalLoad:
    return DiurnalLoad(
        scenario,
        seed=cfg.seed,
        windows=cfg.windows,
        window_s=cfg.window_s,
        base_arrivals=cfg.arrivals_per_window,
        amplitude=cfg.amplitude,
        flash_crowds=cfg.flash_crowds,
        mean_flow_bytes=cfg.mean_flow_bytes,
    )


def regional_storm(
    scenario,
    *,
    seed: int,
    windows: int,
    window_s: float,
    regions: int = 1,
    outage_windows: int = 2,
    stagger_windows: int = 1,
) -> FaultSchedule:
    """A seeded rolling regional outage storm, snapped to window boundaries.

    Picks up to ``regions`` cloud regions (always leaving at least one
    region untouched so the deployment never goes fully dark) and rolls a
    :class:`PopOutage` across each chosen region's PoPs, staggered
    ``stagger_windows`` apart.  Every outage starts and heals exactly on
    a window boundary no later than ``windows - 1``, so its deltas merge
    into the load model's existing timestamp buckets instead of creating
    misaligned ones.
    """
    if regions < 1 or windows < 3:
        return FaultSchedule()
    by_region: Dict[str, List[str]] = {}
    for pop in scenario.deployment.pops:
        by_region.setdefault(pop.metro.region, []).append(pop.name)
    region_names = sorted(by_region)
    if len(region_names) < 2:
        return FaultSchedule()  # a single-region world has no safe storm
    rng = random.Random(seed)
    chosen = rng.sample(region_names, min(regions, len(region_names) - 1))
    events: List[PopOutage] = []
    for region in sorted(chosen):
        pops = sorted(by_region[region])
        first = rng.randrange(1, max(2, windows - outage_windows))
        for i, pop_name in enumerate(pops):
            start = first + i * stagger_windows
            end = min(start + outage_windows, windows - 1)
            if start >= windows - 1 or end <= start:
                continue
            events.append(
                PopOutage(
                    start_s=start * window_s,
                    pop_name=pop_name,
                    duration_s=(end - start) * window_s,
                )
            )
    return FaultSchedule(events=tuple(events))


class SoakDriver(ControllerExtension):
    """The soak co-processor: data plane + selection + SLO accounting.

    Rides every controller iteration (= one simulated window).  All state
    that matters for resume — the flow table, the selector bank, the
    ledger, the per-UG switch counters — is snapshot into and restored
    from the controller checkpoint; the throughput accumulators
    (:attr:`flows_forwarded`, :attr:`forward_wall_s`) are deliberately
    wall-clock-derived and excluded.
    """

    def __init__(self, scenario, cfg: SoakConfig, load: DiurnalLoad) -> None:
        self._scenario = scenario
        self._cfg = cfg
        self._load = load
        self._ugs = list(scenario.user_groups)
        self._n = len(self._ugs)
        self._plane = (
            VectorFlowTable() if cfg.plane == "vector" else ScalarDataPlane()
        )
        self._bank = SelectorBank()
        self._ledger = SLOLedger(
            self._n,
            window_s=cfg.window_s,
            failover_budget=cfg.failover_budget,
        )
        self._prev_switches = np.zeros(self._n, dtype=np.int64)
        self.flows_forwarded = 0
        self.forward_wall_s = 0.0
        self.remaps = 0
        self.flows_moved = 0

    @property
    def ledger(self) -> SLOLedger:
        return self._ledger

    @property
    def plane(self):
        return self._plane

    @property
    def bank(self) -> SelectorBank:
        return self._bank

    # -- per-window work -------------------------------------------------------

    @staticmethod
    def prefix_label(peering_ids) -> str:
        """Content-addressed data-plane name for a config prefix — stable
        across re-solves, unlike per-config prefix indices."""
        return "px-" + "-".join(str(p) for p in sorted(peering_ids))

    def _latency_columns(self, config: AdvertisementConfig, disabled):
        """(names, matrix) — per-prefix live-latency columns, deduped by
        content label (first occurrence wins)."""
        names: List[str] = []
        columns: List[np.ndarray] = []
        seen = set()
        routing = self._scenario.routing
        for pid in config.prefixes:
            peerings = config.peerings_for(pid)
            name = self.prefix_label(peerings)
            if name in seen:
                continue
            seen.add(name)
            live = frozenset(p for p in peerings if p not in disabled)
            col = np.full(self._n, np.inf)
            if live:
                for i, ug in enumerate(self._ugs):
                    latency = routing.latency_for(ug, live)
                    if latency is not None:
                        col[i] = latency
            names.append(name)
            columns.append(col)
        if columns:
            matrix = np.column_stack(columns)
        else:
            matrix = np.zeros((self._n, 0))
        return names, matrix

    def _admitted_batch(self, window: int) -> FlowBatch:
        """The batch actually admitted during ``window`` (cap applied)."""
        batch = self._load.batch(window)
        cap = self._cfg.admit_cap
        if cap is not None and len(batch) > cap:
            batch = FlowBatch(
                keys=batch.keys[:cap],
                service_ids=batch.service_ids[:cap],
                payload_bytes=batch.payload_bytes[:cap],
            )
        return batch

    def after_iteration(
        self, iteration: int, config: AdvertisementConfig, controller
    ) -> None:
        window = iteration
        cfg = self._cfg
        n = self._n
        with TRACER.span("soak.window", window=window):
            disabled = controller.orchestrator.disabled_peerings
            names, matrix = self._latency_columns(config, disabled)
            col_of = {name: j for j, name in enumerate(names)}
            selections = self._bank.update_matrix(names, matrix)

            # Failover: flows pinned to a destination with no live route
            # move, replay-style, onto the fleet's most popular live
            # destination (deterministic tie-break by name).
            live_names = {
                names[j]
                for j in range(len(names))
                if np.isfinite(matrix[:, j]).any()
            }
            remaps = 0
            moved = 0
            if live_names:
                votes: Dict[str, int] = {}
                for chosen in selections.values():
                    if chosen in live_names:
                        votes[chosen] = votes.get(chosen, 0) + 1
                if votes:
                    target = min(votes, key=lambda k: (-votes[k], k))
                else:
                    target = min(live_names)
                for dead, count in sorted(self._plane.destinations().items()):
                    if dead not in live_names and dead != target and count:
                        moved += self._plane.remap(dead, target)
                        remaps += 1
            self.remaps += remaps
            self.flows_moved += moved

            # Offer the window's arrivals (flash-crowd overflow is shed).
            full = self._load.batch(window)
            offered = np.bincount(
                full.service_ids, minlength=n
            ).astype(np.int64)
            batch = self._admitted_batch(window)
            shed = np.zeros(n, dtype=np.int64)
            if len(batch) < len(full):
                shed = np.bincount(
                    full.service_ids[len(batch):], minlength=n
                ).astype(np.int64)
            started = time.perf_counter()
            fr = self._plane.forward(
                batch, selections, now_s=window * cfg.window_s
            )
            elapsed = time.perf_counter() - started
            self.flows_forwarded += len(batch)
            self.forward_wall_s += elapsed

            served = np.bincount(
                batch.service_ids[fr.assignments >= 0], minlength=n
            ).astype(np.int64)
            unroutable = np.bincount(
                batch.service_ids[fr.assignments < 0], minlength=n
            ).astype(np.int64)

            # Expire flows admitted flow_lifetime windows ago — the load
            # model regenerates that window's keys instead of storing them.
            ended = 0
            lifetime = cfg.flow_lifetime_windows
            if lifetime and window >= lifetime:
                ended = self._plane.end(
                    self._admitted_batch(window - lifetime).keys
                )

            # Fold the window into the ledger.
            latency = np.full(n, np.inf)
            up = np.zeros(n, dtype=bool)
            for sid, chosen in selections.items():
                if chosen is not None:
                    up[sid] = True
                    latency[sid] = matrix[sid, col_of[chosen]]
            switches_now = np.fromiter(
                (self._bank.selector(i).switch_count for i in range(n)),
                dtype=np.int64,
                count=n,
            )
            switch_delta = switches_now - self._prev_switches
            self._prev_switches = switches_now
            self._ledger.observe_window(
                window,
                offered=offered,
                served=served,
                unroutable=unroutable,
                shed=shed,
                latency_ms=latency,
                up_mask=up,
                switches=switch_delta,
                remaps=remaps,
            )

            # Deterministic journal record of the window.
            journal = controller.journal
            if journal is not None:
                journal.event(
                    "soak_window",
                    window=window,
                    offered=int(offered.sum()),
                    served=int(served.sum()),
                    unroutable=int(unroutable.sum()),
                    shed=int(shed.sum()),
                    ended=int(ended),
                    remapped=int(moved),
                    live_flows=int(self._plane.flow_count()),
                    down_ugs=int((~up).sum()),
                    switches=int(switch_delta.sum()),
                    accounting_errors=int(self._ledger.accounting_errors),
                )

            # Live telemetry (wall-clock values allowed here, and only here).
            METRICS.gauge("soak.window").set(window)
            METRICS.counter("soak.flows_offered").add(int(offered.sum()))
            METRICS.counter("soak.flows_served").add(int(served.sum()))
            METRICS.counter("soak.flows_unroutable").add(int(unroutable.sum()))
            METRICS.counter("soak.flows_shed").add(int(shed.sum()))
            METRICS.counter("soak.flows_remapped").add(moved)
            METRICS.gauge("soak.live_flows").set(self._plane.flow_count())
            METRICS.gauge("soak.down_ugs").set(int((~up).sum()))
            METRICS.gauge("soak.accounting_errors").set(
                self._ledger.accounting_errors
            )
            if elapsed > 0:
                METRICS.gauge("soak.forward_flows_per_s").set(
                    len(batch) / elapsed
                )
            if cfg.prom_path:
                self._export_prometheus(cfg.prom_path)

    @staticmethod
    def _export_prometheus(path: str) -> None:
        """Atomic textfile export (node_exporter textfile-collector style)."""
        target = Path(path)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(METRICS.to_prometheus())
        os.replace(tmp, target)

    # -- checkpoint round-trip -------------------------------------------------

    def _plane_state(self) -> Dict[str, Any]:
        if isinstance(self._plane, VectorFlowTable):
            return self._plane.to_packed_snapshot()
        return self._plane.to_snapshot()

    def snapshot(self) -> Dict[str, Any]:
        return {
            "version": SOAK_SNAPSHOT_VERSION,
            "plane": self._plane_state(),
            "bank": self._bank.to_snapshot(),
            "ledger": self._ledger.state_dict(),
            "prev_switches": _encode_array(self._prev_switches),
        }

    def restore(self, payload: Mapping[str, Any]) -> None:
        version = payload.get("version")
        if version != SOAK_SNAPSHOT_VERSION:
            raise SoakError(f"unsupported soak snapshot version {version!r}")
        plane_state = payload["plane"]
        if plane_state.get("kind") == "vector-packed":
            self._plane = VectorFlowTable.from_packed_snapshot(plane_state)
        else:
            self._plane = plane_from_snapshot(plane_state)
        self._bank = SelectorBank.from_snapshot(payload["bank"])
        self._ledger = SLOLedger.from_state(payload["ledger"])
        self._prev_switches = _decode_array(payload["prev_switches"])


@dataclass
class SoakResult:
    """What one :func:`run_soak` produced."""

    config: SoakConfig
    controller: ControllerResult
    ledger: SLOLedger
    flows_forwarded: int = 0
    forward_wall_s: float = 0.0
    remaps: int = 0
    flows_moved: int = 0
    deltas: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def flows_per_s(self) -> float:
        """Data-plane steering throughput (forward() wall time only)."""
        if self.forward_wall_s <= 0:
            return 0.0
        return self.flows_forwarded / self.forward_wall_s

    def summary(self) -> Dict[str, Any]:
        digest = self.ledger.summary()
        digest.update(
            {
                "preset": self.config.preset,
                "seed": self.config.seed,
                "plane": self.config.plane,
                "day_s": self.config.day_s,
                "iterations": self.controller.iterations_run,
                "resumed_from": self.controller.resumed_from,
                "deltas": self.deltas,
                "flows_forwarded": self.flows_forwarded,
                "flows_per_s": self.flows_per_s,
                "flows_moved": self.flows_moved,
                "journal_path": str(self.controller.journal_path),
            }
        )
        return digest

    def write_slo_report(self, path: PathLike) -> None:
        """Persist the full ledger state + digest as JSON (crash-safe)."""
        document = {
            "kind": "painter-soak-slo",
            "summary": self.summary(),
            "ledger": self.ledger.state_dict(),
        }
        target = Path(path)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, target)


def build_soak_deltas(scenario, cfg: SoakConfig, load: Optional[DiurnalLoad] = None):
    """The merged, boundary-aligned delta stream for one soak run."""
    load = load if load is not None else make_load(scenario, cfg)
    deltas: List[Delta] = load.volume_deltas(cfg.shifts_per_window)
    storm = (
        regional_storm(
            scenario,
            seed=cfg.seed,
            windows=cfg.windows,
            window_s=cfg.window_s,
            regions=cfg.storm_regions,
            outage_windows=cfg.storm_outage_windows,
        )
        if cfg.storm_regions
        else FaultSchedule()
    )
    deltas = deltas + deltas_from_fault_schedule(storm)
    deltas.sort(key=lambda d: d.at_s)  # stable: shifts before pop events
    if cfg.windows > 1:
        expected = [w * cfg.window_s for w in range(1, cfg.windows)]
        got = [at_s for at_s, _bucket in group_deltas(deltas)]
        if got != expected:
            raise SoakError(
                "delta stream is not window-aligned: expected buckets at "
                f"{expected[:3]}…, got {got[:3]}…"
            )
    return deltas, storm


def run_soak(
    cfg: SoakConfig,
    checkpoint_dir: Optional[PathLike] = None,
    *,
    scenario=None,
) -> SoakResult:
    """Run (or resume) one soak over a simulated day.

    With no ``checkpoint_dir`` the run is self-contained in a temporary
    directory; pass one to enable SIGKILL/resume — a directory holding a
    durable checkpoint resumes instead of starting over.
    """
    if checkpoint_dir is None:
        with tempfile.TemporaryDirectory(prefix="soak-") as tmp:
            return run_soak(cfg, tmp, scenario=scenario)
    scenario = scenario if scenario is not None else _make_scenario(cfg)
    load = make_load(scenario, cfg)
    deltas, storm = build_soak_deltas(scenario, cfg, load)
    driver = SoakDriver(scenario, cfg, load)
    max_iterations = cfg.windows
    if cfg.stop_after is not None:
        max_iterations = min(max_iterations, cfg.stop_after)
    controller = PainterController(
        scenario,
        OrchestratorConfig(prefix_budget=cfg.prefix_budget),
        ControllerConfig(
            checkpoint_dir=checkpoint_dir,
            checkpoint_keep=cfg.checkpoint_keep,
            verify_every=cfg.verify_every,
            observe=cfg.observe,
            install=cfg.install,
            max_iterations=max_iterations,
            run_name="soak",
            crash_at_seq=cfg.crash_at,
            crash_point=cfg.crash_point,
        ),
        deltas,
        extension=driver,
    )
    try:
        controller_result = controller.run()
    finally:
        controller.close()
    result = SoakResult(
        config=cfg,
        controller=controller_result,
        ledger=driver.ledger,
        flows_forwarded=driver.flows_forwarded,
        forward_wall_s=driver.forward_wall_s,
        remaps=driver.remaps,
        flows_moved=driver.flows_moved,
        deltas=len(deltas),
    )
    outages = sum(1 for e in storm.events if isinstance(e, PopOutage))
    result.notes.append(
        f"storm: {outages} rolling PoP outages across "
        f"{cfg.storm_regions} region(s); "
        f"{len(load.crowds)} flash crowd(s)"
    )
    return result
