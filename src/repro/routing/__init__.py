"""Ground-truth routing oracle used by experiments and the learning loop."""

from repro.routing.ground_truth import GroundTruthRouting

__all__ = ["GroundTruthRouting"]
