"""Ground truth: which ingress a UG *actually* uses for an advertisement.

The Advertisement Orchestrator can only predict ingresses; reality is
decided by every AS on the path.  This oracle composes three layers:

1. **AS-level BGP** — propagate the advertisement over the AS graph; the
   UG's AS picks a best route, fixing the neighbor AS through which traffic
   enters the cloud.
2. **Exit policy inside the entering AS** — among that AS's *advertised*
   peerings, hot-potato ASes exit nearest the traffic source, while
   cold-potato ASes drag traffic to a preferred exit regardless of source.
   The latter reproduces the paper's observed pathologies ("many New York
   users preferred an ingress in Amsterdam"), concentrated at transit
   providers.
3. **Latency** — the ground-truth latency model evaluated at the chosen
   peering.

The orchestrator never sees layers 1-2 directly; it observes outcomes one
advertisement at a time and must learn the hidden preferences (§3.1).
"""

from __future__ import annotations

from repro.util import stable_rng
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.bgp.route import Route
from repro.bgp.simulator import BGPSimulator
from repro.measurement.latency_model import LatencyModel
from repro.perf import PERF
from repro.topology.builder import CLOUD_ASN, Topology
from repro.topology.cloud import Peering
from repro.topology.geo import haversine_km
from repro.usergroups.usergroup import UserGroup

#: Marks a memo slot that has not been computed (``None`` means "no route").
_UNSET = object()


class GroundTruthRouting:
    """Oracle mapping (UG, advertised peering set) -> actual ingress."""

    def __init__(
        self,
        topology: Topology,
        latency_model: LatencyModel,
        seed: int = 0,
        cold_potato_prob_transit: float = 0.45,
        cold_potato_prob_other: float = 0.15,
    ) -> None:
        self._topology = topology
        self._model = latency_model
        self._seed = seed
        self._sim = BGPSimulator(topology.graph, CLOUD_ASN, tie_break_seed=seed)
        self._cold_transit = cold_potato_prob_transit
        self._cold_other = cold_potato_prob_other
        self._propagation_cache: Dict[FrozenSet[int], Dict[int, Route]] = {}
        self._exit_policy_cache: Dict[int, bool] = {}
        self._exit_rank_cache: Dict[int, Dict[str, float]] = {}
        self._all_peering_ids = frozenset(p.peering_id for p in topology.deployment.peerings)
        # Routing here is deterministic and the oracle is immutable, so the
        # full decision (layers 1+2) memoizes per (UG, advertised set) and
        # the chosen latency per (UG, advertised set, day) — shared by
        # execute_and_observe, realized_benefit, and best_prefix_choices,
        # which all query identical sets.
        self._group_cache: Dict[FrozenSet[int], Dict[int, List[Peering]]] = {}
        self._ingress_cache: Dict[Tuple[int, FrozenSet[int]], Optional[int]] = {}
        self._latency_cache: Dict[Tuple[int, FrozenSet[int], int], Optional[float]] = {}
        self._ingress_stats = PERF.cache("ground_truth.ingress")
        self._latency_stats = PERF.cache("ground_truth.latency")
        self._propagation_stats = PERF.cache("ground_truth.propagation")

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def latency_model(self) -> LatencyModel:
        return self._model

    @property
    def seed(self) -> int:
        """Seed of the hidden tie-break / exit-policy state."""
        return self._seed

    @property
    def anycast_peering_ids(self) -> FrozenSet[int]:
        """The default configuration D: the anycast prefix via every peering."""
        return self._all_peering_ids

    # -- layer 1: AS-level propagation --------------------------------------

    def _routes_for(
        self,
        peer_asns: FrozenSet[int],
        prepend: Optional[Dict[int, int]] = None,
    ) -> Dict[int, Route]:
        # Zero-count prepend entries are dropped from the cache key so a
        # "prepend x0" announcement shares the plain announcement's cache
        # entry (and is therefore bit-identical to it by construction).
        prepend_items: Tuple[Tuple[int, int], ...] = ()
        if prepend:
            prepend_items = tuple(sorted((a, n) for a, n in prepend.items() if n > 0))
        key = peer_asns if not prepend_items else (peer_asns, prepend_items)
        cached = self._propagation_cache.get(key)
        if cached is None:
            self._propagation_stats.misses += 1
            cached = self._sim.propagate(
                "prefix", sorted(peer_asns), prepend=dict(prepend_items) or None
            )
            self._propagation_cache[key] = cached
        else:
            self._propagation_stats.hits += 1
        return cached

    def _entering_asn(
        self,
        ug: UserGroup,
        peer_asns: FrozenSet[int],
        prepend: Optional[Dict[int, int]] = None,
    ) -> Optional[int]:
        routes = self._routes_for(peer_asns, prepend=prepend)
        route = routes.get(ug.asn)
        if route is None:
            return None
        # as_path ends at the cloud; the AS before it is the entry neighbor.
        if len(route.as_path) == 1:  # UG's AS peers directly and was announced to
            return ug.asn
        return route.as_path[-2]

    def entering_asn_for(
        self,
        ug: UserGroup,
        peer_asns: FrozenSet[int],
        prepend: Optional[Dict[int, int]] = None,
    ) -> Optional[int]:
        """The neighbor AS ``ug``'s traffic enters the cloud through.

        Public hook for layers (e.g. community-based inbound TE) that alter
        the AS-level announcement — ``prepend`` maps a peer ASN to a prepend
        count on that session — but reuse this oracle's hidden tie-breaks.
        """
        return self._entering_asn(ug, peer_asns, prepend=prepend)

    def as_path(
        self, ug: UserGroup, advertised: Iterable[int]
    ) -> Optional[Tuple[int, ...]]:
        """AS path (UG's AS exclusive, cloud inclusive) for this advertisement."""
        peerings = self._resolve(advertised)
        peer_asns = frozenset(p.peer_asn for p in peerings)
        if not peer_asns:
            return None
        routes = self._routes_for(peer_asns)
        route = routes.get(ug.asn)
        return None if route is None else route.as_path

    # -- layer 2: exit policy -------------------------------------------------

    def _is_cold_potato(self, asn: int) -> bool:
        cached = self._exit_policy_cache.get(asn)
        if cached is None:
            asys = self._topology.graph.get_as(asn) if asn in self._topology.graph else None
            prob = (
                self._cold_transit
                if asys is not None and asys.is_transit
                else self._cold_other
            )
            cached = stable_rng(self._seed, "cold", asn).random() < prob
            self._exit_policy_cache[asn] = cached
        return cached

    def _exit_rank(self, asn: int) -> Dict[str, float]:
        """Cold-potato ASes have a fixed preference over PoP exits."""
        cached = self._exit_rank_cache.get(asn)
        if cached is None:
            rng = stable_rng(self._seed, "exit-rank", asn)
            pops = sorted(pop.name for pop in self._topology.deployment.pops)
            ranks = list(range(len(pops)))
            rng.shuffle(ranks)
            cached = {name: float(rank) for name, rank in zip(pops, ranks)}
            self._exit_rank_cache[asn] = cached
        return cached

    def _choose_exit(
        self, ug: UserGroup, entering_asn: int, candidates: Sequence[Peering]
    ) -> Peering:
        if len(candidates) == 1:
            return candidates[0]
        if self._is_cold_potato(entering_asn):
            ranks = self._exit_rank(entering_asn)
            return min(candidates, key=lambda p: (ranks[p.pop.name], p.peering_id))
        # Hot potato: nearest exit to the traffic source, with a small hidden
        # per-(AS, UG-AS, PoP) wobble standing in for IGP detail.
        def hot_key(peering: Peering) -> Tuple[float, int]:
            rng = stable_rng(self._seed, "hot", entering_asn, ug.asn, peering.pop.name)
            wobble = 1.0 + rng.uniform(-0.15, 0.15)
            return (haversine_km(ug.location, peering.pop.location) * wobble, peering.peering_id)

        return min(candidates, key=hot_key)

    def choose_exit(
        self, ug: UserGroup, entering_asn: int, candidates: Sequence[Peering]
    ) -> Peering:
        """Public exit-policy hook (same hidden state as :meth:`ingress_for`).

        Given that ``ug``'s traffic enters via ``entering_asn`` and that AS
        sees ``candidates`` advertised, return the peering it exits through.
        """
        return self._choose_exit(ug, entering_asn, candidates)

    # -- public API -------------------------------------------------------------

    def _resolve(self, advertised: Iterable[int]) -> List[Peering]:
        deployment = self._topology.deployment
        return [deployment.peering(pid) for pid in advertised]

    def _grouped(self, advertised: FrozenSet[int]) -> Dict[int, List[Peering]]:
        by_asn = self._group_cache.get(advertised)
        if by_asn is None:
            by_asn = {}
            for peering in self._resolve(advertised):
                by_asn.setdefault(peering.peer_asn, []).append(peering)
            self._group_cache[advertised] = by_asn
        return by_asn

    def ingress_for(self, ug: UserGroup, advertised: Iterable[int]) -> Optional[Peering]:
        """The peering ``ug``'s traffic actually enters through, or ``None``.

        ``advertised`` is the set of peering ids a single prefix is announced
        via.  ``None`` means the UG has no route to that prefix.
        """
        if not isinstance(advertised, frozenset):
            advertised = frozenset(advertised)
        key = (ug.ug_id, advertised)
        cached = self._ingress_cache.get(key, _UNSET)
        if cached is not _UNSET:
            self._ingress_stats.hits += 1
            if cached is None:
                return None
            return self._topology.deployment.peering(cached)
        self._ingress_stats.misses += 1
        ingress = self._ingress_for_uncached(ug, advertised)
        self._ingress_cache[key] = None if ingress is None else ingress.peering_id
        return ingress

    def _ingress_for_uncached(
        self, ug: UserGroup, advertised: FrozenSet[int]
    ) -> Optional[Peering]:
        if not advertised:
            return None
        by_asn = self._grouped(advertised)
        entering = self._entering_asn(ug, frozenset(by_asn))
        if entering is None:
            return None
        return self._choose_exit(ug, entering, by_asn[entering])

    def latency_for(
        self, ug: UserGroup, advertised: Iterable[int], day: int = 0
    ) -> Optional[float]:
        """True latency via the actually-chosen ingress; ``None`` if no route."""
        if not isinstance(advertised, frozenset):
            advertised = frozenset(advertised)
        key = (ug.ug_id, advertised, day)
        cached = self._latency_cache.get(key, _UNSET)
        if cached is not _UNSET:
            self._latency_stats.hits += 1
            return cached
        self._latency_stats.misses += 1
        ingress = self.ingress_for(ug, advertised)
        value = None if ingress is None else self._model.latency_ms(ug, ingress, day=day)
        self._latency_cache[key] = value
        return value

    # -- anycast (the default configuration D) ---------------------------------

    def anycast_ingress(self, ug: UserGroup) -> Optional[Peering]:
        return self.ingress_for(ug, self._all_peering_ids)

    def anycast_latency_ms(self, ug: UserGroup, day: int = 0) -> Optional[float]:
        return self.latency_for(ug, self._all_peering_ids, day=day)

    def default_as_path(self, ug: UserGroup) -> Optional[Tuple[int, ...]]:
        """AS path of the UG's anycast (default) route, cloud inclusive."""
        return self.as_path(ug, self._all_peering_ids)
