"""Small shared utilities."""

from __future__ import annotations

import random
from typing import Tuple


def stable_rng(*key: object) -> random.Random:
    """A deterministic RNG derived from a structured key.

    ``random.Random`` accepts string seeds (hashed with SHA-512 internally,
    unaffected by ``PYTHONHASHSEED``), so rendering the key via ``repr``
    gives stable streams across processes and platforms.
    """
    return random.Random(repr(key))


def percentile(sorted_values, fraction: float) -> float:
    """Linear-interpolated percentile of an ascending-sorted sequence."""
    if not sorted_values:
        raise ValueError("no values")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0,1]")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = fraction * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    weight = position - low
    return float(sorted_values[low] * (1.0 - weight) + sorted_values[high] * weight)
