"""Compatibility shim: the perf registry now lives in ``repro.telemetry``.

This module used to implement the counter/cache/timer registry.  That
implementation moved to :mod:`repro.telemetry.metrics`, which extends it
with gauges, fixed-bucket histograms, and Prometheus text export.  Every
name this module ever exported is re-exported here unchanged, and
:data:`PERF` *is* the :data:`repro.telemetry.metrics.METRICS` singleton —
existing call sites (``from repro.perf import PERF``) keep sharing one
registry with the new telemetry layer.

New code should import from :mod:`repro.telemetry` directly::

    from repro.telemetry import METRICS          # was: from repro.perf import PERF
    from repro.telemetry import MetricsRegistry  # was: PerfRegistry

See docs/API.md ("Migrating from repro.perf") for the full mapping.
"""

from __future__ import annotations

from repro.telemetry.metrics import (
    METRICS,
    CacheStats,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimerStats,
)

#: Historical aliases — ``PerfRegistry``/``PERF`` predate the telemetry
#: subsystem.  They are the same objects, not copies.
PerfRegistry = MetricsRegistry
PERF = METRICS

__all__ = [
    "CacheStats",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "PERF",
    "PerfRegistry",
    "TimerStats",
]
