"""Lightweight instrumentation: counters, timers, and cache statistics.

Algorithm 1's ranked scan is the hot path of the whole reproduction —
every learning iteration re-evaluates ``marginal()`` across peerings ×
affected UGs — so its caches and evaluation counts are worth measuring,
not guessing at.  This module is the single place that measurement lives:

* :class:`Counter` — a named monotonic event count (e.g. how many times
  the orchestrator evaluated a marginal benefit);
* :class:`CacheStats` — hit/miss accounting for one named cache (the
  latency matrix, the candidate-ingress memo, the ground-truth memo);
* :class:`TimerStats` — accumulated wall-clock over a named region;
* :class:`PerfRegistry` — the registry that owns all of the above and
  renders them (fixed-width text for the CLI, Markdown for reports).

Hot code asks the registry for a stat object **once** and then mutates a
plain attribute (``counter.value += 1``), so instrumentation costs an
attribute increment, not a dict lookup plus allocation.  ``reset()``
zeroes stats *in place*, keeping every handed-out reference valid.

The module-level :data:`PERF` registry is what the production code uses;
tests that need isolation can construct their own registry or call
``PERF.reset()``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional


class Counter:
    """A named monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class CacheStats:
    """Hit/miss accounting for one named cache."""

    __slots__ = ("name", "hits", "misses", "invalidations")

    def __init__(self, name: str) -> None:
        self.name = name
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __repr__(self) -> str:
        return (
            f"CacheStats({self.name!r}, hits={self.hits}, misses={self.misses}, "
            f"invalidations={self.invalidations})"
        )


class TimerStats:
    """Accumulated wall-clock time over a named region."""

    __slots__ = ("name", "calls", "total_s")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.total_s = 0.0

    def add(self, elapsed_s: float) -> None:
        self.calls += 1
        self.total_s += elapsed_s

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0

    def reset(self) -> None:
        self.calls = 0
        self.total_s = 0.0

    def __repr__(self) -> str:
        return f"TimerStats({self.name!r}, calls={self.calls}, total_s={self.total_s:.3f})"


class PerfRegistry:
    """Owns every named counter/cache/timer and renders them.

    Stat objects are created on first request and survive :meth:`reset`
    (which zeroes them in place), so hot paths can hold direct references
    across resets.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._caches: Dict[str, CacheStats] = {}
        self._timers: Dict[str, TimerStats] = {}

    # -- stat acquisition ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        stat = self._counters.get(name)
        if stat is None:
            stat = self._counters[name] = Counter(name)
        return stat

    def cache(self, name: str) -> CacheStats:
        stat = self._caches.get(name)
        if stat is None:
            stat = self._caches[name] = CacheStats(name)
        return stat

    def timer(self, name: str) -> TimerStats:
        stat = self._timers.get(name)
        if stat is None:
            stat = self._timers[name] = TimerStats(name)
        return stat

    @contextmanager
    def timed(self, name: str) -> Iterator[TimerStats]:
        """``with PERF.timed("solve"): ...`` — accumulate the block's time."""
        stat = self.timer(name)
        start = time.perf_counter()
        try:
            yield stat
        finally:
            stat.add(time.perf_counter() - start)

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Zero every stat in place (handed-out references stay valid)."""
        for stat in self._counters.values():
            stat.reset()
        for cache in self._caches.values():
            cache.reset()
        for timer in self._timers.values():
            timer.reset()

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` from another registry (e.g. a parallel
        experiment worker process) into this one, summing every stat."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += int(value)
        for name, stats in snapshot.get("caches", {}).items():
            cache = self.cache(name)
            cache.hits += int(stats.get("hits", 0))
            cache.misses += int(stats.get("misses", 0))
            cache.invalidations += int(stats.get("invalidations", 0))
        for name, stats in snapshot.get("timers", {}).items():
            timer = self.timer(name)
            timer.calls += int(stats.get("calls", 0))
            timer.total_s += float(stats.get("total_s", 0.0))

    # -- inspection ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data view of every stat (JSON-serializable)."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "caches": {
                name: {
                    "hits": s.hits,
                    "misses": s.misses,
                    "invalidations": s.invalidations,
                    "hit_rate": s.hit_rate,
                }
                for name, s in sorted(self._caches.items())
            },
            "timers": {
                name: {"calls": t.calls, "total_s": t.total_s, "mean_s": t.mean_s}
                for name, t in sorted(self._timers.items())
            },
        }

    def _active(self) -> bool:
        snap = self.snapshot()
        return bool(
            any(snap["counters"].values())
            or any(c["hits"] or c["misses"] for c in snap["caches"].values())
            or any(t["calls"] for t in snap["timers"].values())
        )

    def render(self) -> str:
        """Fixed-width text report for terminals."""
        lines: List[str] = ["== performance counters =="]
        if not self._active():
            lines.append("(no activity recorded)")
            return "\n".join(lines)
        if any(c.value for c in self._counters.values()):
            lines.append("-- counters --")
            width = max(len(n) for n in self._counters)
            for name, counter in sorted(self._counters.items()):
                lines.append(f"{name.ljust(width)}  {counter.value}")
        live_caches = {n: s for n, s in self._caches.items() if s.lookups or s.invalidations}
        if live_caches:
            lines.append("-- caches --")
            width = max(len(n) for n in live_caches)
            for name, s in sorted(live_caches.items()):
                lines.append(
                    f"{name.ljust(width)}  hits {s.hits}  misses {s.misses}  "
                    f"hit-rate {100 * s.hit_rate:.1f}%  invalidations {s.invalidations}"
                )
        live_timers = {n: t for n, t in self._timers.items() if t.calls}
        if live_timers:
            lines.append("-- timers --")
            width = max(len(n) for n in live_timers)
            for name, t in sorted(live_timers.items()):
                lines.append(
                    f"{name.ljust(width)}  calls {t.calls}  total {t.total_s:.3f}s  "
                    f"mean {1000 * t.mean_s:.2f}ms"
                )
        return "\n".join(lines)

    def to_markdown(self, title: str = "Performance counters") -> str:
        """Markdown section for inclusion in generated reports."""
        lines = [f"## {title}", ""]
        if not self._active():
            lines.append("*No instrumented activity recorded.*")
            lines.append("")
            return "\n".join(lines)
        if any(c.value for c in self._counters.values()):
            lines.append("| counter | value |")
            lines.append("|---|---|")
            for name, counter in sorted(self._counters.items()):
                lines.append(f"| {name} | {counter.value} |")
            lines.append("")
        live_caches = {n: s for n, s in self._caches.items() if s.lookups or s.invalidations}
        if live_caches:
            lines.append("| cache | hits | misses | hit rate | invalidations |")
            lines.append("|---|---|---|---|---|")
            for name, s in sorted(live_caches.items()):
                lines.append(
                    f"| {name} | {s.hits} | {s.misses} | {100 * s.hit_rate:.1f}% "
                    f"| {s.invalidations} |"
                )
            lines.append("")
        live_timers = {n: t for n, t in self._timers.items() if t.calls}
        if live_timers:
            lines.append("| timer | calls | total (s) | mean (ms) |")
            lines.append("|---|---|---|---|")
            for name, t in sorted(live_timers.items()):
                lines.append(
                    f"| {name} | {t.calls} | {t.total_s:.3f} | {1000 * t.mean_s:.2f} |"
                )
            lines.append("")
        return "\n".join(lines)


#: The process-wide registry used by instrumented production code.
PERF = PerfRegistry()
