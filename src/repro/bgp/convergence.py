"""BGP convergence dynamics: reachability gaps and update churn.

Figure 10 contrasts PAINTER's RTT-timescale failover against the anycast
prefix's behaviour after a PoP withdrawal: roughly one second of
unreachability, then ~15 seconds of path exploration visible as a spike of
RIPE RIS updates before latency settles.  This module models that process —
path exploration governed by an MRAI-like timer and the number of alternate
paths — so the failover experiment can regenerate the update-count series.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.telemetry import TRACER, emit_event


@dataclass(frozen=True)
class ConvergenceConfig:
    """Parameters of the convergence process.

    Defaults follow the magnitudes reported in the paper and the literature
    it cites [57, 116]: second-scale loss, tens of seconds of churn.
    """

    #: Minimum route advertisement interval (seconds) pacing exploration.
    mrai_s: float = 2.5
    #: How many alternate paths are explored before settling.
    exploration_depth: int = 6
    #: Time until the first alternate route is installed (loss window).
    reachability_gap_s: float = 1.0
    #: Updates emitted per exploration round at the peak.
    peak_updates_per_round: int = 18
    #: Exponential decay of update volume per round.
    update_decay: float = 0.6
    #: Latency penalty (ms) while on exploratory (longer) paths.
    transient_inflation_ms: float = 25.0

    def __post_init__(self) -> None:
        if self.mrai_s <= 0:
            raise ValueError("mrai_s must be positive")
        if self.exploration_depth < 1:
            raise ValueError("exploration_depth must be >= 1")
        if not 0 < self.update_decay < 1:
            raise ValueError("update_decay must be in (0,1)")


@dataclass(frozen=True)
class ConvergenceEvent:
    """One observable step of the convergence process."""

    time_s: float
    updates: int
    reachable: bool
    latency_penalty_ms: float


@dataclass
class ConvergenceTrace:
    """The full post-withdrawal timeline for one prefix."""

    withdrawal_time_s: float
    events: List[ConvergenceEvent]

    @property
    def reconvergence_time_s(self) -> float:
        """Absolute time at which the final path is installed."""
        return self.events[-1].time_s if self.events else self.withdrawal_time_s

    @property
    def loss_duration_s(self) -> float:
        """How long the prefix was unreachable."""
        for event in self.events:
            if event.reachable:
                return event.time_s - self.withdrawal_time_s
        return math.inf

    @property
    def total_updates(self) -> int:
        return sum(event.updates for event in self.events)

    def updates_in_window(self, start_s: float, end_s: float) -> int:
        return sum(e.updates for e in self.events if start_s <= e.time_s < end_s)

    def latency_penalty_at(self, time_s: float) -> float:
        """Extra latency (ms) the prefix carries at ``time_s``; inf if down."""
        if time_s < self.withdrawal_time_s:
            return 0.0
        penalty = math.inf
        for event in self.events:
            if event.time_s <= time_s:
                penalty = event.latency_penalty_ms if event.reachable else math.inf
            else:
                break
        return penalty

    def is_reachable_at(self, time_s: float) -> bool:
        return self.latency_penalty_at(time_s) != math.inf


def simulate_withdrawal(
    withdrawal_time_s: float,
    config: ConvergenceConfig = ConvergenceConfig(),
    seed: int = 0,
) -> ConvergenceTrace:
    """Model the churn after a prefix is withdrawn from one of its origins.

    The prefix stays advertised elsewhere (anycast), so it reconverges: a
    loss window while the withdrawal floods, then rounds of path exploration
    spaced by the MRAI timer, each shorter-lived and quieter than the last,
    each carrying transient latency inflation that fades as the final path
    is selected.
    """
    conv_cm = TRACER.span(
        "bgp.convergence", withdrawal_time_s=withdrawal_time_s, seed=seed
    )
    conv_span = conv_cm.__enter__()
    rng = random.Random(seed)
    events: List[ConvergenceEvent] = []

    # The withdrawal itself is an update burst with no reachability.
    events.append(
        ConvergenceEvent(
            time_s=withdrawal_time_s,
            updates=max(1, int(config.peak_updates_per_round * 0.5)),
            reachable=False,
            latency_penalty_ms=math.inf,
        )
    )

    time_s = withdrawal_time_s + config.reachability_gap_s * rng.uniform(0.8, 1.2)
    for round_idx in range(config.exploration_depth):
        decay = config.update_decay**round_idx
        updates = max(1, int(rng.gauss(config.peak_updates_per_round * decay, 2.0)))
        # Penalty shrinks as exploration homes in on the final path.
        remaining = (config.exploration_depth - 1 - round_idx) / max(
            1, config.exploration_depth - 1
        )
        penalty = config.transient_inflation_ms * remaining
        events.append(
            ConvergenceEvent(
                time_s=time_s,
                updates=updates,
                reachable=True,
                latency_penalty_ms=penalty,
            )
        )
        time_s += config.mrai_s * rng.uniform(0.8, 1.3)

    trace = ConvergenceTrace(withdrawal_time_s=withdrawal_time_s, events=events)
    conv_span.tag("total_updates", trace.total_updates)
    conv_span.tag("loss_duration_s", trace.loss_duration_s)
    conv_cm.__exit__(None, None, None)
    emit_event(
        "bgp_convergence",
        withdrawal_time_s=withdrawal_time_s,
        total_updates=trace.total_updates,
        loss_duration_s=trace.loss_duration_s,
        reconvergence_time_s=trace.reconvergence_time_s,
    )
    return trace


def churn_series(
    trace: ConvergenceTrace, start_s: float, end_s: float, bin_s: float = 1.0
) -> List[Tuple[float, int]]:
    """Bin a trace's updates into a (time, count) series for plotting."""
    if bin_s <= 0:
        raise ValueError("bin_s must be positive")
    series: List[Tuple[float, int]] = []
    t = start_s
    while t < end_s:
        series.append((t, trace.updates_in_window(t, t + bin_s)))
        t += bin_s
    return series
