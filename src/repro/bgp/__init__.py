"""BGP substrate: routes, policy, propagation, convergence dynamics."""

from repro.bgp.convergence import (
    ConvergenceConfig,
    ConvergenceEvent,
    ConvergenceTrace,
    churn_series,
    simulate_withdrawal,
)
from repro.bgp.flap_damping import (
    DampingConfig,
    FlapDampingState,
    learning_iteration_pacing_s,
    safe_update_interval_s,
)
from repro.bgp.route import Route, better_route, decision_key, may_export
from repro.bgp.simulator import BGPSimulator

__all__ = [
    "BGPSimulator",
    "DampingConfig",
    "FlapDampingState",
    "learning_iteration_pacing_s",
    "safe_update_interval_s",
    "ConvergenceConfig",
    "ConvergenceEvent",
    "ConvergenceTrace",
    "Route",
    "better_route",
    "churn_series",
    "decision_key",
    "may_export",
    "simulate_withdrawal",
]
