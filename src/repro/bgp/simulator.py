"""AS-level BGP propagation to a fixed point.

Given an origin AS announcing a prefix to a chosen subset of its neighbors
(PAINTER's selective advertisements), the simulator propagates routes over
the AS graph under Gao-Rexford policy until no AS changes its best route.
The result answers, for every AS, "do you have a route to this prefix, and
through which neighbor sequence does it reach the cloud?" — the ground truth
the Advertisement Orchestrator can only observe one advertisement at a time.
"""

from __future__ import annotations

from repro.util import stable_rng
from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.bgp.route import Route, better_route, may_export
from repro.topology.asn import Relationship
from repro.topology.graph import ASGraph


class BGPSimulator:
    """Propagates one origin's announcements over an :class:`ASGraph`.

    ``tie_break_seed`` fixes the hidden per-(AS, neighbor) preferences that
    stand in for IGP metrics and operator policy.  Two simulators over the
    same graph and seed are fully deterministic.
    """

    def __init__(self, graph: ASGraph, origin_asn: int, tie_break_seed: int = 0) -> None:
        if origin_asn not in graph:
            raise KeyError(f"origin AS{origin_asn} not in graph")
        self._graph = graph
        self._origin = origin_asn
        self._seed = tie_break_seed
        self._tie_cache: Dict[Tuple[int, int], float] = {}

    @property
    def origin_asn(self) -> int:
        return self._origin

    def _tie(self, asn: int, neighbor: int) -> float:
        """Hidden, stable preference of ``asn`` for routes via ``neighbor``."""
        key = (asn, neighbor)
        cached = self._tie_cache.get(key)
        if cached is None:
            cached = stable_rng(self._seed, asn, neighbor).random()
            self._tie_cache[key] = cached
        return cached

    def propagate(
        self,
        prefix: str,
        announce_to: Iterable[int],
        prepend: Optional[Dict[int, int]] = None,
        communities: Optional[Dict[int, Tuple[str, ...]]] = None,
    ) -> Dict[int, Route]:
        """Announce ``prefix`` to the neighbor ASNs in ``announce_to``.

        Returns each AS's best route (ASes with no route are absent).  The
        origin itself is not included.  Raises if any target is not actually
        a neighbor of the origin.  ``prepend`` optionally maps a neighbor ASN
        to an AS-path prepend count applied on that session, making routes
        through it less attractive downstream (an advertisement attribute
        prior work uses to expose even more paths).  ``communities``
        optionally maps a neighbor ASN to the community strings tagged on
        that session; tags ride along transitively but do not themselves
        affect the decision process (interpreting layers model their
        effects explicitly, e.g. via ``prepend``).
        """
        targets = list(dict.fromkeys(announce_to))
        origin_neighbors = self._graph.neighbors(self._origin)
        for asn in targets:
            if asn not in origin_neighbors:
                raise ValueError(f"AS{asn} is not a neighbor of origin AS{self._origin}")
        prepend = prepend or {}
        communities = communities or {}

        best: Dict[int, Route] = {}
        work: deque = deque()

        for asn in targets:
            rel = self._graph.relationship(asn, self._origin)
            assert rel is not None
            route = Route(
                prefix=prefix,
                as_path=(self._origin,),
                relationship=rel,
                prepend=prepend.get(asn, 0),
                communities=communities.get(asn, ()),
            )
            if self._install(best, asn, route):
                work.append(asn)

        while work:
            asn = work.popleft()
            route = best.get(asn)
            if route is None:
                continue
            rel_to_source = route.relationship
            for neighbor, rel_of_neighbor in self._graph.neighbors(asn).items():
                if neighbor == self._origin:
                    continue
                if not may_export(rel_to_source, rel_of_neighbor):
                    continue
                if route.contains_asn(neighbor):
                    continue
                neighbor_rel = self._graph.relationship(neighbor, asn)
                assert neighbor_rel is not None
                candidate = route.extend_through(asn, neighbor_rel)
                if self._install(best, neighbor, candidate):
                    work.append(neighbor)
        return best

    def _install(self, best: Dict[int, Route], asn: int, candidate: Route) -> bool:
        current = best.get(asn)
        cand_tie = self._tie(asn, candidate.learned_from)
        cur_tie = self._tie(asn, current.learned_from) if current is not None else 0.0
        if better_route(candidate, cand_tie, current, cur_tie):
            best[asn] = candidate
            return True
        return False

    # -- queries over a propagation result ---------------------------------

    def reachable_ases(self, prefix: str, announce_to: Iterable[int]) -> FrozenSet[int]:
        return frozenset(self.propagate(prefix, announce_to))

    def entry_neighbor(self, routes: Dict[int, Route], asn: int) -> Optional[int]:
        """The cloud-adjacent AS on ``asn``'s path, i.e. where traffic enters.

        For a stub AS this is the last AS before the origin on its best path
        (which may be the stub itself if it peers directly).
        """
        route = routes.get(asn)
        if route is None:
            return None
        # as_path ends at the origin; the entry neighbor precedes it.
        if len(route.as_path) == 1:
            return asn
        return route.as_path[-2]

    def as_path_to_origin(self, routes: Dict[int, Route], asn: int) -> Optional[Tuple[int, ...]]:
        """Full AS path from ``asn`` (exclusive) to the origin (inclusive)."""
        route = routes.get(asn)
        if route is None:
            return None
        return route.as_path
