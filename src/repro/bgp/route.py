"""BGP route objects and the per-AS decision process.

The decision process implements the standard steps that matter at AS level:
highest local preference (Gao-Rexford, by neighbor relationship), shortest AS
path, then a deterministic per-AS tie-break.  The tie-break is seeded
randomness standing in for IGP distances and operator knobs — precisely the
hidden state PAINTER's routing model must learn (§3.1: "since it is difficult
to predict ingresses ... we learn from incorrect assumptions over time").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.topology.asn import LOCAL_PREFERENCE, Relationship


@dataclass(frozen=True)
class Route:
    """A BGP route to ``prefix`` as held by some AS.

    ``as_path`` starts at the AS holding the route's neighbor and ends at the
    origin (the cloud).  ``learned_from`` is the neighbor ASN the route was
    received from (the first element of ``as_path``); ``relationship`` is that
    neighbor's relationship from the holder's perspective.  ``prepend``
    counts artificial repetitions of the origin ASN (AS-path prepending, an
    advertisement attribute the origin may use to deter a path); it lengthens
    the path for the decision process without polluting ``as_path``.

    ``communities`` carries the origin's BGP community tags on the session
    the route was originally announced over.  Communities are transitive
    here (no AS scrubs them), so a tag attached at the origin is visible to
    every downstream AS — the observability property action-community
    inbound TE relies on.  They never enter the decision process directly;
    their *effects* (prepending, selective announcement, MED) are modelled
    explicitly by the layers that interpret them.
    """

    prefix: str
    as_path: Tuple[int, ...]
    relationship: Relationship
    prepend: int = 0
    communities: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.as_path:
            raise ValueError("as_path must be non-empty")
        if len(set(self.as_path)) != len(self.as_path):
            raise ValueError(f"as_path contains a loop: {self.as_path}")
        if self.prepend < 0:
            raise ValueError("prepend must be non-negative")
        if any(not isinstance(c, str) or not c for c in self.communities):
            raise ValueError(f"communities must be non-empty strings: {self.communities!r}")

    @property
    def learned_from(self) -> int:
        return self.as_path[0]

    @property
    def origin_asn(self) -> int:
        return self.as_path[-1]

    @property
    def local_preference(self) -> int:
        return LOCAL_PREFERENCE[self.relationship]

    @property
    def path_length(self) -> int:
        return len(self.as_path) + self.prepend

    def contains_asn(self, asn: int) -> bool:
        return asn in self.as_path

    def extend_through(self, asn: int, relationship: Relationship) -> "Route":
        """The route as seen by a neighbor that learns it from ``asn``.

        ``relationship`` is *the neighbor's* relationship to ``asn``.
        """
        if asn in self.as_path:
            raise ValueError(f"loop: AS{asn} already on path {self.as_path}")
        return Route(
            prefix=self.prefix,
            as_path=(asn,) + self.as_path,
            relationship=relationship,
            prepend=self.prepend,
            communities=self.communities,
        )


def decision_key(route: Route, tie_break: float) -> Tuple[int, int, float, Tuple[int, ...]]:
    """Sort key for the BGP decision process; the *minimum* key wins.

    Order: higher local-pref first, then shorter AS path, then the hidden
    per-(AS, neighbor) tie-break, then the path itself for determinism.
    """
    return (-route.local_preference, route.path_length, tie_break, route.as_path)


def better_route(
    a: Route,
    a_tie: float,
    b: Optional[Route],
    b_tie: float,
) -> bool:
    """Whether ``a`` beats ``b`` under the decision process (b may be None)."""
    if b is None:
        return True
    return decision_key(a, a_tie) < decision_key(b, b_tie)


def may_export(relationship_to_source: Relationship, relationship_to_target: Relationship) -> bool:
    """Gao-Rexford export rule.

    A route learned from a customer is exported to everyone; a route learned
    from a peer or provider is exported only to customers.
    """
    if relationship_to_source is Relationship.CUSTOMER:
        return True
    return relationship_to_target is Relationship.CUSTOMER
