"""Route-flap damping and advertisement pacing.

Algorithm 1's outer loop is slow by necessity: "it takes time to test each
configuration to avoid route flap damping" (§3.1).  RFC 2439-style damping
assigns each (prefix, peer) a penalty that jumps on every re-advertisement
or withdrawal and decays exponentially with a half-life; routes whose
penalty exceeds a suppression threshold are ignored until it decays below a
reuse threshold.  This module models that process and computes how long an
orchestrator must pace its configuration changes to stay un-suppressed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Conventional damping parameters (Cisco defaults, RFC 2439 flavor).
DEFAULT_FLAP_PENALTY = 1000.0
DEFAULT_WITHDRAWAL_PENALTY = 1000.0
DEFAULT_SUPPRESS_THRESHOLD = 2000.0
DEFAULT_REUSE_THRESHOLD = 750.0
DEFAULT_HALF_LIFE_S = 900.0  # 15 minutes
DEFAULT_MAX_PENALTY = 12000.0


@dataclass(frozen=True)
class DampingConfig:
    flap_penalty: float = DEFAULT_FLAP_PENALTY
    withdrawal_penalty: float = DEFAULT_WITHDRAWAL_PENALTY
    suppress_threshold: float = DEFAULT_SUPPRESS_THRESHOLD
    reuse_threshold: float = DEFAULT_REUSE_THRESHOLD
    half_life_s: float = DEFAULT_HALF_LIFE_S
    max_penalty: float = DEFAULT_MAX_PENALTY

    def __post_init__(self) -> None:
        if self.half_life_s <= 0:
            raise ValueError("half_life_s must be positive")
        if not 0 < self.reuse_threshold < self.suppress_threshold:
            raise ValueError("need 0 < reuse_threshold < suppress_threshold")
        if self.max_penalty < self.suppress_threshold:
            raise ValueError("max_penalty must exceed suppress_threshold")


class FlapDampingState:
    """Per-(prefix, peer) damping as a remote router would apply it."""

    def __init__(self, config: Optional[DampingConfig] = None) -> None:
        self._config = config or DampingConfig()
        #: (prefix, peer_asn) -> (penalty, last_update_time_s, suppressed)
        self._state: Dict[Tuple[str, int], Tuple[float, float, bool]] = {}

    @property
    def config(self) -> DampingConfig:
        return self._config

    def _decayed(self, key: Tuple[str, int], now_s: float) -> Tuple[float, bool]:
        penalty, last_s, suppressed = self._state.get(key, (0.0, now_s, False))
        if now_s < last_s:
            raise ValueError("time moved backwards")
        decay = 0.5 ** ((now_s - last_s) / self._config.half_life_s)
        penalty *= decay
        if suppressed and penalty < self._config.reuse_threshold:
            suppressed = False
        return penalty, suppressed

    def record_flap(self, prefix: str, peer_asn: int, now_s: float, withdrawal: bool = False) -> None:
        """Register a re-advertisement (or withdrawal) event."""
        key = (prefix, peer_asn)
        penalty, suppressed = self._decayed(key, now_s)
        penalty += (
            self._config.withdrawal_penalty if withdrawal else self._config.flap_penalty
        )
        penalty = min(penalty, self._config.max_penalty)
        if penalty >= self._config.suppress_threshold:
            suppressed = True
        self._state[key] = (penalty, now_s, suppressed)

    def penalty(self, prefix: str, peer_asn: int, now_s: float) -> float:
        return self._decayed((prefix, peer_asn), now_s)[0]

    def is_suppressed(self, prefix: str, peer_asn: int, now_s: float) -> bool:
        return self._decayed((prefix, peer_asn), now_s)[1]

    def time_until_reusable_s(self, prefix: str, peer_asn: int, now_s: float) -> float:
        """Seconds until the route decays below the reuse threshold."""
        penalty, suppressed = self._decayed((prefix, peer_asn), now_s)
        if not suppressed:
            return 0.0
        ratio = penalty / self._config.reuse_threshold
        return self._config.half_life_s * math.log2(ratio)


def safe_update_interval_s(
    flaps_per_update: int = 1, config: Optional[DampingConfig] = None
) -> float:
    """Minimum pacing between configuration changes that never suppresses.

    If each configuration change flaps a (prefix, peer) ``flaps_per_update``
    times, the steady-state peak penalty of updates paced T apart is
    ``flaps * flap_penalty / (1 - 2^(-T/half_life))``; solving for the
    largest penalty below the suppression threshold gives the minimum safe T.
    """
    cfg = config or DampingConfig()
    if flaps_per_update < 1:
        raise ValueError("flaps_per_update must be >= 1")
    per_update = flaps_per_update * cfg.flap_penalty
    if per_update >= cfg.suppress_threshold:
        # A single update already suppresses; no pacing can prevent it.
        return math.inf
    # Steady-state peak = per_update / (1 - d) where d = 2^(-T/half_life);
    # require peak < suppress  =>  d < 1 - per_update / suppress.
    d_max = 1.0 - per_update / cfg.suppress_threshold
    return -cfg.half_life_s * math.log2(d_max)


def learning_iteration_pacing_s(
    prefix_count: int,
    config: Optional[DampingConfig] = None,
    flaps_per_update: int = 1,
) -> float:
    """How long one Algorithm 1 outer-loop iteration must take.

    Each iteration re-advertises every prefix once; pacing each prefix's
    change by :func:`safe_update_interval_s` and pipelining across prefixes
    means the iteration takes at least one safe interval overall, plus the
    per-prefix computation time the paper reports (~30 s/prefix).
    """
    if prefix_count < 1:
        raise ValueError("prefix_count must be >= 1")
    compute_s = 30.0 * prefix_count  # paper: ~30 seconds per prefix
    return max(safe_update_interval_s(flaps_per_update, config), compute_s)
