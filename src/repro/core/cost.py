"""Advertisement cost accounting.

Prefixes are the scarce resource PAINTER economizes (§2.4): IPv4 /24s trade
for well over $20k apiece, and every extra announcement lands in every
default-free-zone router's table.  This module prices a configuration so
experiments can report cost alongside benefit, and compares a deployment's
footprint against the hypergiant norms the paper cites (8 of 22 hypergiants
advertise at least 500 /24s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.advertisement import AdvertisementConfig

#: Street price of an IPv4 /24 (paper: "often much more than $20k per /24").
DEFAULT_PRICE_PER_SLASH24_USD = 20_000.0

#: Approximate default-free-zone router count carrying a global table; each
#: announced prefix consumes a FIB slot in each.
DFZ_ROUTERS_ESTIMATE = 70_000

#: Footprint of a typical large content provider (paper: >= 500 /24s for 8
#: of 22 hypergiants), used as a budget sanity reference.
HYPERGIANT_PREFIX_FOOTPRINT = 500


@dataclass(frozen=True)
class ConfigurationCost:
    """The price tag of one advertisement configuration."""

    prefixes: int
    announcements: int  # (prefix, peering) pairs = BGP sessions carrying it
    address_cost_usd: float
    fib_slots: int

    @property
    def fraction_of_hypergiant_footprint(self) -> float:
        return self.prefixes / HYPERGIANT_PREFIX_FOOTPRINT


def configuration_cost(
    config: AdvertisementConfig,
    price_per_prefix_usd: float = DEFAULT_PRICE_PER_SLASH24_USD,
    dfz_routers: int = DFZ_ROUTERS_ESTIMATE,
    include_anycast: bool = True,
) -> ConfigurationCost:
    """Price a configuration (optionally counting the anycast /24 too)."""
    if price_per_prefix_usd < 0:
        raise ValueError("price must be non-negative")
    if dfz_routers < 1:
        raise ValueError("dfz_routers must be positive")
    prefixes = config.prefix_count + (1 if include_anycast else 0)
    return ConfigurationCost(
        prefixes=prefixes,
        announcements=config.pair_count,
        address_cost_usd=prefixes * price_per_prefix_usd,
        fib_slots=prefixes * dfz_routers,
    )


def prefixes_saved_vs_one_per_peering(config: AdvertisementConfig) -> int:
    """How many prefixes reuse saved versus a prefix per (covered) peering."""
    return len(config.all_peering_ids()) - config.prefix_count


def cost_per_benefit_usd(
    config: AdvertisementConfig,
    benefit_ms: float,
    price_per_prefix_usd: float = DEFAULT_PRICE_PER_SLASH24_USD,
) -> Optional[float]:
    """Dollars of address space per volume-weighted ms of improvement."""
    if benefit_ms <= 0:
        return None
    cost = configuration_cost(config, price_per_prefix_usd=price_per_prefix_usd)
    return cost.address_cost_usd / benefit_ms
