"""Baseline advertisement strategies PAINTER is compared against (§5.1.2).

* **Anycast** — the default configuration D; by definition zero improvement.
* **Regional** — regional prefixes announced to transit providers (Azure's
  practice for some services; "offered little to no latency benefit").
* **One per PoP** — each PoP advertises its own prefix via all its peerings.
* **One per PoP w/ Reuse** — like One per PoP but PoPs more than ``D_reuse``
  km apart may share a prefix.
* **One per Peering** — a unique prefix per peering; realizes all possible
  benefit at full budget but burns a prefix per path.

Each strategy is budget-aware so the Fig. 6 benefit-vs-budget curves can be
swept; given a budget they spend it on the most valuable PoPs/peerings first
(ranked by volume-weighted latency opportunity).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.advertisement import AdvertisementConfig
from repro.core.routing_model import DEFAULT_D_REUSE_KM
from repro.scenario import Scenario
from repro.topology.cloud import Peering, PoP
from repro.topology.geo import haversine_km


def anycast_config() -> AdvertisementConfig:
    """The do-nothing strategy: no extra prefixes beyond anycast."""
    return AdvertisementConfig()


def _pop_scores(scenario: Scenario) -> List[Tuple[PoP, float]]:
    """PoPs ranked by the latency opportunity of nearby traffic.

    A PoP's score is the volume-weighted improvement its *best* peering could
    give each UG, restricted to UGs for which that PoP hosts a compliant
    peering — a deployment-agnostic stand-in for "which PoPs matter most".
    """
    deployment = scenario.deployment
    model = scenario.latency_model
    scores: Dict[str, float] = {pop.name: 0.0 for pop in deployment.pops}
    for ug in scenario.user_groups:
        anycast = scenario.anycast_latency_ms(ug)
        compliant = scenario.catalog.ingress_ids(ug)
        best_per_pop: Dict[str, float] = {}
        for pid in compliant:
            peering = deployment.peering(pid)
            latency = model.latency_ms(ug, peering)
            improvement = max(0.0, anycast - latency)
            name = peering.pop.name
            if improvement > best_per_pop.get(name, 0.0):
                best_per_pop[name] = improvement
        for name, improvement in best_per_pop.items():
            scores[name] += ug.volume * improvement
    ranked = sorted(deployment.pops, key=lambda p: (-scores[p.name], p.name))
    return [(pop, scores[pop.name]) for pop in ranked]


def one_per_pop(scenario: Scenario, budget: int) -> AdvertisementConfig:
    """One prefix per PoP, advertised via every peering at that PoP."""
    if budget < 1:
        raise ValueError("budget must be >= 1")
    config = AdvertisementConfig()
    deployment = scenario.deployment
    for prefix, (pop, _score) in enumerate(_pop_scores(scenario)[:budget]):
        for peering in deployment.peerings_at(pop):
            config.add(prefix, peering.peering_id)
    return config


def one_per_pop_with_reuse(
    scenario: Scenario, budget: int, d_reuse_km: float = DEFAULT_D_REUSE_KM
) -> AdvertisementConfig:
    """One-per-PoP, but PoPs >= ``D_reuse`` apart may share a prefix.

    Greedy first-fit packing in rank order: a PoP joins the first prefix all
    of whose PoPs are at least ``d_reuse_km`` away, else opens a new prefix
    while budget remains.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    deployment = scenario.deployment
    config = AdvertisementConfig()
    prefix_pops: List[List[PoP]] = []
    for pop, _score in _pop_scores(scenario):
        assigned: Optional[int] = None
        for prefix, members in enumerate(prefix_pops):
            if all(pop.distance_km(member) >= d_reuse_km for member in members):
                assigned = prefix
                break
        if assigned is None:
            if len(prefix_pops) >= budget:
                continue  # budget exhausted; this PoP stays uncovered
            prefix_pops.append([])
            assigned = len(prefix_pops) - 1
        prefix_pops[assigned].append(pop)
        for peering in deployment.peerings_at(pop):
            config.add(assigned, peering.peering_id)
    return config


def _peering_scores(scenario: Scenario) -> List[Tuple[Peering, float]]:
    """Peerings ranked by standalone volume-weighted improvement."""
    deployment = scenario.deployment
    model = scenario.latency_model
    scores: Dict[int, float] = {p.peering_id: 0.0 for p in deployment.peerings}
    for ug in scenario.user_groups:
        anycast = scenario.anycast_latency_ms(ug)
        for pid in scenario.catalog.ingress_ids(ug):
            latency = model.latency_ms(ug, deployment.peering(pid))
            scores[pid] += ug.volume * max(0.0, anycast - latency)
    ranked = sorted(deployment.peerings, key=lambda p: (-scores[p.peering_id], p.peering_id))
    return [(peering, scores[peering.peering_id]) for peering in ranked]


def one_per_peering(scenario: Scenario, budget: int) -> AdvertisementConfig:
    """A unique prefix for each of the ``budget`` most valuable peerings.

    With full budget this exposes every path, so every UG can reach its best
    ingress — the 100%-benefit (and maximally prefix-hungry) reference.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    config = AdvertisementConfig()
    for prefix, (peering, _score) in enumerate(_peering_scores(scenario)[:budget]):
        config.add(prefix, peering.peering_id)
    return config


def regional_transit(scenario: Scenario, budget: int) -> AdvertisementConfig:
    """Regional prefixes announced to transit providers.

    One prefix per geographic region, advertised via the transit peerings at
    the region's PoPs.  The paper found this gave "little to no latency
    benefit over anycast" because transit routes dominate anycast already.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    deployment = scenario.deployment
    by_region: Dict[str, List[Peering]] = {}
    for peering in deployment.transit_peerings():
        by_region.setdefault(peering.pop.metro.region, []).append(peering)
    config = AdvertisementConfig()
    regions = sorted(by_region, key=lambda r: -len(by_region[r]))
    for prefix, region in enumerate(regions[:budget]):
        for peering in by_region[region]:
            config.add(prefix, peering.peering_id)
    return config


def regional_anycast(scenario: Scenario, budget: int) -> AdvertisementConfig:
    """Regional anycast (concurrent work the paper cites [115]): one prefix
    per geographic region, advertised via *every* peering at the region's
    PoPs.  Finer than global anycast, far coarser than PAINTER."""
    if budget < 1:
        raise ValueError("budget must be >= 1")
    deployment = scenario.deployment
    by_region: Dict[str, List[Peering]] = {}
    for peering in deployment.peerings:
        by_region.setdefault(peering.pop.metro.region, []).append(peering)
    config = AdvertisementConfig()
    regions = sorted(by_region, key=lambda r: -len(by_region[r]))
    for prefix, region in enumerate(regions[:budget]):
        for peering in by_region[region]:
            config.add(prefix, peering.peering_id)
    return config


#: Name -> builder, for experiment sweeps.  Builders take (scenario, budget).
BASELINE_STRATEGIES = {
    "one_per_pop": one_per_pop,
    "one_per_pop_with_reuse": one_per_pop_with_reuse,
    "one_per_peering": one_per_peering,
    "regional_transit": regional_transit,
    "regional_anycast": regional_anycast,
}
