"""Benefit computation: Eq. (1), Eq. (2), and the Fig. 14 benefit ranges.

Terminology follows the paper:

* **improvement** of a UG under a configuration is its latency gain over the
  default anycast configuration; never negative, because the Traffic Manager
  always has anycast as a fallback destination;
* **benefit** (Eq. 1) is the volume-weighted sum of improvements;
* **expected** quantities use the routing model's candidate-ingress
  expectation (Eq. 2); **realized** quantities use the ground-truth oracle;
* a **benefit range** (lower/mean/estimated/upper, Appendix E.1) spans the
  policy-compliant ingresses a UG's chosen prefix is advertised over, where
  "estimated" weights ingresses by how unlikely their path inflation is.
"""

from __future__ import annotations

import math
import warnings
from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.advertisement import AdvertisementConfig
from repro.core.routing_model import RoutingModel
from repro.kernels import (
    ComputeBackend,
    MatrixLayoutPlan,
    ScanContext,
    coerce_backend,
    plan_matrix_layout,
)
from repro.kernels.layout import DEFAULT_CHUNK_BYTES
from repro.perf import PERF
from repro.routing.ground_truth import GroundTruthRouting
from repro.scenario import Scenario
from repro.topology.geo import haversine_km
from repro.usergroups.usergroup import UserGroup

#: Marks a latency-matrix slot whose value has not been computed yet
#: (``None`` is a legitimate value: "unmeasurable ingress").
_UNSET = object()

#: Decay scale (km) for the inflation-probability weights in the "estimated"
#: range: paths inflated by an extra X km get weight exp(-X/scale), matching
#: the paper's "weights correspond to approximate probabilities that paths
#: are inflated by corresponding amounts".
DEFAULT_INFLATION_SCALE_KM = 1500.0

LatencyFn = Callable[[UserGroup, int], Optional[float]]


@dataclass(frozen=True)
class BenefitRange:
    """Possible improvements (ms) for one UG and one chosen prefix."""

    lower: float
    mean: float
    estimated: float
    upper: float

    def __post_init__(self) -> None:
        if not (self.lower <= self.mean <= self.upper) or not (
            self.lower <= self.estimated <= self.upper
        ):
            raise ValueError(f"inconsistent range: {self}")

    @property
    def uncertainty(self) -> float:
        """Width between best case and inflation-weighted estimate."""
        return self.upper - self.estimated


@dataclass(frozen=True)
class ConfigEvaluation:
    """Aggregate volume-weighted benefit of a configuration (ms units)."""

    lower: float
    mean: float
    estimated: float
    upper: float
    per_ug_estimated: Mapping[int, float]

    def as_fraction_of(self, total_possible: float) -> "ConfigEvaluation":
        if total_possible <= 0:
            raise ValueError("total_possible must be positive")
        scale = 1.0 / total_possible
        return ConfigEvaluation(
            lower=self.lower * scale,
            mean=self.mean * scale,
            estimated=self.estimated * scale,
            upper=self.upper * scale,
            per_ug_estimated={k: v * scale for k, v in self.per_ug_estimated.items()},
        )


@dataclass(frozen=True)
class BenefitMatrix:
    """Sparse volume-weighted singleton-advertisement gains.

    Entry ``e`` says: if UG row ``rows[e]`` is served by a prefix advertised
    via (exactly) peering column ``cols[e]``, its Eq.-1 contribution is
    ``gains[e] = volume * (anycast - latency)`` — the Eq.-2 expectation of a
    singleton advertised set is the peering's own latency, so these terms
    are exact, linear, and independent of any learned state.  Only positive,
    measurable, policy-compliant entries are kept.

    This is the shared input of the optimality comparator
    (:mod:`repro.optimality`): Algorithm 1's greedy, the budget-k selection
    ILP, its LP relaxation, and the brute-force oracle all consume the same
    matrix, so their objective values are directly comparable.

    Entries are ordered (UG row, peering column) lexicographically; rows
    follow ``scenario.user_groups`` order and columns index the ascending
    ``peering_ids`` list of every policy-compliant candidate peering.
    """

    ug_ids: Tuple[int, ...]
    peering_ids: Tuple[int, ...]
    rows: "np.ndarray"
    cols: "np.ndarray"
    gains: "np.ndarray"

    @property
    def n_ugs(self) -> int:
        return len(self.ug_ids)

    @property
    def n_peerings(self) -> int:
        return len(self.peering_ids)

    @property
    def nnz(self) -> int:
        return len(self.gains)

    def column_of(self, peering_id: int) -> int:
        """Column index of ``peering_id`` (raises ``ValueError`` if absent)."""
        col = int(np.searchsorted(self.peering_ids, peering_id))
        if col >= self.n_peerings or self.peering_ids[col] != peering_id:
            raise ValueError(f"peering {peering_id} has no candidate column")
        return col

    def selection_value(self, chosen_cols: Iterable[int]) -> float:
        """Total benefit when exactly ``chosen_cols`` peerings are selected.

        Each UG takes its best selected gain (or zero).  The reduction is
        deterministic (``np.maximum.at`` scatter + one ``ndarray.sum``), so
        two calls with selections achieving the same per-UG maxima return
        bit-identical floats — the equality contract the brute-force oracle
        and the ILP cross-check rely on.
        """
        chosen = np.asarray(sorted(set(int(c) for c in chosen_cols)), dtype=np.intp)
        if chosen.size == 0 or self.nnz == 0:
            return 0.0
        if chosen.size and (chosen[0] < 0 or chosen[-1] >= self.n_peerings):
            raise ValueError("selected column out of range")
        mask = np.isin(self.cols, chosen)
        best = np.zeros(self.n_ugs)
        np.maximum.at(best, self.rows[mask], self.gains[mask])
        return float(best.sum())


class BenefitEvaluator:
    """Evaluates configurations for a scenario under a routing model."""

    def __init__(
        self,
        scenario: Scenario,
        model: RoutingModel,
        latency_of: Optional[LatencyFn] = None,
        inflation_scale_km: float = DEFAULT_INFLATION_SCALE_KM,
        backend: Union[str, ComputeBackend, None] = None,
    ) -> None:
        self._scenario = scenario
        self._model = model
        self._inflation_scale_km = inflation_scale_km
        #: The compute backend owns the elementwise hot-loop kernels and
        #: the (optional) dense latency/distance matrices.  ``None`` means
        #: the numpy reference; a string resolves through the registry
        #: (with graceful fallback — see :mod:`repro.kernels`).
        self._backend = coerce_backend(backend)
        if latency_of is None:
            deployment = scenario.deployment
            latency_model = scenario.latency_model

            def _true_latency(ug: UserGroup, peering_id: int) -> Optional[float]:
                return latency_model.latency_ms(ug, deployment.peering(peering_id))

            latency_of = _true_latency
        self._latency_of = latency_of
        # Dense UG×peering latency matrix: one row (list) per UG, one column
        # per peering.  Rows are created on first touch and slots filled on
        # demand (or in bulk by precompute_latency_matrix); a list index
        # replaces the old per-call tuple-keyed dict walk on the hot path.
        self._lat_cols: Dict[int, int] = {
            p.peering_id: col for col, p in enumerate(scenario.deployment.peerings)
        }
        self._lat_rows: Dict[int, List[object]] = {}
        #: Expected-latency memo per UG: (model epoch, {advertised set -> ms}).
        #: Entries are discarded when the routing model's beliefs about the
        #: UG move (epoch mismatch) — the invalidation contract of
        #: :meth:`RoutingModel.ug_epoch`.
        self._exp_cache: Dict[int, Tuple[int, Dict[FrozenSet[int], Optional[float]]]] = {}
        self._lat_stats = PERF.cache("evaluator.latency_matrix")
        self._exp_stats = PERF.cache("evaluator.expected_latency")
        #: Per-UG (distance, latency) lookup over catalog-compliant
        #: ingresses, built on first fast-path use (see :class:`PrefixScan`).
        #: Distances and true latencies are immutable, so no invalidation.
        self._scan_tables: Dict[int, Dict[int, Tuple[float, Optional[float]]]] = {}
        #: UG id → dense-matrix row, built lazily on the first dense lookup
        #: (the backend may have matrices bound before or after
        #: construction — see :meth:`ComputeBackend.bind_latency_matrix`).
        self._dense_rows: Optional[Dict[int, int]] = None

    def _dense_row_of(self, ug_id: int) -> Optional[int]:
        if self._dense_rows is None:
            self._dense_rows = {
                ug.ug_id: i for i, ug in enumerate(self._scenario.user_groups)
            }
        return self._dense_rows.get(ug_id)

    def _scan_table(self, ug: UserGroup):
        table = self._scan_tables.get(ug.ug_id)
        if table is None:
            backend = self._backend
            if (
                backend.latency_matrix is not None
                and backend.distance_matrix is not None
            ):
                # Large-world path: both matrices are materialized, so the
                # per-UG table is a thin view instead of a dict — at 100k
                # UGs the dicts alone would cost gigabytes.
                row = self._dense_row_of(ug.ug_id)
                if row is not None:
                    table = self._scan_tables[ug.ug_id] = _DenseRowTable(
                        self, ug, row
                    )
                    return table
            model = self._model
            table = self._scan_tables[ug.ug_id] = {
                pid: (model.distance_km(ug, pid), self.latency(ug, pid))
                for pid in model.catalog.ingress_ids(ug)
            }
        return table

    @property
    def scenario(self) -> Scenario:
        return self._scenario

    @property
    def model(self) -> RoutingModel:
        return self._model

    def latency(self, ug: UserGroup, peering_id: int) -> Optional[float]:
        row = self._lat_rows.get(ug.ug_id)
        if row is None:
            row = self._lat_rows[ug.ug_id] = [_UNSET] * len(self._lat_cols)
        col = self._lat_cols[peering_id]
        value = row[col]
        if value is _UNSET:
            dense_lat = self._backend.latency_matrix
            if dense_lat is not None:
                dense_row = self._dense_row_of(ug.ug_id)
                if dense_row is not None:
                    dense_value = dense_lat[dense_row, col]
                    if dense_value == dense_value:  # not nan: slot was filled
                        self._lat_stats.hits += 1
                        value = (
                            None if math.isinf(dense_value) else float(dense_value)
                        )
                        row[col] = value
                        return value
            self._lat_stats.misses += 1
            value = self._latency_of(ug, peering_id)
            row[col] = value
        else:
            self._lat_stats.hits += 1
        return value

    @property
    def backend(self) -> ComputeBackend:
        """The compute backend (kernels + dense-matrix binding)."""
        return self._backend

    def adopt_latency_matrix(self, matrix) -> None:
        """Deprecated: use ``evaluator.backend.bind_latency_matrix``.

        The dense UG-row × peering-column matrix now lives on the
        :class:`ComputeBackend` so the serial evaluator, the vectorized
        affected-array build, and the parallel shard workers all share one
        binding surface.  This shim keeps legacy callers working.
        """
        warnings.warn(
            "BenefitEvaluator.adopt_latency_matrix is deprecated; use "
            "evaluator.backend.bind_latency_matrix(matrix)",
            DeprecationWarning,
            stacklevel=2,
        )
        self._backend.bind_latency_matrix(matrix)

    def drop_latency_matrix(self) -> None:
        """Deprecated: use ``evaluator.backend.release_latency_matrix``.

        Values already promoted into the per-UG rows stay; unseen slots
        fall back to the (deterministic) latency source, so dropping the
        matrix never changes what :meth:`latency` returns.
        """
        warnings.warn(
            "BenefitEvaluator.drop_latency_matrix is deprecated; use "
            "evaluator.backend.release_latency_matrix()",
            DeprecationWarning,
            stacklevel=2,
        )
        self._backend.release_latency_matrix()

    @property
    def peering_columns(self) -> Dict[int, int]:
        """Peering id → latency-matrix column, in deployment order."""
        return dict(self._lat_cols)

    @property
    def latency_source(self) -> LatencyFn:
        """The underlying (uncached) latency oracle."""
        return self._latency_of

    def precompute_latency_matrix(
        self, user_groups: Optional[Sequence[UserGroup]] = None
    ) -> int:
        """Bulk-fill the latency matrix for every entry Algorithm 1 touches.

        Fills each UG's row at its policy-compliant ingresses (the only
        columns the greedy scan can query), so the scan itself never pays a
        ``latency_of`` call.  Returns the number of newly filled slots.
        """
        catalog = self._model.catalog
        ugs = self._scenario.user_groups if user_groups is None else user_groups
        filled = 0
        for ug in ugs:
            row = self._lat_rows.get(ug.ug_id)
            if row is None:
                row = self._lat_rows[ug.ug_id] = [_UNSET] * len(self._lat_cols)
            for pid in catalog.ingress_ids(ug):
                col = self._lat_cols[pid]
                if row[col] is _UNSET:
                    self._lat_stats.misses += 1
                    row[col] = self._latency_of(ug, pid)
                    filled += 1
        return filled

    def materialize_latency_matrices(
        self,
        *,
        budget_bytes: Optional[int] = None,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> MatrixLayoutPlan:
        """Materialize dense latency **and** distance matrices on the backend.

        The large-world replacement for :meth:`precompute_latency_matrix`:
        instead of per-UG Python-list rows (hundreds of bytes per boxed
        slot), every value Algorithm 1 can touch lands in two flat float64
        matrices — latency (``+inf`` = unmeasurable, ``nan`` = slot outside
        the policy-compliant set) and great-circle distance.  Fill runs in
        row chunks, and the latency-model / distance memo dicts are trimmed
        after each chunk: their entries are pure deterministic functions of
        (UG, peering), so re-deriving any later lookup returns bit-identical
        values while transient memory stays bounded by the chunk, not the
        world.

        Returns the :class:`MatrixLayoutPlan` used (raises
        :class:`repro.kernels.MemoryBudgetExceeded` before allocating when
        ``budget_bytes`` cannot hold both matrices).  Idempotent: a second
        call with matrices already bound is a no-op.
        """
        backend = self._backend
        if (
            backend.latency_matrix is not None
            and backend.distance_matrix is not None
        ):
            ugs = self._scenario.user_groups
            return plan_matrix_layout(
                len(ugs), len(self._lat_cols), budget_bytes=budget_bytes,
                chunk_bytes=chunk_bytes,
            )
        ugs = self._scenario.user_groups
        n_rows = len(ugs)
        n_cols = len(self._lat_cols)
        plan = plan_matrix_layout(
            n_rows, n_cols, budget_bytes=budget_bytes, chunk_bytes=chunk_bytes
        )
        model = self._model
        catalog = model.catalog
        cols = self._lat_cols
        latency_of = self._latency_of
        lat = np.full((n_rows, n_cols), np.nan)
        dist = np.full((n_rows, n_cols), np.nan)
        with PERF.timed("kernels.materialize_s"):
            for start in range(0, n_rows, plan.chunk_rows):
                stop = min(start + plan.chunk_rows, n_rows)
                for row in range(start, stop):
                    ug = ugs[row]
                    lat_row = lat[row]
                    dist_row = dist[row]
                    for pid in catalog.ingress_ids(ug):
                        col = cols[pid]
                        value = latency_of(ug, pid)
                        lat_row[col] = np.inf if value is None else value
                        dist_row[col] = model.distance_km(ug, pid)
                model.clear_distance_caches()
                latency_model = getattr(self._scenario, "latency_model", None)
                if latency_model is not None:
                    latency_model.clear_caches()
        backend.bind_latency_matrix(lat, dist)
        return plan

    def latencies_for(
        self, peering_id: int, user_groups: Sequence[UserGroup]
    ) -> List[Optional[float]]:
        """One latency-matrix column, in ``user_groups`` order."""
        return [self.latency(ug, peering_id) for ug in user_groups]

    def benefit_matrix(
        self, user_groups: Optional[Sequence[UserGroup]] = None
    ) -> BenefitMatrix:
        """Extract the singleton-advertisement gain matrix (see
        :class:`BenefitMatrix`).

        Uses this evaluator's (cached) latency source, so the matrix is
        consistent with every Eq.-2 expectation the greedy computed: for any
        advertised set ``A`` the model's expectation is a mean over a subset
        of ``A``'s measurable compliant ingresses, hence at least the best
        singleton gain recorded here.  That inequality is what makes the
        optimality comparator's LP bound sound for reuse configurations.
        """
        catalog = self._model.catalog
        ugs = self._scenario.user_groups if user_groups is None else user_groups
        peering_ids = sorted({pid for ug in ugs for pid in catalog.ingress_ids(ug)})
        col_of = {pid: col for col, pid in enumerate(peering_ids)}
        rows: List[int] = []
        cols: List[int] = []
        gains: List[float] = []
        for row, ug in enumerate(ugs):
            anycast = self._scenario.anycast_latency_ms(ug)
            volume = ug.volume
            for pid in sorted(catalog.ingress_ids(ug)):
                latency = self.latency(ug, pid)
                if latency is None:
                    continue
                gain = anycast - latency
                if gain > 0.0:
                    rows.append(row)
                    cols.append(col_of[pid])
                    gains.append(volume * gain)
        return BenefitMatrix(
            ug_ids=tuple(ug.ug_id for ug in ugs),
            peering_ids=tuple(peering_ids),
            rows=np.array(rows, dtype=np.intp),
            cols=np.array(cols, dtype=np.intp),
            gains=np.array(gains, dtype=np.float64),
        )

    def begin_prefix_scan(
        self,
        context: Optional[ScanContext] = None,
        *,
        learned_ug_ids: Optional[Set[int]] = None,
        table_source: Optional[
            Callable[[UserGroup], Dict[int, Tuple[float, Optional[float]]]]
        ] = None,
    ) -> "PrefixScan":
        """Start an incremental Eq.-2 session for one prefix's inner loop.

        Injected state arrives as a :class:`repro.kernels.ScanContext`:
        ``learned_ug_ids`` overrides the routing model's live learned set —
        a parallel shard worker whose forked model is frozen at pool-creation
        time passes the authoritative set it received from the parent —
        and ``table_source`` overrides how per-UG scan tables are built
        (shard workers source them from the shared latency/distance
        matrices rather than re-deriving each entry from the latency
        oracle).  The loose ``learned_ug_ids=``/``table_source=`` keywords
        are deprecated aliases.
        """
        if learned_ug_ids is not None or table_source is not None:
            warnings.warn(
                "begin_prefix_scan(learned_ug_ids=..., table_source=...) is "
                "deprecated; pass begin_prefix_scan(context=ScanContext(...))",
                DeprecationWarning,
                stacklevel=2,
            )
            if context is not None:
                raise TypeError(
                    "pass either a ScanContext or the legacy keyword "
                    "arguments, not both"
                )
            context = ScanContext(
                learned_ug_ids=learned_ug_ids, table_source=table_source
            )
        if context is None:
            context = ScanContext()
        return PrefixScan(
            self,
            learned_ug_ids=context.learned_ug_ids,
            table_source=context.table_source,
        )

    # -- Eq. 2: modeled improvement -------------------------------------------

    def expected_prefix_latency(
        self, ug: UserGroup, advertised: FrozenSet[int]
    ) -> Optional[float]:
        key = advertised if isinstance(advertised, frozenset) else frozenset(advertised)
        epoch = self._model.ug_epoch(ug.ug_id)
        entry = self._exp_cache.get(ug.ug_id)
        if entry is None or entry[0] != epoch:
            if entry is not None:
                self._exp_stats.invalidations += 1
            entry = (epoch, {})
            self._exp_cache[ug.ug_id] = entry
        cache = entry[1]
        value = cache.get(key, _UNSET)
        if value is not _UNSET:
            self._exp_stats.hits += 1
            return value
        self._exp_stats.misses += 1
        value = self._model.expected_latency_ms(ug, key, self.latency)
        cache[key] = value
        return value

    def expected_improvement(self, ug: UserGroup, config: AdvertisementConfig) -> float:
        """Eq. 2: improvement of the best prefix over anycast, floored at 0."""
        anycast = self._scenario.anycast_latency_ms(ug)
        best = anycast
        for prefix in config.prefixes:
            latency = self.expected_prefix_latency(ug, config.peerings_for(prefix))
            if latency is not None and latency < best:
                best = latency
        return anycast - best

    def expected_benefit(self, config: AdvertisementConfig) -> float:
        """Eq. 1 with modeled improvements."""
        return sum(
            ug.volume * self.expected_improvement(ug, config)
            for ug in self._scenario.user_groups
        )

    # -- Fig. 14: benefit ranges ---------------------------------------------

    def _range_for_prefix(
        self, ug: UserGroup, advertised: FrozenSet[int]
    ) -> Optional[BenefitRange]:
        """Range over all policy-compliant advertised ingresses (no exclusions)."""
        compliant = self._model.catalog.compliant_subset(ug, advertised)
        anycast = self._scenario.anycast_latency_ms(ug)
        deployment = self._scenario.deployment
        distances = []
        improvements = []
        for pid in sorted(compliant):
            latency = self.latency(ug, pid)
            if latency is None:
                continue
            improvements.append(max(0.0, anycast - latency))
            distances.append(
                haversine_km(ug.location, deployment.peering(pid).pop.location)
            )
        if not improvements:
            return None
        closest = min(distances)
        weights = [self._inflation_weight(d - closest) for d in distances]
        total_weight = sum(weights)
        if not total_weight > 0.0:
            # Every inflation weight vanished (or went non-finite): there is
            # no defensible weighting left, so collapse to the 0-width range
            # at the closest ingress's improvement instead of dividing by
            # zero — the scale -> 0 limit, where all probability mass sits
            # on the least-inflated path.
            value = improvements[distances.index(closest)]
            return BenefitRange(
                lower=value, mean=value, estimated=value, upper=value
            )
        estimated = sum(i * w for i, w in zip(improvements, weights)) / total_weight
        return BenefitRange(
            lower=min(improvements),
            mean=sum(improvements) / len(improvements),
            estimated=estimated,
            upper=max(improvements),
        )

    def _inflation_weight(self, excess_km: float) -> float:
        """Inflation-probability weight for a path ``excess_km`` beyond the
        closest candidate.

        A non-positive decay scale degrades to a hard cutoff (weight 1 at
        the closest distance, 0 beyond) rather than raising
        ``ZeroDivisionError`` inside ``exp``.
        """
        scale = self._inflation_scale_km
        if scale <= 0.0:
            return 1.0 if excess_km <= 0.0 else 0.0
        return math.exp(-excess_km / scale)

    def benefit_range(
        self, ug: UserGroup, config: AdvertisementConfig
    ) -> BenefitRange:
        """Range for the prefix the UG would select (highest mean, Eq. 2)."""
        best_range: Optional[BenefitRange] = None
        for prefix in config.prefixes:
            candidate = self._range_for_prefix(ug, config.peerings_for(prefix))
            if candidate is None:
                continue
            if best_range is None or candidate.mean > best_range.mean:
                best_range = candidate
        if best_range is None:
            return BenefitRange(lower=0.0, mean=0.0, estimated=0.0, upper=0.0)
        return best_range

    def evaluate(self, config: AdvertisementConfig) -> ConfigEvaluation:
        """Volume-weighted lower/mean/estimated/upper benefit of a config."""
        lower = mean = estimated = upper = 0.0
        per_ug: Dict[int, float] = {}
        for ug in self._scenario.user_groups:
            rng = self.benefit_range(ug, config)
            lower += ug.volume * rng.lower
            mean += ug.volume * rng.mean
            estimated += ug.volume * rng.estimated
            upper += ug.volume * rng.upper
            per_ug[ug.ug_id] = rng.estimated
        return ConfigEvaluation(
            lower=lower, mean=mean, estimated=estimated, upper=upper, per_ug_estimated=per_ug
        )


class _DenseRowTable:
    """A per-UG scan table served from the backend's dense matrices.

    Duck-types the ``{pid: (distance, latency)}`` dict the fast scan reads
    (only ``table[pid]`` is ever used) while costing one small object per
    UG instead of a ~hundreds-of-entries dict — the difference between
    fitting and not fitting the 100k-UG ``mega`` preset in memory.  Lookups
    outside the UG's policy-compliant set hit ``nan`` slots and raise
    ``KeyError`` like the dict would; ``nan`` latency slots inside the set
    (not materialized) fall back to the evaluator's oracle path.
    """

    __slots__ = ("_ev", "_ug", "_row")

    def __init__(self, evaluator: "BenefitEvaluator", ug: UserGroup, row: int) -> None:
        self._ev = evaluator
        self._ug = ug
        self._row = row

    def __getitem__(self, peering_id: int) -> Tuple[float, Optional[float]]:
        ev = self._ev
        backend = ev._backend
        if backend.distance_matrix is None or backend.latency_matrix is None:
            # Matrices released after this table was built: recompute from
            # the deterministic oracles (bit-identical values).
            return (
                ev._model.distance_km(self._ug, peering_id),
                ev.latency(self._ug, peering_id),
            )
        col = ev._lat_cols[peering_id]
        row = self._row
        dist = float(backend.distance_matrix[row, col])
        if dist != dist:  # nan: not policy-compliant for this UG
            raise KeyError(peering_id)
        lat = float(backend.latency_matrix[row, col])
        if lat != lat:  # nan: slot not materialized — use the oracle
            return dist, ev.latency(self._ug, peering_id)
        return dist, (None if math.isinf(lat) else lat)


class PrefixScan:
    """Incremental Eq.-2 evaluation for one prefix's greedy inner loop.

    Algorithm 1's inner loop evaluates ``expected_prefix_latency(ug, A ∪
    {pid})`` for a slowly-growing advertised set ``A`` and thousands of
    candidate peerings — recomputing the candidate prediction from scratch
    each time is the solver's dominant cost.  For UGs the model has **no
    learned state** about (no preference pairs, no outcome memory —
    :meth:`RoutingModel.has_learned_state`), the prediction reduces to pure
    reuse-distance pruning:

        kept = {q ∈ compliant : dist(q) ≤ min_dist(compliant) + D_reuse}

    so this session keeps, per UG, the accepted compliant ingresses sorted
    by distance with prefix sums of their measurable latencies.  A marginal
    query then costs one binary search instead of a full candidate-set
    rebuild.  UGs with learned state fall back to the evaluator's exact
    (memoized) path; the fast/slow split is reported by the
    ``evaluator.scan_fast_queries`` / ``scan_slow_queries`` perf counters.

    Mutating the routing model mid-scan (``observe``/``restore``) is not
    supported — Algorithm 1 only learns *between* solves.
    """

    __slots__ = (
        "_ev", "_model", "_learned", "_tables", "_table_source", "_d_reuse",
        "_advertised", "_frozen", "_states", "_fast_queries", "_slow_queries",
    )

    def __init__(
        self,
        evaluator: BenefitEvaluator,
        learned_ug_ids: Optional[Set[int]] = None,
        table_source: Optional[
            Callable[[UserGroup], Dict[int, Tuple[float, Optional[float]]]]
        ] = None,
    ) -> None:
        self._ev = evaluator
        self._model = evaluator.model
        # Bound once: the query path runs millions of times per solve.
        self._learned = (
            self._model.learned_ug_ids if learned_ug_ids is None else learned_ug_ids
        )
        self._tables = evaluator._scan_tables
        self._table_source = table_source
        self._d_reuse = self._model.d_reuse_km
        self._advertised: Set[int] = set()
        self._frozen: FrozenSet[int] = frozenset()
        # ug_id -> [dists (sorted), latency prefix sums, measurable prefix
        # counts]; parallel lists, sums/cnts one longer than dists.
        self._states: Dict[int, List[list]] = {}
        self._fast_queries = PERF.counter("evaluator.scan_fast_queries")
        self._slow_queries = PERF.counter("evaluator.scan_slow_queries")

    def query(self, ug: UserGroup, peering_id: int) -> Optional[float]:
        """Expected latency of the accepted set plus ``peering_id``."""
        ug_id = ug.ug_id
        if ug_id in self._learned:
            self._slow_queries.value += 1
            return self._ev.expected_prefix_latency(
                ug, frozenset(self._advertised | {peering_id})
            )
        self._fast_queries.value += 1
        table = self._tables.get(ug_id)
        if table is None:
            table = self._build_table(ug)
        dist_p, lat_p = table[peering_id]
        state = self._states.get(ug_id)
        if state is None:
            return lat_p  # singleton candidate set
        dists, sums, cnts = state
        closest = dists[0]
        if dist_p < closest:
            closest = dist_p
        limit = closest + self._d_reuse
        idx = bisect_right(dists, limit)
        total = sums[idx]
        count = cnts[idx]
        if dist_p <= limit and lat_p is not None:
            total += lat_p
            count += 1
        if count == 0:
            return None
        return total / count

    def _build_table(self, ug: UserGroup) -> Dict[int, Tuple[float, Optional[float]]]:
        if self._table_source is not None:
            table = self._tables[ug.ug_id] = self._table_source(ug)
            return table
        return self._ev._scan_table(ug)

    def current(self, ug: UserGroup) -> Optional[float]:
        """Expected latency of the accepted set as it stands."""
        if ug.ug_id in self._learned:
            return self._ev.expected_prefix_latency(ug, self._frozen)
        state = self._states.get(ug.ug_id)
        if state is None:
            return None  # nothing compliant accepted yet
        dists, sums, cnts = state
        idx = bisect_right(dists, dists[0] + self._d_reuse)
        if cnts[idx] == 0:
            return None
        return sums[idx] / cnts[idx]

    def kept_stats(self, ug: UserGroup) -> Tuple[float, float, int, Optional[float]]:
        """``(closest km, kept latency sum, kept count, expected)`` for a
        fast-path UG with at least one accepted compliant peering.

        This is the scalar state the orchestrator mirrors into its numpy
        arrays so refreshed marginals can be evaluated as one vector
        expression per peering instead of a per-UG Python loop.
        """
        dists, sums, cnts = self._states[ug.ug_id]
        closest = dists[0]
        idx = bisect_right(dists, closest + self._d_reuse)
        total = sums[idx]
        count = cnts[idx]
        return closest, total, count, (total / count if count else None)

    def accept(self, peering_id: int, affected: Sequence[UserGroup]) -> None:
        """Fold an accepted peering into the session state."""
        self._advertised.add(peering_id)
        self._frozen = frozenset(self._advertised)
        for ug in affected:
            ug_id = ug.ug_id
            if ug_id in self._learned:
                continue
            table = self._tables.get(ug_id)
            if table is None:
                table = self._build_table(ug)
            dist, lat = table[peering_id]
            state = self._states.get(ug_id)
            if state is None:
                self._states[ug_id] = [
                    [dist],
                    [0.0, lat if lat is not None else 0.0],
                    [0, 1 if lat is not None else 0],
                ]
                continue
            dists, sums, cnts = state
            idx = bisect_right(dists, dist)
            dists.insert(idx, dist)
            measurable = lat is not None
            sums.insert(idx + 1, sums[idx] + (lat if measurable else 0.0))
            cnts.insert(idx + 1, cnts[idx] + (1 if measurable else 0))
            if measurable:
                for j in range(idx + 2, len(sums)):
                    sums[j] += lat
                    cnts[j] += 1


def realized_improvement(
    scenario: Scenario,
    ug: UserGroup,
    config: AdvertisementConfig,
    day: int = 0,
    fixed_prefix: Optional[int] = None,
) -> float:
    """Ground-truth improvement: the TM measures every prefix and anycast.

    With ``fixed_prefix`` the UG is pinned to one prefix (Fig. 7's "static
    prefix choices"); otherwise it uses the best available (dynamic).
    Improvement stays floored at 0 since anycast remains a destination.
    """
    routing: GroundTruthRouting = scenario.routing
    anycast = scenario.anycast_latency_ms(ug, day=day)
    prefixes = [fixed_prefix] if fixed_prefix is not None else config.prefixes
    best = anycast
    for prefix in prefixes:
        advertised = config.peerings_for(prefix)
        if not advertised:
            continue
        latency = routing.latency_for(ug, advertised, day=day)
        if latency is not None and latency < best:
            best = latency
    return anycast - best


def realized_benefit(
    scenario: Scenario,
    config: AdvertisementConfig,
    day: int = 0,
    prefix_choice: Optional[Mapping[int, int]] = None,
) -> float:
    """Eq. 1 with ground-truth improvements (optionally pinned prefixes).

    With ``prefix_choice`` given, every UG is static: mapped UGs stay on
    their pinned prefix, unmapped UGs stay on anycast (they had no better
    prefix when the pins were chosen) — contributing zero improvement.
    """
    total = 0.0
    for ug in scenario.user_groups:
        if prefix_choice is not None and ug.ug_id not in prefix_choice:
            continue  # pinned to anycast: zero improvement by definition
        fixed = None if prefix_choice is None else prefix_choice[ug.ug_id]
        total += ug.volume * realized_improvement(
            scenario, ug, config, day=day, fixed_prefix=fixed
        )
    return total


def best_prefix_choices(
    scenario: Scenario, config: AdvertisementConfig, day: int = 0
) -> Dict[int, int]:
    """Each UG's best prefix by ground-truth latency on ``day`` (for Fig. 7)."""
    routing = scenario.routing
    choices: Dict[int, int] = {}
    for ug in scenario.user_groups:
        anycast = scenario.anycast_latency_ms(ug, day=day)
        best_latency = anycast
        best_prefix: Optional[int] = None
        for prefix in config.prefixes:
            advertised = config.peerings_for(prefix)
            if not advertised:
                continue
            latency = routing.latency_for(ug, advertised, day=day)
            if latency is not None and latency < best_latency:
                best_latency = latency
                best_prefix = prefix
        if best_prefix is not None:
            choices[ug.ug_id] = best_prefix
    return choices
