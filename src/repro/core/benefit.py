"""Benefit computation: Eq. (1), Eq. (2), and the Fig. 14 benefit ranges.

Terminology follows the paper:

* **improvement** of a UG under a configuration is its latency gain over the
  default anycast configuration; never negative, because the Traffic Manager
  always has anycast as a fallback destination;
* **benefit** (Eq. 1) is the volume-weighted sum of improvements;
* **expected** quantities use the routing model's candidate-ingress
  expectation (Eq. 2); **realized** quantities use the ground-truth oracle;
* a **benefit range** (lower/mean/estimated/upper, Appendix E.1) spans the
  policy-compliant ingresses a UG's chosen prefix is advertised over, where
  "estimated" weights ingresses by how unlikely their path inflation is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.core.advertisement import AdvertisementConfig
from repro.core.routing_model import RoutingModel
from repro.routing.ground_truth import GroundTruthRouting
from repro.scenario import Scenario
from repro.topology.geo import haversine_km
from repro.usergroups.usergroup import UserGroup

#: Decay scale (km) for the inflation-probability weights in the "estimated"
#: range: paths inflated by an extra X km get weight exp(-X/scale), matching
#: the paper's "weights correspond to approximate probabilities that paths
#: are inflated by corresponding amounts".
DEFAULT_INFLATION_SCALE_KM = 1500.0

LatencyFn = Callable[[UserGroup, int], Optional[float]]


@dataclass(frozen=True)
class BenefitRange:
    """Possible improvements (ms) for one UG and one chosen prefix."""

    lower: float
    mean: float
    estimated: float
    upper: float

    def __post_init__(self) -> None:
        if not (self.lower <= self.mean <= self.upper) or not (
            self.lower <= self.estimated <= self.upper
        ):
            raise ValueError(f"inconsistent range: {self}")

    @property
    def uncertainty(self) -> float:
        """Width between best case and inflation-weighted estimate."""
        return self.upper - self.estimated


@dataclass(frozen=True)
class ConfigEvaluation:
    """Aggregate volume-weighted benefit of a configuration (ms units)."""

    lower: float
    mean: float
    estimated: float
    upper: float
    per_ug_estimated: Mapping[int, float]

    def as_fraction_of(self, total_possible: float) -> "ConfigEvaluation":
        if total_possible <= 0:
            raise ValueError("total_possible must be positive")
        scale = 1.0 / total_possible
        return ConfigEvaluation(
            lower=self.lower * scale,
            mean=self.mean * scale,
            estimated=self.estimated * scale,
            upper=self.upper * scale,
            per_ug_estimated={k: v * scale for k, v in self.per_ug_estimated.items()},
        )


class BenefitEvaluator:
    """Evaluates configurations for a scenario under a routing model."""

    def __init__(
        self,
        scenario: Scenario,
        model: RoutingModel,
        latency_of: Optional[LatencyFn] = None,
        inflation_scale_km: float = DEFAULT_INFLATION_SCALE_KM,
    ) -> None:
        self._scenario = scenario
        self._model = model
        self._inflation_scale_km = inflation_scale_km
        if latency_of is None:
            deployment = scenario.deployment
            latency_model = scenario.latency_model

            def _true_latency(ug: UserGroup, peering_id: int) -> Optional[float]:
                return latency_model.latency_ms(ug, deployment.peering(peering_id))

            latency_of = _true_latency
        self._latency_of = latency_of
        self._latency_cache: Dict[Tuple[int, int], Optional[float]] = {}

    @property
    def scenario(self) -> Scenario:
        return self._scenario

    @property
    def model(self) -> RoutingModel:
        return self._model

    def latency(self, ug: UserGroup, peering_id: int) -> Optional[float]:
        key = (ug.ug_id, peering_id)
        if key not in self._latency_cache:
            self._latency_cache[key] = self._latency_of(ug, peering_id)
        return self._latency_cache[key]

    # -- Eq. 2: modeled improvement -------------------------------------------

    def expected_prefix_latency(
        self, ug: UserGroup, advertised: FrozenSet[int]
    ) -> Optional[float]:
        return self._model.expected_latency_ms(ug, advertised, self.latency)

    def expected_improvement(self, ug: UserGroup, config: AdvertisementConfig) -> float:
        """Eq. 2: improvement of the best prefix over anycast, floored at 0."""
        anycast = self._scenario.anycast_latency_ms(ug)
        best = anycast
        for prefix in config.prefixes:
            latency = self.expected_prefix_latency(ug, config.peerings_for(prefix))
            if latency is not None and latency < best:
                best = latency
        return anycast - best

    def expected_benefit(self, config: AdvertisementConfig) -> float:
        """Eq. 1 with modeled improvements."""
        return sum(
            ug.volume * self.expected_improvement(ug, config)
            for ug in self._scenario.user_groups
        )

    # -- Fig. 14: benefit ranges ---------------------------------------------

    def _range_for_prefix(
        self, ug: UserGroup, advertised: FrozenSet[int]
    ) -> Optional[BenefitRange]:
        """Range over all policy-compliant advertised ingresses (no exclusions)."""
        compliant = self._model.catalog.compliant_subset(ug, advertised)
        anycast = self._scenario.anycast_latency_ms(ug)
        deployment = self._scenario.deployment
        distances = []
        improvements = []
        for pid in sorted(compliant):
            latency = self.latency(ug, pid)
            if latency is None:
                continue
            improvements.append(max(0.0, anycast - latency))
            distances.append(
                haversine_km(ug.location, deployment.peering(pid).pop.location)
            )
        if not improvements:
            return None
        closest = min(distances)
        weights = [
            math.exp(-(d - closest) / self._inflation_scale_km) for d in distances
        ]
        total_weight = sum(weights)
        estimated = sum(i * w for i, w in zip(improvements, weights)) / total_weight
        return BenefitRange(
            lower=min(improvements),
            mean=sum(improvements) / len(improvements),
            estimated=estimated,
            upper=max(improvements),
        )

    def benefit_range(
        self, ug: UserGroup, config: AdvertisementConfig
    ) -> BenefitRange:
        """Range for the prefix the UG would select (highest mean, Eq. 2)."""
        best_range: Optional[BenefitRange] = None
        for prefix in config.prefixes:
            candidate = self._range_for_prefix(ug, config.peerings_for(prefix))
            if candidate is None:
                continue
            if best_range is None or candidate.mean > best_range.mean:
                best_range = candidate
        if best_range is None:
            return BenefitRange(lower=0.0, mean=0.0, estimated=0.0, upper=0.0)
        return best_range

    def evaluate(self, config: AdvertisementConfig) -> ConfigEvaluation:
        """Volume-weighted lower/mean/estimated/upper benefit of a config."""
        lower = mean = estimated = upper = 0.0
        per_ug: Dict[int, float] = {}
        for ug in self._scenario.user_groups:
            rng = self.benefit_range(ug, config)
            lower += ug.volume * rng.lower
            mean += ug.volume * rng.mean
            estimated += ug.volume * rng.estimated
            upper += ug.volume * rng.upper
            per_ug[ug.ug_id] = rng.estimated
        return ConfigEvaluation(
            lower=lower, mean=mean, estimated=estimated, upper=upper, per_ug_estimated=per_ug
        )


def realized_improvement(
    scenario: Scenario,
    ug: UserGroup,
    config: AdvertisementConfig,
    day: int = 0,
    fixed_prefix: Optional[int] = None,
) -> float:
    """Ground-truth improvement: the TM measures every prefix and anycast.

    With ``fixed_prefix`` the UG is pinned to one prefix (Fig. 7's "static
    prefix choices"); otherwise it uses the best available (dynamic).
    Improvement stays floored at 0 since anycast remains a destination.
    """
    routing: GroundTruthRouting = scenario.routing
    anycast = scenario.anycast_latency_ms(ug, day=day)
    prefixes = [fixed_prefix] if fixed_prefix is not None else config.prefixes
    best = anycast
    for prefix in prefixes:
        advertised = config.peerings_for(prefix)
        if not advertised:
            continue
        latency = routing.latency_for(ug, advertised, day=day)
        if latency is not None and latency < best:
            best = latency
    return anycast - best


def realized_benefit(
    scenario: Scenario,
    config: AdvertisementConfig,
    day: int = 0,
    prefix_choice: Optional[Mapping[int, int]] = None,
) -> float:
    """Eq. 1 with ground-truth improvements (optionally pinned prefixes).

    With ``prefix_choice`` given, every UG is static: mapped UGs stay on
    their pinned prefix, unmapped UGs stay on anycast (they had no better
    prefix when the pins were chosen) — contributing zero improvement.
    """
    total = 0.0
    for ug in scenario.user_groups:
        if prefix_choice is not None and ug.ug_id not in prefix_choice:
            continue  # pinned to anycast: zero improvement by definition
        fixed = None if prefix_choice is None else prefix_choice[ug.ug_id]
        total += ug.volume * realized_improvement(
            scenario, ug, config, day=day, fixed_prefix=fixed
        )
    return total


def best_prefix_choices(
    scenario: Scenario, config: AdvertisementConfig, day: int = 0
) -> Dict[int, int]:
    """Each UG's best prefix by ground-truth latency on ``day`` (for Fig. 7)."""
    routing = scenario.routing
    choices: Dict[int, int] = {}
    for ug in scenario.user_groups:
        anycast = scenario.anycast_latency_ms(ug, day=day)
        best_latency = anycast
        best_prefix: Optional[int] = None
        for prefix in config.prefixes:
            advertised = config.peerings_for(prefix)
            if not advertised:
                continue
            latency = routing.latency_for(ug, advertised, day=day)
            if latency is not None and latency < best_latency:
                best_latency = latency
                best_prefix = prefix
        if best_prefix is not None:
            choices[ug.ug_id] = best_prefix
    return choices
