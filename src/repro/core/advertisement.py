"""Advertisement configurations: which prefix is announced via which peerings.

"We model an advertisement configuration A as a set of (peering, prefix)
pairs where (peering, prefix) in A means we advertise that prefix via that
peering" (§3.1).  Prefixes are integers 0..PB-1 here; binding them to real
/24s is the job of :class:`repro.topology.cloud.PrefixPool` at installation
time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Set, Tuple


@dataclass
class AdvertisementConfig:
    """A mutable prefix -> peering-set mapping built up by Algorithm 1."""

    _prefixes: Dict[int, Set[int]] = field(default_factory=dict)

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "AdvertisementConfig":
        """Build from (prefix, peering_id) pairs."""
        config = cls()
        for prefix, peering_id in pairs:
            config.add(prefix, peering_id)
        return config

    def add(self, prefix: int, peering_id: int) -> None:
        if prefix < 0:
            raise ValueError("prefix index must be non-negative")
        self._prefixes.setdefault(prefix, set()).add(peering_id)

    def remove(self, prefix: int, peering_id: int) -> None:
        peerings = self._prefixes.get(prefix)
        if peerings is None or peering_id not in peerings:
            raise KeyError(f"(prefix {prefix}, peering {peering_id}) not in config")
        peerings.remove(peering_id)
        if not peerings:
            del self._prefixes[prefix]

    def peerings_for(self, prefix: int) -> FrozenSet[int]:
        return frozenset(self._prefixes.get(prefix, frozenset()))

    def advertises(self, prefix: int, peering_id: int) -> bool:
        return peering_id in self._prefixes.get(prefix, ())

    @property
    def prefixes(self) -> List[int]:
        """Prefixes with at least one advertisement, ascending."""
        return sorted(self._prefixes)

    @property
    def prefix_count(self) -> int:
        return len(self._prefixes)

    @property
    def pair_count(self) -> int:
        return sum(len(peerings) for peerings in self._prefixes.values())

    def pairs(self) -> Iterator[Tuple[int, int]]:
        for prefix in sorted(self._prefixes):
            for peering_id in sorted(self._prefixes[prefix]):
                yield (prefix, peering_id)

    def all_peering_ids(self) -> FrozenSet[int]:
        result: Set[int] = set()
        for peerings in self._prefixes.values():
            result |= peerings
        return frozenset(result)

    def as_mapping(self) -> Mapping[int, FrozenSet[int]]:
        return {prefix: frozenset(peerings) for prefix, peerings in self._prefixes.items()}

    def copy(self) -> "AdvertisementConfig":
        clone = AdvertisementConfig()
        for prefix, peerings in self._prefixes.items():
            clone._prefixes[prefix] = set(peerings)
        return clone

    def reuse_factor(self) -> float:
        """Average peerings per prefix — how hard prefixes are being reused."""
        if not self._prefixes:
            return 0.0
        return self.pair_count / self.prefix_count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AdvertisementConfig):
            return NotImplemented
        return self.as_mapping() == other.as_mapping()

    def __len__(self) -> int:
        return self.prefix_count

    def __str__(self) -> str:
        return (
            f"AdvertisementConfig({self.prefix_count} prefixes, "
            f"{self.pair_count} pairs, reuse {self.reuse_factor():.1f}x)"
        )
