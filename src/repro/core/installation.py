"""Installing a computed configuration: prefixes, announcements, TM-PoPs.

Algorithm 1 produces an abstract prefix->peering-set mapping; deploying it
means (per §3.1-3.2): allocating real /24s from the cloud's address space,
announcing each via its peerings, standing up TM-PoPs at the PoPs involved,
and notifying the Traffic Manager which destination prefixes exist per
service over the control channel.  This module performs that binding so the
Advertisement Orchestrator's output can drive the Traffic Manager data plane
end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.advertisement import AdvertisementConfig
from repro.scenario import Scenario
from repro.topology.cloud import Peering, PoP, PrefixPool
from repro.traffic_manager.tm_pop import PrefixDirectory, TMPoP
from repro.traffic_manager.tunnel import TMPoPNat

#: Default service installed at every PoP when no placement is given.
DEFAULT_SERVICE = "default"


@dataclass(frozen=True)
class InstalledPrefix:
    """One abstract prefix bound to a real /24 and its announcements."""

    prefix_index: int
    cidr: str
    peering_ids: FrozenSet[int]
    pop_names: FrozenSet[str]

    @property
    def peer_asns_key(self) -> Tuple[int, ...]:
        return tuple(sorted(self.peering_ids))


@dataclass
class Installation:
    """A deployed configuration: address bindings, TM-PoPs, directory."""

    scenario: Scenario
    anycast_cidr: str
    prefixes: List[InstalledPrefix]
    directory: PrefixDirectory
    tm_pops: Dict[str, TMPoP] = field(default_factory=dict)

    def cidr_for(self, prefix_index: int) -> str:
        for installed in self.prefixes:
            if installed.prefix_index == prefix_index:
                return installed.cidr
        raise KeyError(f"prefix index {prefix_index} not installed")

    def announcements(self) -> List[Tuple[str, FrozenSet[int]]]:
        """(cidr, peering ids) pairs, anycast first — the BGP install plan."""
        all_ids = frozenset(
            p.peering_id for p in self.scenario.deployment.peerings
        )
        plan: List[Tuple[str, FrozenSet[int]]] = [(self.anycast_cidr, all_ids)]
        plan.extend((p.cidr, p.peering_ids) for p in self.prefixes)
        return plan

    def pops_for_cidr(self, cidr: str) -> FrozenSet[str]:
        for installed in self.prefixes:
            if installed.cidr == cidr:
                return installed.pop_names
        if cidr == self.anycast_cidr:
            return frozenset(pop.name for pop in self.scenario.deployment.pops)
        raise KeyError(f"unknown cidr {cidr}")


def install_configuration(
    scenario: Scenario,
    config: AdvertisementConfig,
    pool: Optional[PrefixPool] = None,
    service_placement: Optional[Mapping[str, Sequence[str]]] = None,
    nat_ips_per_pop: int = 2,
) -> Installation:
    """Bind ``config`` to real prefixes and Traffic Manager nodes.

    ``service_placement`` maps service names to the PoP names that can serve
    them ("available PoPs may vary depending on the service", §3.2); by
    default one service is served everywhere.  Raises if the prefix pool
    cannot cover the configuration.
    """
    pool = pool or PrefixPool()
    deployment = scenario.deployment
    if config.prefix_count + 1 > pool.capacity - pool.allocated:
        raise RuntimeError(
            f"prefix pool too small: need {config.prefix_count + 1}, "
            f"have {pool.capacity - pool.allocated}"
        )

    anycast_cidr = pool.allocate()
    installed: List[InstalledPrefix] = []
    for prefix_index in config.prefixes:
        peering_ids = config.peerings_for(prefix_index)
        pops = frozenset(
            deployment.peering(pid).pop.name for pid in peering_ids
        )
        installed.append(
            InstalledPrefix(
                prefix_index=prefix_index,
                cidr=pool.allocate(),
                peering_ids=peering_ids,
                pop_names=pops,
            )
        )

    # Stand up one TM-PoP per deployment PoP; each gets NAT addresses and
    # the service placements it hosts.
    directory = PrefixDirectory()
    tm_pops: Dict[str, TMPoP] = {}
    placements = dict(service_placement or {DEFAULT_SERVICE: [p.name for p in deployment.pops]})
    for pop in deployment.pops:
        nat_ips = [f"100.64.{pop_octet(pop)}.{i + 1}" for i in range(nat_ips_per_pop)]
        tm_pop = TMPoP(name=f"tm-{pop.name}", pop=pop, nat=TMPoPNat(nat_ips))
        for service, pop_names in placements.items():
            if pop.name in pop_names:
                tm_pop.add_service(service)
        tm_pops[pop.name] = tm_pop
        directory.register(tm_pop)

    # Attach each installed prefix (and anycast) to the TM-PoPs behind it.
    for installed_prefix in installed:
        for pop_name in installed_prefix.pop_names:
            tm_pops[pop_name].attach_prefix(installed_prefix.cidr)
    for tm_pop in tm_pops.values():
        tm_pop.attach_prefix(anycast_cidr)

    return Installation(
        scenario=scenario,
        anycast_cidr=anycast_cidr,
        prefixes=installed,
        directory=directory,
        tm_pops=tm_pops,
    )


_POP_OCTETS: Dict[str, int] = {}


def pop_octet(pop: PoP) -> int:
    """A stable small integer per PoP for synthesizing NAT addresses."""
    if pop.name not in _POP_OCTETS:
        _POP_OCTETS[pop.name] = len(_POP_OCTETS) % 250
    return _POP_OCTETS[pop.name]
