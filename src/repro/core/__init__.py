"""PAINTER's core: advertisement optimization (Algorithm 1) and benefit math."""

from repro.core.advertisement import AdvertisementConfig
from repro.core.baselines import (
    BASELINE_STRATEGIES,
    anycast_config,
    one_per_peering,
    one_per_pop,
    one_per_pop_with_reuse,
    regional_anycast,
    regional_transit,
)
from repro.core.cost import (
    ConfigurationCost,
    configuration_cost,
    cost_per_benefit_usd,
    prefixes_saved_vs_one_per_peering,
)
from repro.core.installation import Installation, InstalledPrefix, install_configuration
from repro.core.benefit import (
    BenefitEvaluator,
    BenefitMatrix,
    BenefitRange,
    ConfigEvaluation,
    DEFAULT_INFLATION_SCALE_KM,
    best_prefix_choices,
    realized_benefit,
    realized_improvement,
)
from repro.core.orchestrator import (
    BudgetPoint,
    IterationRecord,
    LearningResult,
    ObservationReport,
    OrchestratorConfig,
    PainterOrchestrator,
    SolveMemo,
    WarmSolveStats,
)
from repro.core.routing_model import DEFAULT_D_REUSE_KM, RoutingModel

__all__ = [
    "AdvertisementConfig",
    "ConfigurationCost",
    "Installation",
    "InstalledPrefix",
    "configuration_cost",
    "cost_per_benefit_usd",
    "install_configuration",
    "prefixes_saved_vs_one_per_peering",
    "regional_anycast",
    "BASELINE_STRATEGIES",
    "BenefitEvaluator",
    "BenefitMatrix",
    "BenefitRange",
    "BudgetPoint",
    "ConfigEvaluation",
    "DEFAULT_D_REUSE_KM",
    "DEFAULT_INFLATION_SCALE_KM",
    "IterationRecord",
    "LearningResult",
    "ObservationReport",
    "OrchestratorConfig",
    "PainterOrchestrator",
    "RoutingModel",
    "SolveMemo",
    "WarmSolveStats",
    "anycast_config",
    "best_prefix_choices",
    "one_per_peering",
    "one_per_pop",
    "one_per_pop_with_reuse",
    "realized_benefit",
    "realized_improvement",
    "regional_transit",
]
