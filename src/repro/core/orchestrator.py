"""The Advertisement Orchestrator: Algorithm 1 plus the learning loop.

Greedy structure follows the paper's pseudocode exactly:

* outer loop — learning iterations: solve, execute the advertisement against
  ground truth, observe which ingresses UGs actually used, fold the
  observations into the routing model, repeat;
* middle loop — one prefix at a time from the budget;
* inner loop — advertise the current prefix via as many peerings as provide
  positive marginal benefit (prefix reuse), considered in ranked order of
  estimated improvement (Eq. 2).

The implementation accelerates the ranked scan with lazy re-evaluation
(stale marginals are recomputed only when they reach the top of the heap),
mirroring the paper's note that "UGs tend to have paths via a relatively
small fraction of ingresses, speeding up computation".
"""

from __future__ import annotations

import heapq
import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.advertisement import AdvertisementConfig
from repro.core.benefit import BenefitEvaluator, LatencyFn, realized_benefit
from repro.core.routing_model import DEFAULT_D_REUSE_KM, RoutingModel
from repro.scenario import Scenario
from repro.usergroups.usergroup import UserGroup

#: Marginal benefit below this (volume-weighted ms) counts as "no benefit".
EPSILON_BENEFIT = 1e-9

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class BudgetPoint:
    """Benefit snapshot after the k-th prefix was fully allocated."""

    prefixes_used: int
    pairs_used: int
    estimated_benefit: float
    upper_benefit: float
    lower_benefit: float
    mean_benefit: float


@dataclass(frozen=True)
class ObservationReport:
    """Accounting of one ``execute_and_observe`` round under degradation."""

    learned: int = 0
    observed: int = 0
    missing: int = 0
    stale: int = 0

    @property
    def total(self) -> int:
        return self.observed + self.missing + self.stale

    @property
    def degraded_fraction(self) -> float:
        """Fraction of this round's observations withheld or stale."""
        if self.total == 0:
            return 0.0
        return (self.missing + self.stale) / self.total


class ObservationFaultsLike:
    """Protocol-ish observation filter (see :class:`repro.faults.ObservationFaults`).

    ``outcome(iteration, ug_id, prefix)`` returns ``"ok"``, ``"missing"``,
    or ``"stale"``.
    """

    def outcome(self, iteration: int, ug_id: int, prefix: int) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class IterationRecord:
    """One learning iteration's outcome."""

    iteration: int
    config: AdvertisementConfig
    expected_benefit: float
    realized_benefit: float
    upper_benefit: float
    estimated_benefit: float
    lower_benefit: float
    new_preferences: int
    observations_observed: int = 0
    observations_missing: int = 0
    observations_stale: int = 0

    @property
    def degraded_fraction(self) -> float:
        total = (
            self.observations_observed
            + self.observations_missing
            + self.observations_stale
        )
        if total == 0:
            return 0.0
        return (self.observations_missing + self.observations_stale) / total

    @property
    def uncertainty(self) -> float:
        """Pre-test uncertainty band: best case minus inflation-weighted.

        When fault injection withheld or staled part of the round's
        observations, the band is widened proportionally — the model
        refined itself on less evidence than the benefit estimate assumes,
        so claiming the clean-round band would overstate confidence.
        """
        return (self.upper_benefit - self.estimated_benefit) * (
            1.0 + self.degraded_fraction
        )


@dataclass
class LearningResult:
    """The full learning-loop history (Fig. 6c)."""

    iterations: List[IterationRecord] = field(default_factory=list)

    @property
    def final_config(self) -> AdvertisementConfig:
        """The configuration to deploy: the best *measured* one.

        Each iteration's configuration is executed and measured; an operator
        deploys the best-known configuration, not the latest exploration —
        an untested re-solve can regress while the routing model digests new
        observations (the incorrect-assumption transients of §3.1).
        """
        if not self.iterations:
            raise ValueError("no iterations recorded")
        return max(self.iterations, key=lambda r: r.realized_benefit).config

    @property
    def last_config(self) -> AdvertisementConfig:
        """The most recent (possibly exploratory) configuration."""
        if not self.iterations:
            raise ValueError("no iterations recorded")
        return self.iterations[-1].config

    @property
    def realized_benefits(self) -> List[float]:
        return [record.realized_benefit for record in self.iterations]

    @property
    def uncertainties(self) -> List[float]:
        return [record.uncertainty for record in self.iterations]


class PainterOrchestrator:
    """Computes advertisement configurations for a scenario.

    ``latency_of`` lets callers substitute measured/estimated latencies (the
    geolocation heuristic, ping minima) for the default true-latency source,
    as the paper does in its Azure evaluation.
    """

    def __init__(
        self,
        scenario: Scenario,
        prefix_budget: int,
        d_reuse_km: float = DEFAULT_D_REUSE_KM,
        latency_of: Optional[LatencyFn] = None,
        model: Optional[RoutingModel] = None,
        allow_reuse: bool = True,
    ) -> None:
        if prefix_budget < 1:
            raise ValueError("prefix budget must be at least 1")
        self._scenario = scenario
        self._budget = prefix_budget
        self._model = model or RoutingModel(scenario.catalog, d_reuse_km=d_reuse_km)
        self._evaluator = BenefitEvaluator(scenario, self._model, latency_of=latency_of)
        self._affected: Dict[int, List[UserGroup]] = self._invert_catalog()
        #: Ablation knob: with reuse disabled each prefix is advertised via a
        #: single peering, reducing Algorithm 1 to a greedy one-per-peering.
        self._allow_reuse = allow_reuse
        self.budget_curve: List[BudgetPoint] = []
        #: Freshest observation per (ug_id, prefix) — what a lagging
        #: collector replays when fault injection serves stale data.
        self._last_seen: Dict[Tuple[int, int], Tuple[FrozenSet[int], int]] = {}

    @property
    def model(self) -> RoutingModel:
        return self._model

    @property
    def evaluator(self) -> BenefitEvaluator:
        return self._evaluator

    @property
    def prefix_budget(self) -> int:
        return self._budget

    def _invert_catalog(self) -> Dict[int, List[UserGroup]]:
        affected: Dict[int, List[UserGroup]] = {}
        for ug in self._scenario.user_groups:
            for pid in self._scenario.catalog.ingress_ids(ug):
                affected.setdefault(pid, []).append(ug)
        return affected

    # -- Algorithm 1, middle + inner loops ----------------------------------

    def solve(self, record_curve: bool = False) -> AdvertisementConfig:
        """Greedy allocation of the prefix budget (one outer-loop pass)."""
        scenario = self._scenario
        evaluator = self._evaluator
        config = AdvertisementConfig()
        self.budget_curve = []

        anycast: Dict[int, float] = {
            ug.ug_id: scenario.anycast_latency_ms(ug) for ug in scenario.user_groups
        }
        # Expected latency per (ug, prefix); None when prefix unusable.
        exp_lat: Dict[int, List[Optional[float]]] = {
            ug.ug_id: [None] * self._budget for ug in scenario.user_groups
        }

        def best_other(ug: UserGroup, prefix: int) -> float:
            best = anycast[ug.ug_id]
            for q, value in enumerate(exp_lat[ug.ug_id]):
                if q == prefix or value is None:
                    continue
                if value < best:
                    best = value
            return best

        all_peering_ids = sorted(self._affected)

        for prefix in range(self._budget):
            advertised: Set[int] = set()
            # Cache of each affected UG's best-other latency for this prefix.
            other_cache: Dict[int, float] = {}

            def marginal(peering_id: int) -> float:
                candidate_set = frozenset(advertised | {peering_id})
                delta = 0.0
                for ug in self._affected.get(peering_id, ()):
                    base = other_cache.get(ug.ug_id)
                    if base is None:
                        base = best_other(ug, prefix)
                        other_cache[ug.ug_id] = base
                    old_p = exp_lat[ug.ug_id][prefix]
                    old_best = base if old_p is None else min(base, old_p)
                    new_p = evaluator.expected_prefix_latency(ug, candidate_set)
                    new_best = old_best if new_p is None else min(base, new_p)
                    delta += ug.volume * (old_best - new_best)
                return delta

            # Lazy-greedy heap of (-marginal, staleness marker, peering id).
            version = 0
            heap: List[Tuple[float, int, int]] = []
            for pid in all_peering_ids:
                heapq.heappush(heap, (-marginal(pid), version, pid))

            while heap:
                neg_delta, seen_version, pid = heapq.heappop(heap)
                if pid in advertised:
                    continue
                if seen_version != version:
                    fresh = marginal(pid)
                    if heap and -fresh < -heap[0][0] - EPSILON_BENEFIT:
                        heapq.heappush(heap, (-fresh, version, pid))
                        continue
                    neg_delta = -fresh
                if -neg_delta <= EPSILON_BENEFIT:
                    break  # no peering offers positive benefit for this prefix
                # Accept: advertise this prefix via this peering.
                advertised.add(pid)
                config.add(prefix, pid)
                version += 1
                frozen = frozenset(advertised)
                for ug in self._affected.get(pid, ()):
                    exp_lat[ug.ug_id][prefix] = evaluator.expected_prefix_latency(
                        ug, frozen
                    )
                other_cache.clear()
                if not self._allow_reuse:
                    break  # one peering per prefix (ablation)

            if not advertised:
                break  # nothing left anywhere: further prefixes also won't help
            logger.debug(
                "prefix %d advertised via %d peerings", prefix, len(advertised)
            )
            if record_curve:
                evaluation = evaluator.evaluate(config)
                self.budget_curve.append(
                    BudgetPoint(
                        prefixes_used=config.prefix_count,
                        pairs_used=config.pair_count,
                        estimated_benefit=evaluation.estimated,
                        upper_benefit=evaluation.upper,
                        lower_benefit=evaluation.lower,
                        mean_benefit=evaluation.mean,
                    )
                )
        return config

    def estimated_iteration_duration_s(self) -> float:
        """How long one real-world learning iteration would take.

        Combines the paper's ~30 s/prefix computation with the
        flap-damping-safe advertisement pacing (§3.1: configurations are
        tested slowly "to avoid route flap damping").
        """
        from repro.bgp.flap_damping import learning_iteration_pacing_s

        return learning_iteration_pacing_s(prefix_count=self._budget)

    # -- Algorithm 1, outer loop -------------------------------------------

    def execute_and_observe(
        self,
        config: AdvertisementConfig,
        faults: Optional["ObservationFaultsLike"] = None,
        iteration: int = 0,
    ) -> ObservationReport:
        """Advertise ``config`` (against ground truth) and learn preferences.

        This is the ``RM <- execute_advertisement(CC)`` step.  ``faults``
        (an :class:`repro.faults.ObservationFaults`, or anything with its
        ``outcome(iteration, ug_id, prefix)`` signature) decides per sample
        whether the observation arrives, goes missing, or is served stale:

        * **missing** — the collector never saw the UG; the sample is
          skipped and counted, never guessed at;
        * **stale** — the collector reports what this UG did under a
          *previous* round's advertisement; the old (advertisement, ingress)
          pair is re-fed to the model softly (no outcome overwrite, no
          eviction of fresher pairs).  With no previous round to replay the
          sample degrades to missing.

        Returns an :class:`ObservationReport`; ``.learned`` is the number of
        new preference pairs (the old integer return value).
        """
        routing = self._scenario.routing
        learned = 0
        observed = 0
        missing = 0
        stale = 0
        for ug in self._scenario.user_groups:
            for prefix in config.prefixes:
                advertised = config.peerings_for(prefix)
                if not self._scenario.catalog.compliant_subset(ug, advertised):
                    continue
                actual = routing.ingress_for(ug, advertised)
                if actual is None:
                    continue
                outcome = (
                    faults.outcome(iteration, ug.ug_id, prefix)
                    if faults is not None
                    else "ok"
                )
                cache_key = (ug.ug_id, prefix)
                if outcome == "missing":
                    missing += 1
                    continue
                if outcome == "stale":
                    previous = self._last_seen.get(cache_key)
                    if previous is None:
                        missing += 1  # nothing older to serve: a gap, not a lie
                        continue
                    old_advertised, old_actual = previous
                    learned += self._model.observe(
                        ug, old_advertised, old_actual, stale=True
                    )
                    stale += 1
                    continue
                learned += self._model.observe(ug, advertised, actual.peering_id)
                self._last_seen[cache_key] = (advertised, actual.peering_id)
                observed += 1
        return ObservationReport(
            learned=learned, observed=observed, missing=missing, stale=stale
        )

    def learn(
        self,
        iterations: int = 4,
        stop_threshold: float = 0.0,
        record_curve: bool = False,
        faults: Optional["ObservationFaultsLike"] = None,
    ) -> LearningResult:
        """Run the outer learning loop for up to ``iterations`` rounds.

        ``stop_threshold`` terminates early when the marginal realized-benefit
        increase falls below the given fraction (the paper terminates "when
        little marginal benefit increase" remains).

        ``faults`` injects observation degradation (see
        :meth:`execute_and_observe`); the loop completes regardless of how
        many observations a round loses — missing rounds simply learn less
        and carry a wider uncertainty band.
        """
        if iterations < 1:
            raise ValueError("need at least one iteration")
        result = LearningResult()
        previous_benefit: Optional[float] = None
        for iteration in range(iterations):
            config = self.solve(record_curve=record_curve)
            evaluation = self._evaluator.evaluate(config)
            expected = self._evaluator.expected_benefit(config)
            report = self.execute_and_observe(config, faults=faults, iteration=iteration)
            realized = realized_benefit(self._scenario, config)
            result.iterations.append(
                IterationRecord(
                    iteration=iteration,
                    config=config,
                    expected_benefit=expected,
                    realized_benefit=realized,
                    upper_benefit=evaluation.upper,
                    estimated_benefit=evaluation.estimated,
                    lower_benefit=evaluation.lower,
                    new_preferences=report.learned,
                    observations_observed=report.observed,
                    observations_missing=report.missing,
                    observations_stale=report.stale,
                )
            )
            logger.info(
                "learning iteration %d: %s, realized benefit %.3f, "
                "%d new preferences (%d observed, %d missing, %d stale)",
                iteration,
                config,
                realized,
                report.learned,
                report.observed,
                report.missing,
                report.stale,
            )
            if previous_benefit is not None and stop_threshold > 0:
                gain = realized - previous_benefit
                if gain <= stop_threshold * max(previous_benefit, EPSILON_BENEFIT):
                    break
            previous_benefit = realized
        return result
